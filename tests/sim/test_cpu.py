"""Tests for the trace-driven CPU simulator."""

import pytest

from repro.sim.cpu import simulate
from repro.sim.machine import (
    gem5_ex5_big,
    gem5_ex5_big_fixed_bp,
    hardware_a7,
    hardware_a15,
)
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace


class TestDeterminism:
    def test_same_inputs_same_result(self, qsort_trace):
        a = simulate(qsort_trace, hardware_a15())
        b = simulate(qsort_trace, hardware_a15())
        assert a.counts == b.counts
        assert a.core_cycles == b.core_cycles
        assert a.dram_stall_weight == b.dram_stall_weight


class TestCountConsistency:
    def test_instruction_totals_match_trace(self, qsort_trace, hw_a15_result):
        assert hw_a15_result.counts["instructions"] == qsort_trace.n_instrs

    def test_branches_match_trace(self, qsort_trace, hw_a15_result):
        assert hw_a15_result.counts["branches"] == qsort_trace.n_branches

    def test_mispredicts_bounded_by_branches(self, hw_a15_result):
        counts = hw_a15_result.counts
        assert 0 <= counts["branch_mispredicts"] <= counts["branches"]
        assert counts["cond_mispredicts"] <= counts["cond_branches"]

    def test_cache_hierarchy_sandwich(self, hw_a15_result):
        counts = hw_a15_result.counts
        l1d_misses = counts["l1d_rd_misses"] + counts["l1d_wr_misses"]
        l1d_accesses = counts["l1d_rd_accesses"] + counts["l1d_wr_accesses"]
        assert l1d_misses <= l1d_accesses
        l2_accesses = counts["l2_rd_accesses"] + counts["l2_wr_accesses"]
        l2_misses = counts["l2_rd_misses"] + counts["l2_wr_misses"]
        assert l2_misses <= l2_accesses

    def test_mem_ops_reach_l1d(self, qsort_trace, hw_a15_result):
        counts = hw_a15_result.counts
        expected = qsort_trace.n_mem_ops
        seen = counts["l1d_rd_accesses"] + counts["l1d_wr_accesses"]
        assert seen == pytest.approx(expected, rel=0.01)

    def test_tlb_lookups_match_mem_ops(self, qsort_trace, hw_a15_result):
        assert hw_a15_result.counts["dtlb_lookups"] == qsort_trace.n_mem_ops

    def test_spec_instructions_exceed_committed(self, gem5_a15_result):
        counts = gem5_a15_result.counts
        assert counts["spec_instructions"] >= counts["instructions"]

    def test_l2tlb_hits_plus_misses(self, hw_a15_result):
        counts = hw_a15_result.counts
        assert counts["l2tlb_i_hits"] + counts["l2tlb_i_misses"] == pytest.approx(
            counts["l2tlb_i_accesses"]
        )


class TestTiming:
    def test_time_decreases_with_frequency(self, hw_a15_result):
        assert hw_a15_result.time_seconds(1.8e9) < hw_a15_result.time_seconds(0.6e9)

    def test_speedup_is_sublinear(self, canneal_trace):
        """Memory-bound work scales worse than clock (fixed-ns DRAM)."""
        result = simulate(canneal_trace, hardware_a15())
        speedup = result.time_seconds(0.6e9) / result.time_seconds(1.8e9)
        assert 1.0 < speedup < 3.0

    def test_cpu_bound_scales_nearly_linearly(self):
        trace = compile_trace(workload_by_name("mi-sha"), 12_000)
        result = simulate(trace, hardware_a15())
        speedup = result.time_seconds(0.6e9) / result.time_seconds(1.8e9)
        assert speedup > 2.6

    def test_invalid_frequency(self, hw_a15_result):
        with pytest.raises(ValueError):
            hw_a15_result.time_seconds(0.0)

    def test_cycles_equal_time_times_frequency(self, hw_a15_result):
        freq = 1.4e9
        assert hw_a15_result.cycles(freq) == pytest.approx(
            hw_a15_result.time_seconds(freq) * freq
        )

    def test_components_sum_to_core_cycles(self, hw_a15_result):
        assert sum(hw_a15_result.components.values()) == pytest.approx(
            hw_a15_result.core_cycles
        )

    def test_sync_factor_single_thread(self, hw_a15_result):
        assert hw_a15_result.sync_factor == 1.0

    def test_sync_factor_multithreaded(self, canneal_trace):
        trace = compile_trace(workload_by_name("parsec-canneal-4"), 12_000)
        result = simulate(trace, hardware_a15())
        assert result.sync_factor > 1.0

    def test_cpi_positive(self, hw_a15_result):
        assert hw_a15_result.cpi(1e9) > 0.3


class TestHardwareVsGem5Divergence:
    """The headline behavioural differences must emerge from configs."""

    def test_buggy_bp_much_worse_on_loopy_workload(self, rad2deg_trace):
        hw = simulate(rad2deg_trace, hardware_a15())
        gem5 = simulate(rad2deg_trace, gem5_ex5_big())
        assert hw.branch_predictor_accuracy() > 0.97
        assert gem5.branch_predictor_accuracy() < 0.35

    def test_buggy_model_overestimates_time_on_loopy_workload(self, rad2deg_trace):
        hw = simulate(rad2deg_trace, hardware_a15())
        gem5 = simulate(rad2deg_trace, gem5_ex5_big())
        assert gem5.time_seconds(1e9) > 1.8 * hw.time_seconds(1e9)

    def test_fixed_bp_restores_accuracy(self, rad2deg_trace):
        fixed = simulate(rad2deg_trace, gem5_ex5_big_fixed_bp())
        assert fixed.branch_predictor_accuracy() > 0.9

    def test_gem5_fewer_right_path_itlb_misses(self):
        """64-entry model ITLB vs 32-entry hardware (Fig. 6's 0.06x)."""
        trace = compile_trace(workload_by_name("mi-typeset"), 12_000)
        hw = simulate(trace, hardware_a15())
        gem5 = simulate(trace, gem5_ex5_big())
        assert gem5.counts["itlb_misses"] < hw.counts["itlb_misses"]

    def test_gem5_more_walker_traffic_under_mispredicts(self, rad2deg_trace):
        hw = simulate(rad2deg_trace, hardware_a15())
        gem5 = simulate(rad2deg_trace, gem5_ex5_big())
        assert gem5.counts["itlb_wrongpath_misses"] > hw.counts["itlb_wrongpath_misses"]

    def test_gem5_more_writebacks_on_streaming_stores(self):
        """No write-streaming in the model (Fig. 6's 19x L1D_WB)."""
        trace = compile_trace(workload_by_name("lm-bw-mem-wr"), 12_000)
        hw = simulate(trace, hardware_a15())
        gem5 = simulate(trace, gem5_ex5_big())
        assert hw.counts["l1d_streaming_stores"] > 0
        assert gem5.counts["l1d_streaming_stores"] == 0
        assert gem5.counts["l1d_writebacks"] > 2 * max(hw.counts["l1d_writebacks"], 1)

    def test_gem5_more_prefetches(self, canneal_trace):
        hw = simulate(canneal_trace, hardware_a15())
        gem5 = simulate(canneal_trace, gem5_ex5_big())
        assert gem5.counts["l2_prefetches"] > hw.counts["l2_prefetches"]

    def test_a7_model_underestimates_memory_time(self, canneal_trace):
        """DRAM latency too low: the model runs memory-bound work faster."""
        hw = simulate(canneal_trace, hardware_a7())
        from repro.sim.machine import gem5_ex5_little
        gem5 = simulate(canneal_trace, gem5_ex5_little())
        assert gem5.time_seconds(1e9) < hw.time_seconds(1e9)


class TestCpuSimulatorClass:
    def test_run_equals_module_function(self, qsort_trace):
        from repro.sim.cpu import CpuSimulator
        machine = hardware_a15()
        assert CpuSimulator(machine).run(qsort_trace).counts == simulate(
            qsort_trace, machine
        ).counts
