"""Chaos suite: deterministic fault injection against the executor + cache.

Every scenario asserts the same invariant: whatever faults are injected —
worker crashes (a genuine broken pool), job hangs past the per-job timeout,
poisoned jobs, corrupt cache entries, unusable cache directories — the
recovered results are *bit-identical* to a fault-free serial run, and the
telemetry/quarantine accounting says exactly what happened.

The suite runs in the default ``make test`` path with a small deterministic
seed set; ``make test-chaos`` runs just these scenarios.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.cpu import simulate
from repro.sim.executor import (
    RetryPolicy,
    SimExecutor,
    SimJobError,
    SimJobFailure,
)
from repro.sim.faults import FaultPlan, FaultSpec, InjectedFault
from repro.sim.machine import hardware_a15
from repro.sim.result_cache import SimResultCache
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

pytestmark = pytest.mark.chaos

N_INSTRS = 6_000

#: No backoff sleeps in tests; determinism does not need wall-clock.
FAST_RETRY = RetryPolicy(max_attempts=3, base_seconds=0.0)


@pytest.fixture(scope="module")
def traces():
    return tuple(
        compile_trace(workload_by_name(name), N_INSTRS)
        for name in ("mi-sha", "mi-qsort", "dhrystone")
    )


@pytest.fixture(scope="module")
def machine():
    return hardware_a15()


@pytest.fixture(scope="module")
def golden(traces, machine):
    """The fault-free serial reference results."""
    return [simulate(t, machine) for t in traces]


def _assert_same(a, b):
    assert a.counts == b.counts
    assert a.core_cycles == b.core_cycles
    assert a.dram_stall_weight == b.dram_stall_weight
    assert a.components == b.components


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meltdown", job=0)

    def test_job_fault_needs_target(self):
        with pytest.raises(ValueError):
            FaultSpec("crash")

    def test_plans_compose_with_or(self):
        plan = FaultPlan.crash_job(0) | FaultPlan.corrupt_cache("mi-sha")
        assert len(plan.faults) == 2
        assert bool(plan)
        assert not bool(FaultPlan())

    def test_crash_raises_in_parent(self):
        plan = FaultPlan.crash_job(3)
        with pytest.raises(InjectedFault):
            plan.apply_job_fault(3, "mi-sha", attempt=1, in_worker=False)
        # Wrong ordinal, exhausted attempts: no fault.
        plan.apply_job_fault(2, "mi-sha", attempt=1, in_worker=False)
        plan.apply_job_fault(3, "mi-sha", attempt=2, in_worker=False)

    def test_crash_by_workload_name(self):
        plan = FaultPlan.crash_workload("mi-sha", attempts=2)
        with pytest.raises(InjectedFault):
            plan.apply_job_fault(7, "mi-sha", attempt=2, in_worker=False)
        plan.apply_job_fault(7, "mi-qsort", attempt=1, in_worker=False)

    def test_shard_faults_match_phase_workload_and_attempt(self):
        plan = (FaultPlan.shard_crash("mi-sha")
                | FaultPlan.lease_stall("mi-qsort", seconds=0.5, attempts=2))
        crash = plan.shard_fault("stored", "mi-sha", 1)
        assert crash is not None and crash.kind == "shard-crash"
        # Spent attempt budget, wrong workload, wrong phase: no fault.
        assert plan.shard_fault("stored", "mi-sha", 2) is None
        assert plan.shard_fault("stored", "mi-qsort", 1) is None
        assert plan.shard_fault("claimed", "mi-sha", 1) is None
        stall = plan.shard_fault("claimed", "mi-qsort", 2)
        assert stall is not None and stall.kind == "lease-stall"
        assert stall.hang_seconds == 0.5
        assert plan.shard_fault("unknown-phase", "mi-sha", 1) is None

    def test_power_faults_deterministic(self):
        import numpy as np

        plan = FaultPlan.nan_power("w", fraction=0.5)
        samples = np.linspace(1.0, 2.0, 16)
        a, lost_a = plan.apply_power_faults("w", "A15-1e9", samples)
        b, lost_b = plan.apply_power_faults("w", "A15-1e9", samples)
        assert lost_a == lost_b == 8
        assert np.array_equal(a, b, equal_nan=True)
        # The input array is never mutated.
        assert np.isfinite(samples).all()


class TestRetryPolicy:
    def test_deterministic_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_seconds=0.1, backoff=2.0,
                             cap_seconds=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(4) == pytest.approx(0.3)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)

    def test_pathological_attempt_counts_saturate_at_cap(self):
        # Campaign lease re-queues can produce attempt numbers far past
        # anything a pool retry loop sees; the bounded exponent must
        # saturate at the cap instead of raising OverflowError.
        policy = RetryPolicy(max_attempts=3, base_seconds=0.05,
                             backoff=2.0, cap_seconds=1.0)
        assert policy.delay(10_000) == policy.cap_seconds
        assert policy.delay(2**31) == policy.cap_seconds
        huge = RetryPolicy(max_attempts=3, base_seconds=1.0, backoff=10.0,
                           cap_seconds=float("inf"))
        assert huge.delay(10_000) == huge.delay(10_001)  # bounded, finite
        assert huge.delay(10_000) < float("inf")


class TestSerialRecovery:
    def test_flaky_job_retried_to_identical_result(self, traces, machine, golden):
        ex = SimExecutor(jobs=1, retry=FAST_RETRY, faults=FaultPlan.crash_job(0))
        results = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(results, golden):
            _assert_same(result, reference)
        assert ex.telemetry.job_retries == 1
        assert ex.telemetry.jobs_failed == 0

    def test_poisoned_job_fails_permanently(self, traces, machine):
        plan = FaultPlan.crash_workload(traces[0].name, attempts=99)
        ex = SimExecutor(jobs=1, retry=FAST_RETRY, faults=plan)
        with pytest.raises(SimJobError) as err:
            ex.run_many([(t, machine) for t in traces])
        assert err.value.failure.trace_name == traces[0].name
        assert err.value.failure.attempts == FAST_RETRY.max_attempts
        assert ex.telemetry.jobs_failed == 1

    def test_raise_on_error_false_degrades(self, traces, machine, golden):
        plan = FaultPlan.crash_workload(traces[0].name, attempts=99)
        ex = SimExecutor(jobs=1, retry=FAST_RETRY, faults=plan)
        results = ex.run_many(
            [(t, machine) for t in traces], raise_on_error=False
        )
        assert results[0] is None
        for result, reference in zip(results[1:], golden[1:]):
            _assert_same(result, reference)
        assert len(ex.last_failures) == 1
        assert isinstance(ex.last_failures[0], SimJobFailure)


class TestPoolCrashIsolation:
    def test_worker_crash_recovers_bit_identical(self, traces, machine, golden):
        """A hard worker death (os._exit) breaks the pool; only the affected
        jobs rerun serially and the batch still matches the golden run."""
        ex = SimExecutor(jobs=2, retry=FAST_RETRY, faults=FaultPlan.crash_job(0))
        results = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(results, golden):
            _assert_same(result, reference)
        assert ex.telemetry.worker_crashes >= 1
        assert ex.telemetry.jobs_isolated >= 1
        assert ex.telemetry.jobs_failed == 0

    def test_hang_times_out_and_recovers(self, traces, machine, golden):
        ex = SimExecutor(
            jobs=4,
            retry=FAST_RETRY,
            timeout_seconds=0.6,
            faults=FaultPlan.hang_job(1, seconds=3.0),
        )
        results = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(results, golden):
            _assert_same(result, reference)
        assert ex.telemetry.job_timeouts == 1
        assert ex.telemetry.jobs_isolated == 1

    def test_no_retry_budget_reports_failure(self, traces, machine):
        plan = FaultPlan.crash_workload(traces[0].name, attempts=99)
        ex = SimExecutor(
            jobs=2, retry=RetryPolicy(max_attempts=1), faults=plan
        )
        results = ex.run_many(
            [(t, machine) for t in traces], raise_on_error=False
        )
        assert results[0] is None
        assert ex.telemetry.jobs_failed >= 1


class TestCacheCorruption:
    def test_corrupt_write_quarantined_and_recomputed(
        self, traces, machine, golden, tmp_path
    ):
        cache_dir = str(tmp_path / "simcache")
        plan = FaultPlan.corrupt_cache(traces[0].name, attempts=99)
        ex = SimExecutor(jobs=1, retry=FAST_RETRY, cache_dir=cache_dir, faults=plan)
        first = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(first, golden):
            _assert_same(result, reference)
        # A fresh, fault-free executor over the same directory must detect
        # the corruption, quarantine the entry, and recompute identically.
        clean = SimExecutor(jobs=1, cache_dir=cache_dir)
        second = clean.run_many([(t, machine) for t in traces])
        for result, reference in zip(second, golden):
            _assert_same(result, reference)
        assert clean.cache.telemetry.quarantined == 1
        assert clean.telemetry.cache_hits == len(traces) - 1
        quarantine = os.path.join(cache_dir, "quarantine")
        assert os.path.isdir(quarantine) and len(os.listdir(quarantine)) == 1

    def test_parallel_corrupt_reap_recovers(self, traces, machine, golden, tmp_path):
        """Workers write corrupt entries; the parent's reap detects it and
        recomputes in-process — results still bit-identical."""
        cache_dir = str(tmp_path / "simcache")
        plan = FaultPlan.corrupt_cache(attempts=1)  # every workload's 1st put
        ex = SimExecutor(jobs=2, retry=FAST_RETRY, cache_dir=cache_dir, faults=plan)
        results = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(results, golden):
            _assert_same(result, reference)
        assert ex.cache.telemetry.quarantined >= 1


class TestDegradedCacheDirectory:
    def test_failing_writes_degrade_with_one_warning(
        self, traces, machine, golden, tmp_path, monkeypatch
    ):
        # chmod-based read-only dirs don't stop root, so simulate the
        # full/read-only filesystem at the atomic-rename step instead.
        cache = SimResultCache(str(tmp_path / "simcache"))

        def refuse(src, dst):
            raise OSError(30, "Read-only file system", dst)

        monkeypatch.setattr(os, "replace", refuse)
        with pytest.warns(RuntimeWarning, match="degrading to uncached"):
            cache.put(traces[0], machine, golden[0])
            cache.put(traces[1], machine, golden[1])  # no second warning
        assert cache.degraded
        assert cache.telemetry.put_failures >= 1
        assert cache.get(traces[0], machine) is None

    def test_executor_survives_unusable_cache(self, traces, machine, golden, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.warns(RuntimeWarning):
            ex = SimExecutor(jobs=1, cache_dir=str(blocker / "simcache"))
            results = ex.run_many([(t, machine) for t in traces])
        for result, reference in zip(results, golden):
            _assert_same(result, reference)


class TestTelemetryAccounting:
    def test_serial_fallback_counts_simulate_time_once(self, traces, monkeypatch):
        """Satellite regression: the broken-pool fallback used to add the
        failed pool window *and* the serial window to ``simulate_seconds``.
        With a fake clock advancing 1 s per reading, the serial window is
        exactly 1 s and nothing else may be added."""
        import itertools

        import repro.sim.executor as executor_mod

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes in this environment")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", BrokenPool)
        ticker = itertools.count()
        monkeypatch.setattr(
            executor_mod, "perf_counter", lambda: float(next(ticker))
        )
        machine = hardware_a15()
        ex = SimExecutor(jobs=4)
        ex.run_many([(t, machine) for t in traces])
        assert ex.telemetry.serial_fallbacks == 1
        assert ex.telemetry.simulate_seconds == 1.0
