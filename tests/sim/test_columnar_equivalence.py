"""Randomized scalar-vs-columnar equivalence and simulator-reuse tests.

The columnar replay engine must be *bit-identical* to the scalar model —
not approximately equal — for every trace and machine.  The golden suite
pins a handful of exact values; this module sweeps the space: ~50 seeded
randomized traces (workload profile, thread count, trace seed and length
all drawn from one fixed-seed RNG) crossed with randomized machine
configurations (all four hardware/gem5 configs, both branch predictors).

It also pins the :class:`CpuSimulator` reuse contract: running through a
reset-and-reused simulator is bit-identical to cold construction, and a
repeat replay of the same trace (which exercises the verified memos on
the decoded columnar form) is bit-identical to the first.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.sim.cpu import CpuSimulator, simulate, simulate_dvfs_sweep
from repro.sim.machine import machine_by_name
from repro.workloads.suites import all_workloads
from repro.workloads.trace import compile_trace

MACHINE_NAMES = ("hw-a15", "gem5-ex5-big", "hw-a7", "gem5-ex5-little")
PREDICTORS = ("tournament", "buggy_tournament")
N_CASES = 50


def _assert_bit_identical(a, b) -> None:
    """Full SimResult equality — floats compared with ``==``."""
    assert set(a.counts) == set(b.counts)
    for name in a.counts:
        assert a.counts[name] == b.counts[name], name
    assert a.core_cycles == b.core_cycles
    assert a.dram_stall_weight == b.dram_stall_weight
    assert a.components == b.components
    assert a.sync_factor == b.sync_factor
    assert a.threads == b.threads


def _cases():
    """~50 seeded random (profile, n_instrs, seed, machine) draws."""
    rng = random.Random(0x5EED_2026)
    profiles = list(all_workloads())
    cases = []
    for i in range(N_CASES):
        profile = dataclasses.replace(
            rng.choice(profiles), threads=rng.choice((1, 2, 4))
        )
        machine = dataclasses.replace(
            machine_by_name(rng.choice(MACHINE_NAMES)),
            predictor=rng.choice(PREDICTORS),
        )
        cases.append(
            pytest.param(
                profile,
                rng.randint(4_000, 8_000),  # n_instrs
                rng.randint(0, 2**31),  # trace seed
                machine,
                id=f"{i:02d}-{profile.name}-t{profile.threads}"
                f"-{machine.name}-{machine.predictor}",
            )
        )
    return cases


@pytest.mark.parametrize(
    ("profile", "n_instrs", "seed", "machine"), _cases()
)
def test_columnar_matches_scalar(profile, n_instrs, seed, machine):
    trace = compile_trace(profile, n_instrs, seed=seed)
    scalar = simulate(trace, machine, engine="scalar")
    columnar = simulate(trace, machine, engine="columnar")
    _assert_bit_identical(scalar, columnar)

    # A repeat replay hits the verified memos on the decoded columnar
    # form; it must reproduce the first run exactly.
    again = simulate(trace, machine, engine="columnar")
    _assert_bit_identical(columnar, again)


@pytest.mark.parametrize("engine", ["scalar", "columnar"])
def test_simulator_reuse_bit_identical_to_cold(engine):
    """Satellite contract: reset-and-reuse == cold construction."""
    machine_a = machine_by_name("hw-a15")
    machine_b = machine_by_name("gem5-ex5-big")
    profiles = list(all_workloads())
    trace_a = compile_trace(profiles[3], 6_000)
    trace_b = compile_trace(profiles[11], 6_000)

    reused = CpuSimulator(machine_a, engine=engine)
    warm_a = reused.run(trace_a)  # populates state
    warm_b = reused.run(trace_b)  # reset() + reuse
    warm_a2 = reused.run(trace_a)  # reset() + reuse, same trace again

    _assert_bit_identical(warm_a, CpuSimulator(machine_a, engine=engine).run(trace_a))
    _assert_bit_identical(warm_b, CpuSimulator(machine_a, engine=engine).run(trace_b))
    _assert_bit_identical(warm_a, warm_a2)

    # One trace, many configs: a different simulator sharing the decoded
    # trace must agree with a cold run on its own machine.
    swept = CpuSimulator(machine_b, engine=engine).run(trace_a)
    _assert_bit_identical(swept, simulate(trace_a, machine_b, engine=engine))


@pytest.mark.parametrize("machine_name", ["hw-a7", "hw-a15"])
def test_dvfs_sweep_matches_single_replays(machine_name):
    """Decode-once sweep points equal independent per-point replays."""
    machine = machine_by_name(machine_name)
    trace = compile_trace(list(all_workloads())[7], 6_000)
    points = simulate_dvfs_sweep(trace, machine)
    assert len(points) == 4  # the paper's per-cluster sweep
    reference = simulate(trace, machine, engine="scalar")
    for point in points:
        _assert_bit_identical(point.result, reference)
        assert point.time_seconds == reference.time_seconds(point.freq_hz)
        assert point.cycles == reference.cycles(point.freq_hz)
