"""Golden-value regression tests for the CPU simulator.

``golden_simulate.json`` pins the exact :func:`simulate` outputs for
(trace, machine) pairs covering both cores' hardware and gem5 machine
configs; the first two cases were captured before the vectorized replay
fast paths landed, and every case's values were captured with the scalar
engine.  Every optimisation of the hot loop, the pre-warm stage or the
micro-architectural components must keep these values *bit-identical* —
floats are compared with ``==``, not a tolerance, which is exact because
JSON round-trips Python floats losslessly (repr shortest-roundtrip).

Each case also pins a ``dvfs`` section: ``time_seconds``/``cycles`` at
every frequency of the paper's per-cluster DVFS sweep, asserting that the
frequency-analytic timing stays exact at each operating point.

If a deliberate modelling change alters simulation semantics, regenerate
the file (and bump ``CACHE_SCHEMA_VERSION`` in ``repro.sim.result_cache``)
rather than loosening these assertions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.cpu import simulate
from repro.sim.machine import machine_by_name
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

GOLDEN_PATH = Path(__file__).parent / "golden_simulate.json"


def _golden_cases():
    with open(GOLDEN_PATH) as handle:
        golden = json.load(handle)
    return sorted(golden.items())


@pytest.mark.parametrize(("key", "expected"), _golden_cases())
class TestGoldenSimulate:
    @pytest.fixture()
    def result(self, key, expected):
        workload, machine_name = key.split("|")
        trace = compile_trace(workload_by_name(workload), expected["n_instrs"])
        return simulate(trace, machine_by_name(machine_name))

    def test_counts_bit_identical(self, result, key, expected):
        assert set(result.counts) == set(expected["counts"])
        for name, value in expected["counts"].items():
            assert result.counts[name] == value, name

    def test_cycles_bit_identical(self, result, key, expected):
        assert result.core_cycles == expected["core_cycles"]
        assert result.dram_stall_weight == expected["dram_stall_weight"]

    def test_components_bit_identical(self, result, key, expected):
        assert result.components == expected["components"]

    def test_dvfs_points_bit_identical(self, result, key, expected):
        if "dvfs" not in expected:
            pytest.skip("case predates the DVFS golden section")
        for mhz, point in expected["dvfs"].items():
            freq_hz = float(mhz) * 1e6
            assert result.time_seconds(freq_hz) == point["time_seconds"], mhz
            assert result.cycles(freq_hz) == point["cycles"], mhz
