"""Tests for the gem5-style simulation and its stats emission."""

import pytest

from repro.events.gem5_stats import Gem5StatCatalog
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_big, gem5_ex5_little, hardware_a15
from repro.workloads.suites import workload_by_name


@pytest.fixture(scope="module")
def stats(gem5_sim_a15):
    return gem5_sim_a15.run(workload_by_name("mi-qsort"), 1000e6)


class TestConstruction:
    def test_hardware_config_rejected(self):
        with pytest.raises(ValueError, match="gem5 model config"):
            Gem5Simulation(hardware_a15())

    def test_default_is_ex5_big(self):
        assert Gem5Simulation().machine.name == "gem5-ex5-big"

    def test_invalid_frequency(self, gem5_sim_a15):
        with pytest.raises(ValueError):
            gem5_sim_a15.run(workload_by_name("mi-sha"), -1.0)


class TestStatsEmission:
    def test_emits_full_catalog(self, stats):
        expected = set(Gem5StatCatalog().all_short_names())
        assert expected <= set(stats.stats)

    def test_sim_seconds_positive(self, stats):
        assert stats.sim_seconds > 0

    def test_sim_ticks_are_picoseconds(self, stats):
        assert stats.value("sim_ticks") == pytest.approx(stats.sim_seconds * 1e12)

    def test_committed_instructions_consistent(self, stats):
        assert stats.value("commit.committedInsts") == stats.value("sim_insts")
        assert stats.value("cpu.committedInsts") == stats.value("sim_insts")

    def test_cpi_ipc_reciprocal(self, stats):
        assert stats.value("cpu.cpi") * stats.value("cpu.ipc") == pytest.approx(1.0)

    def test_hit_miss_partitions(self, stats):
        for prefix in ("icache", "dcache", "itb_walker_cache"):
            total = stats.value(f"{prefix}.overall_accesses")
            hits = stats.value(f"{prefix}.overall_hits")
            misses = stats.value(f"{prefix}.overall_misses")
            assert hits + misses == pytest.approx(total), prefix

    def test_itb_misses_are_committed_path_only(self, stats):
        # inst_misses additionally includes wrong-path traffic.
        assert stats.value("itb.inst_misses") >= stats.value("itb.misses")

    def test_rate_helper(self, stats):
        assert stats.rate("commit.committedInsts") == pytest.approx(
            stats.value("commit.committedInsts") / stats.sim_seconds
        )

    def test_rate_like_stats_not_divided(self, stats):
        assert stats.rate("cpu.cpi") == stats.value("cpu.cpi")

    def test_full_names_qualified(self, stats):
        full = stats.full()
        assert "system.cpu.commit.committedInsts" in full
        assert "system.l2.overall_misses" in full
        assert "sim_seconds" in full

    def test_unknown_stat_raises(self, stats):
        with pytest.raises(KeyError):
            stats.value("cpu.nonexistent")


class TestAccountingQuirks:
    def test_l1i_counted_per_instruction(self, gem5_sim_a15, platform_a15):
        """gem5's icache accesses track instructions, the paper's 2x story."""
        profile = workload_by_name("mi-sha")
        stats = gem5_sim_a15.run(profile, 1000e6)
        assert stats.value("icache.overall_accesses") >= stats.value(
            "commit.committedInsts"
        )

    def test_vfp_classified_as_simd(self, gem5_sim_a15):
        """Section V: gem5 counts VFP under the SIMD stat."""
        stats = gem5_sim_a15.run(workload_by_name("whetstone"), 1000e6)
        assert stats.value("commit.vec_insts") > 10 * max(
            stats.value("commit.fp_insts"), 1.0
        )

    def test_walker_cache_traffic_under_mispredicts(self, gem5_sim_a15):
        loopy = gem5_sim_a15.run(workload_by_name("par-basicmath-rad2deg"), 1000e6)
        assert loopy.value("itb_walker_cache.ReadReq_accesses") > 0
        assert loopy.value("fetch.TlbSquashes") > 0

    def test_multithreaded_stats_aggregate(self, gem5_sim_a15):
        one = gem5_sim_a15.run(workload_by_name("parsec-canneal-1"), 1000e6)
        four = gem5_sim_a15.run(workload_by_name("parsec-canneal-4"), 1000e6)
        assert four.value("commit.committedInsts") > 3.0 * one.value(
            "commit.committedInsts"
        )


class TestModelComparison:
    def test_little_model_runs(self):
        sim = Gem5Simulation(gem5_ex5_little(), trace_instructions=12_000)
        stats = sim.run(workload_by_name("mi-sha"), 1000e6)
        assert stats.machine_name == "gem5-ex5-little"
        assert stats.sim_seconds > 0

    def test_deterministic(self, gem5_sim_a15):
        profile = workload_by_name("mi-fft")
        a = gem5_sim_a15.run(profile, 1000e6)
        b = gem5_sim_a15.run(profile, 1000e6)
        assert a.stats == b.stats
