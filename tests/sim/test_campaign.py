"""Unit tests for the campaign job board: sync, leases, journal, CLI.

Board mechanics (claim/steal/poison/journal) are exercised with
hand-built jobs so no simulation runs; one tiny real campaign covers the
worker loop and the ``gemstone campaign`` CLI end to end.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.cli import main
from repro.core.pipeline import GemStoneConfig
from repro.core.runstate import RunManifest
from repro.sim.campaign import (
    CampaignBoard,
    CampaignJob,
    campaign_jobs,
    machine_from_spec,
    run_worker,
)
from repro.sim.executor import RetryPolicy
from repro.sim.machine import gem5_ex5_big, hardware_a15, hardware_a7
from repro.sim.result_cache import cache_key
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace


def _fake_job(ordinal: int, workload: str = "w") -> CampaignJob:
    key = f"{ordinal:02d}" + "ab" * 19
    return CampaignJob(
        key=key,
        workload=workload,
        machine_name="fake",
        machine={},
        n_instrs=100,
        ordinal=ordinal,
    )


@pytest.fixture()
def board(tmp_path):
    return CampaignBoard(str(tmp_path / "board"), ttl_seconds=5.0)


class TestMachineSpecRoundTrip:
    @pytest.mark.parametrize(
        "factory", [hardware_a15, hardware_a7, gem5_ex5_big],
        ids=["hw-a15", "hw-a7", "gem5-ex5-big"],
    )
    def test_asdict_round_trips(self, factory):
        machine = factory()
        assert machine_from_spec(dataclasses.asdict(machine)) == machine


class TestCampaignJobs:
    def test_jobs_cover_both_machines_and_are_deterministic(self):
        profiles = tuple(
            workload_by_name(n) for n in ("mi-sha", "dhrystone")
        )
        config = GemStoneConfig(
            core="A15",
            workloads=profiles,
            power_workloads=profiles,
            trace_instructions=2_000,
        )
        jobs = campaign_jobs(config)
        # Validation workloads each need hw + gem5; the power pass shares
        # the hw results, so no extra jobs appear.
        assert len(jobs) == 4
        assert [j.ordinal for j in jobs] == [0, 1, 2, 3]
        machines = {(j.workload, j.machine_name) for j in jobs}
        assert len(machines) == 4
        assert campaign_jobs(config) == jobs
        # Keys really are the executor's cache keys.
        job = jobs[0]
        trace = compile_trace(
            workload_by_name(job.workload), job.n_instrs
        )
        assert cache_key(trace, machine_from_spec(job.machine)) == job.key


class TestBoardSync:
    def test_sync_queues_then_reports_pending(self, board):
        jobs = [_fake_job(i) for i in range(3)]
        first = board.create_or_sync("fp", jobs)
        assert first == {
            "queued": 3, "reused": 0, "requeued": 0, "retired": 0,
            "pending": 0,
        }
        second = board.create_or_sync("fp", jobs)
        assert second["queued"] == 0
        assert second["pending"] == 3
        events = [r["event"] for r in board.read_journal()]
        assert events.count("board-synced") == 1
        assert events.count("job-queued") == 3

    def test_sync_retires_unwanted_keys(self, board):
        jobs = [_fake_job(i) for i in range(3)]
        board.create_or_sync("fp", jobs)
        counts = board.create_or_sync("fp", jobs[:1])
        assert counts["retired"] == 2
        assert board.job_keys() == [jobs[0].key]

    def test_fingerprint_change_is_journalled(self, board):
        board.create_or_sync("fp-a", [_fake_job(0)])
        board.create_or_sync("fp-b", [_fake_job(0)])
        synced = [
            r for r in board.read_journal() if r["event"] == "board-synced"
        ]
        assert [r["fingerprint"] for r in synced] == ["fp-a", "fp-b"]
        assert synced[1]["previous"] == "fp-a"


class TestLeasing:
    def test_claims_scan_sorted_and_exclude_leased(self, board):
        jobs = [_fake_job(i) for i in range(2)]
        board.create_or_sync("fp", jobs)
        first = board.claim("alice")
        second = board.claim("bob")
        assert first.job.key == jobs[0].key
        assert not first.stolen and first.attempt == 1
        assert second.job.key == jobs[1].key
        # Everything is leased and live: no third claim.
        assert board.claim("carol") is None

    def test_done_jobs_are_never_reclaimed(self, board):
        board.create_or_sync("fp", [_fake_job(0)])
        claim = board.claim("alice")
        board.mark_done(claim.job.key, "alice")
        assert board.claim("bob") is None
        assert board.all_settled()

    def test_expired_lease_is_stolen_with_attempt_bump(self, tmp_path):
        board = CampaignBoard(str(tmp_path), ttl_seconds=0.05)
        board.create_or_sync("fp", [_fake_job(0)])
        claim = board.claim("alice")
        # Age the lease past the TTL without sleeping: the heartbeat and
        # the board clock are both filesystem mtimes.
        past = board.now() - 1.0
        os.utime(board._lease_path(claim.job.key), (past, past))
        stolen = board.claim("bob")
        assert stolen.stolen
        assert stolen.attempt == 2
        assert not board.owns(claim.job.key, "alice")
        assert board.owns(claim.job.key, "bob")
        record = [
            r for r in board.read_journal() if r["event"] == "lease-stolen"
        ][0]
        assert record["previous"] == "alice"
        assert record["owner"] == "bob"
        assert board.telemetry.leases_stolen == 1

    def test_exhausted_attempts_poison_the_job(self, tmp_path):
        board = CampaignBoard(str(tmp_path), ttl_seconds=0.05, max_attempts=1)
        board.create_or_sync("fp", [_fake_job(0)])
        claim = board.claim("alice")
        past = board.now() - 1.0
        os.utime(board._lease_path(claim.job.key), (past, past))
        assert board.claim("bob") is None
        poisoned = board.poisoned_jobs()
        assert len(poisoned) == 1
        assert "retry budget exhausted" in poisoned[0][2]
        assert board.all_settled()
        assert board.status()["poisoned"] == 1

    def test_release_requeues_for_the_next_claimant(self, board):
        board.create_or_sync("fp", [_fake_job(0)])
        claim = board.claim("alice")
        assert board.release(claim.job.key, "alice", reason="boom")
        again = board.claim("bob")
        assert again.attempt == 2
        assert not again.stolen  # released, not expired
        record = [
            r for r in board.read_journal() if r["event"] == "job-requeued"
        ][0]
        assert record["reason"] == "boom"

    def test_heartbeat_fails_after_losing_the_lease(self, board):
        board.create_or_sync("fp", [_fake_job(0)])
        claim = board.claim("alice")
        assert board.heartbeat(claim.job.key, "alice")
        board.release(claim.job.key, "alice")
        assert not board.heartbeat(claim.job.key, "alice")


class TestJournal:
    def test_torn_tail_is_dropped_and_seq_recovers(self, board):
        board.create_or_sync("fp", [_fake_job(0)])
        intact = board.read_journal()
        with open(board.journal_path, "a") as handle:
            handle.write('{"seq": 99, "event": "torn"\n')
        assert board.read_journal() == intact
        with board._lock():
            board._append_journal("after-tear")
        records = board.read_journal()
        assert records[-1]["event"] == "after-tear"
        assert records[-1]["seq"] == intact[-1]["seq"] + 1

    def test_checksum_mismatch_truncates(self, board):
        board.create_or_sync("fp", [_fake_job(0), _fake_job(1)])
        records = board.read_journal()
        tampered = dict(records[1])
        tampered["event"] = "forged"
        lines = [json.dumps(r, sort_keys=True) for r in records]
        lines[1] = json.dumps(tampered, sort_keys=True)
        with open(board.journal_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert board.read_journal() == records[:1]


class TestBoardOpen:
    def test_open_adopts_recorded_settings(self, tmp_path):
        board = CampaignBoard(
            str(tmp_path), ttl_seconds=1.5, max_attempts=7, prefix_chars=3
        )
        board.create_or_sync("fp", [])
        reopened = CampaignBoard.open(str(tmp_path))
        assert reopened.ttl_seconds == 1.5
        assert reopened.max_attempts == 7
        assert reopened.prefix_chars == 3

    def test_open_rejects_missing_and_newer_boards(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignBoard.open(str(tmp_path / "nowhere"))
        board = CampaignBoard(str(tmp_path))
        board.create_or_sync("fp", [])
        meta = json.load(open(board.meta_path))
        meta["schema"] = 99
        with open(board.meta_path, "w") as handle:
            json.dump(meta, handle)
        with pytest.raises(ValueError, match="schema"):
            CampaignBoard.open(str(tmp_path))

    def test_invalid_settings_are_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_seconds"):
            CampaignBoard(str(tmp_path), ttl_seconds=0)
        with pytest.raises(ValueError, match="max_attempts"):
            CampaignBoard(str(tmp_path), max_attempts=0)


@pytest.fixture(scope="module")
def tiny_board(tmp_path_factory):
    """A real one-workload board, fully drained by one worker."""
    directory = str(tmp_path_factory.mktemp("campaign") / "board")
    profiles = (workload_by_name("mi-sha"),)
    config = GemStoneConfig(
        core="A15",
        workloads=profiles,
        power_workloads=profiles,
        trace_instructions=2_000,
        retry=RetryPolicy(max_attempts=2, base_seconds=0.0),
        engine="scalar",
        guard_level="off",
    )
    board = CampaignBoard(directory)
    board.create_or_sync(
        RunManifest.from_config(config).fingerprint, campaign_jobs(config)
    )
    return directory


class TestWorkerLoop:
    def test_worker_drains_board_and_reuses_results(self, tiny_board):
        report = run_worker(
            tiny_board, owner="unit", engine="scalar", in_worker=False
        )
        assert report.done == 2
        assert report.errors == 0
        board = CampaignBoard.open(tiny_board)
        assert board.all_settled()
        # A second worker finds nothing to do.
        idle = run_worker(
            tiny_board, owner="late", engine="scalar", in_worker=False
        )
        assert idle.claimed == 0

    def test_orphaned_result_is_adopted_not_recomputed(self, tiny_board):
        board = CampaignBoard.open(tiny_board)
        key = board.job_keys()[0]
        # Simulate a shard that stored its result but died before the
        # done marker.
        os.remove(board._done_path(key))
        report = run_worker(
            tiny_board, owner="healer", engine="scalar", in_worker=False
        )
        assert report.adopted == 1
        assert report.done == 1
        done = board._read_json(board._done_path(key))
        assert done["adopted"] is True


class TestCampaignCli:
    def test_worker_and_status_round_trip(self, tiny_board, capsys):
        assert main(["campaign", "worker", "--board", tiny_board,
                     "--owner", "cli-w", "--engine", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "cli-w" in out
        assert main(["campaign", "status", "--board", tiny_board]) == 0
        out = capsys.readouterr().out
        assert "campaign board" in out
        assert "job-done" in out or "journal tail" in out

    def test_status_without_board_fails_cleanly(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["campaign", "status", "--board", missing]) == 1
        assert "no campaign board" in capsys.readouterr().err
