"""Chaos suite: columnar faults against guarded campaigns.

Every scenario asserts the guard layer's core promise: whatever columnar
fault is injected — corrupt decoded columns, poisoned fixpoint memos, NaNs
leaking out of a vectorized pass, workers dying over and over on one job,
worker memory-budget breaches — the campaign's numbers stay *bit-identical*
to an all-scalar fault-free run, and every intervention is recorded as a
:class:`~repro.sim.guard.GuardEvent` in :class:`CollectionHealth` and the
report, never silently absorbed.

Runs in the default ``make test`` path; ``make test-chaos`` selects it.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.report import render_collection_health
from repro.sim.cpu import simulate
from repro.sim.executor import RetryPolicy, SimExecutor
from repro.sim.faults import FaultPlan
from repro.sim.guard import GuardPlan
from repro.sim.machine import hardware_a15
from repro.sim.result_cache import cache_key
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

from tests.conftest import SMALL_FREQS, TRACE_INSTRUCTIONS

pytestmark = pytest.mark.chaos

WORKLOADS = ("mi-sha", "mi-qsort", "dhrystone")
TARGET = "mi-sha"

NO_BACKOFF = RetryPolicy(max_attempts=2, base_seconds=0.0)

#: (fault plan constructor, guard event kind the campaign must record).
COLUMNAR_SCENARIOS = (
    ("corrupt-column", FaultPlan.corrupt_column, "decode-corrupt"),
    ("poison-memo", FaultPlan.poison_memo, "divergence"),
    ("nan-pass", FaultPlan.nan_pass, "nan-result"),
)


def _profiles():
    return tuple(workload_by_name(name) for name in WORKLOADS)


def _gemstone(faults=None, guard_level="paranoid", engine="auto", **overrides):
    defaults = dict(
        core="A15",
        workloads=_profiles(),
        power_workloads=_profiles(),
        frequencies=SMALL_FREQS,
        trace_instructions=TRACE_INSTRUCTIONS,
        retry=NO_BACKOFF,
        faults=faults,
        engine=engine,
        guard_level=guard_level,
    )
    defaults.update(overrides)
    return GemStone(GemStoneConfig(**defaults))


@pytest.fixture(scope="module")
def reference():
    """The all-scalar, guard-off dataset every scenario must reproduce."""
    return _gemstone(engine="scalar", guard_level="off").dataset


def _assert_rows_bit_identical(dataset, reference):
    assert [
        (r.workload, r.freq_hz) for r in dataset.runs
    ] == [(r.workload, r.freq_hz) for r in reference.runs]
    for run in dataset.runs:
        ref = reference.run(run.workload, run.freq_hz)
        assert run.hw_time == ref.hw_time
        assert run.hw.pmc == ref.hw.pmc
        assert run.gem5_time == ref.gem5_time
        assert run.gem5.stats == ref.gem5.stats


class TestColumnarFaultHealing:
    @pytest.mark.parametrize(
        "constructor, kind",
        [(c, k) for _, c, k in COLUMNAR_SCENARIOS],
        ids=[name for name, _, _ in COLUMNAR_SCENARIOS],
    )
    def test_campaign_bit_identical_with_fault_recorded(
        self, constructor, kind, reference
    ):
        gs = _gemstone(faults=constructor(TARGET))
        dataset = gs.dataset
        _assert_rows_bit_identical(dataset, reference)
        # Nothing failed — the guard healed in place...
        assert dataset.health.failed == 0
        # ...and left a structured record of every intervention.
        kinds = {e.kind for e in dataset.health.guard_events}
        assert kinds == {kind}
        assert all(e.workload == TARGET for e in dataset.health.guard_events)
        assert dataset.health.degraded
        assert "guard intervention(s)" in dataset.health.summary()

    def test_clean_guarded_campaign_matches_and_stays_clean(self, reference):
        dataset = _gemstone().dataset
        _assert_rows_bit_identical(dataset, reference)
        assert dataset.health.guard_events == []
        assert not dataset.health.degraded

    def test_report_renders_guard_interventions(self, reference):
        gs = _gemstone(faults=FaultPlan.corrupt_column(TARGET))
        text = render_collection_health(gs.dataset.health)
        assert "guard interventions" in text
        assert "[decode-corrupt]" in text
        assert TARGET in text

    def test_health_spans_validation_and_power(self):
        # "whetstone" is only simulated by the power campaign, so its
        # fault fires in that phase; the validation fault fires earlier.
        gs = _gemstone(
            faults=FaultPlan.corrupt_column(TARGET)
            | FaultPlan.corrupt_column("whetstone"),
            power_workloads=_profiles() + (workload_by_name("whetstone"),),
        )
        validation_events = len(gs.dataset.health.guard_events)
        assert validation_events > 0
        assert all(
            e.workload == TARGET for e in gs.health.guard_events
        )
        gs.power_dataset
        # The shared record accumulates both campaigns without
        # double-counting either: the validation events appear once, the
        # power-only workload's events join them.
        new = gs.health.guard_events[validation_events:]
        assert new
        assert {e.workload for e in new} == {"whetstone"}
        assert [
            e.workload for e in gs.health.guard_events[:validation_events]
        ].count(TARGET) == validation_events


class TestKillAndResume:
    def test_resume_through_guard_fallback_is_byte_identical(self, tmp_path):
        # Each lineage keeps an on-disk sim cache so the resumed process
        # memo-hits the phases the original already simulated, exactly as
        # the uninterrupted process memo-hits them in memory.
        faults = FaultPlan.poison_memo(TARGET)
        reference = _gemstone(
            faults=faults,
            checkpoint_dir=str(tmp_path / "ref-ckpt"),
            cache_dir=str(tmp_path / "ref-cache"),
        ).report()
        assert "[divergence]" in reference

        directory = str(tmp_path / "ckpt")
        cache_dir = str(tmp_path / "cache")
        victim = _gemstone(
            faults=faults, checkpoint_dir=directory, cache_dir=cache_dir
        )
        victim.dataset  # guard fallback fires in this phase
        assert victim.health.guard_events
        del victim  # SIGKILL equivalent: checkpoints are all that survive

        resumed = _gemstone(
            faults=faults,
            checkpoint_dir=directory,
            cache_dir=cache_dir,
            resume=True,
        )
        assert resumed.report() == reference
        # The dataset phase restored (events came back from the
        # checkpoint), the later phases recomputed their own.
        assert resumed.runstate.telemetry.restored >= 1
        assert resumed.health.guard_events


class TestPoolScenarios:
    @pytest.fixture(scope="class")
    def traces(self):
        return tuple(
            compile_trace(workload_by_name(name), TRACE_INSTRUCTIONS)
            for name in WORKLOADS
        )

    @pytest.fixture(scope="class")
    def machine(self):
        return hardware_a15()

    @pytest.fixture(scope="class")
    def golden(self, traces, machine):
        return [simulate(t, machine, "scalar") for t in traces]

    def _assert_same(self, results, golden):
        for result, ref in zip(results, golden):
            assert result.counts == ref.counts
            assert result.core_cycles == ref.core_cycles
            assert result.components == ref.components

    def test_worker_oom_isolated_bit_identical(self, traces, machine, golden):
        executor = SimExecutor(
            jobs=2,
            retry=NO_BACKOFF,
            faults=FaultPlan.worker_oom(TARGET),
            guard=GuardPlan.from_level("sentinel"),
        )
        results = executor.run_many([(t, machine) for t in traces])
        self._assert_same(results, golden)
        assert executor.telemetry.jobs_isolated >= 1
        assert executor.guard.telemetry.oom_events == 1
        kinds = [e.kind for e in executor.guard.events]
        assert kinds == ["worker-oom"]
        assert executor.guard.events[0].action == "isolate"

    def test_poison_job_circuit_broken_into_serial_lane(
        self, traces, machine, golden
    ):
        executor = SimExecutor(
            jobs=2,
            retry=NO_BACKOFF,
            faults=FaultPlan.crash_workload(TARGET, attempts=10),
            guard=GuardPlan(level="sentinel", poison_threshold=2),
        )
        # Two batches each lose a worker to the poison job (the batches
        # themselves fail: the crash outlives the retry budget).
        pairs = [(t, machine) for t in traces]
        for _ in range(2):
            results = executor.run_many(pairs, raise_on_error=False)
            assert any(r is None for r in results)
        crashes = executor.telemetry.worker_crashes
        poisoned_key = cache_key(traces[0], machine)
        assert executor.guard.watchdog.is_poisoned(poisoned_key)

        # The third batch circuit-breaks it: the poison job runs (and
        # keeps failing) in the parent's serial quarantine lane, no
        # further workers die, and the healthy jobs are untouched.
        results = executor.run_many(pairs, raise_on_error=False)
        assert executor.telemetry.worker_crashes == crashes
        assert executor.guard.telemetry.poison_jobs == 1
        poison = [e for e in executor.guard.events if e.kind == "poison-job"]
        assert len(poison) == 1
        assert poison[0].workload == TARGET
        assert poison[0].action == "circuit-break"
        healthy = [
            (result, ref)
            for result, ref, trace in zip(results, golden, traces)
            if trace.name != TARGET
        ]
        assert healthy
        self._assert_same(
            [r for r, _ in healthy], [ref for _, ref in healthy]
        )
