"""Chaos suite: distributed campaigns under seeded worker-loss faults.

Every scenario asserts the campaign layer's core promise: whatever
happens to the shards — crashes between the store write and the done
marker, literal ``SIGKILL`` while a lease is held, stalls that let a
lease expire under a live worker, repeat offenders exhausting the retry
budget, a coordinator dying mid-campaign, corrupted store entries —
the collated datasets stay *bit-identical* to a serial run, no job ever
yields duplicate results or power samples, and every intervention is
journalled and surfaced as structured health records, never silently
absorbed.

Runs in the default ``make test`` path; ``make test-dist`` selects it.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.runstate import RunManifest
from repro.sim.campaign import (
    CampaignBoard,
    _worker_entry,
    campaign_jobs,
    run_campaign,
    run_worker,
)
from repro.sim.executor import RetryPolicy
from repro.sim.faults import FaultPlan
from repro.workloads.suites import workload_by_name

from tests.conftest import SMALL_FREQS

pytestmark = [pytest.mark.chaos, pytest.mark.dist]

WORKLOADS = ("mi-sha", "mi-qsort", "dhrystone")
TARGET = "mi-sha"
N_INSTRS = 4_000

NO_BACKOFF = RetryPolicy(max_attempts=2, base_seconds=0.0)


def _profiles(names=WORKLOADS):
    return tuple(workload_by_name(name) for name in names)


def _config(faults=None, **overrides):
    defaults = dict(
        core="A15",
        workloads=_profiles(),
        power_workloads=_profiles(),
        frequencies=SMALL_FREQS,
        trace_instructions=N_INSTRS,
        retry=NO_BACKOFF,
        faults=faults,
        engine="scalar",
        guard_level="off",
    )
    defaults.update(overrides)
    return GemStoneConfig(**defaults)


@pytest.fixture(scope="module")
def reference():
    """The serial gemstone every campaign must reproduce byte for byte."""
    gs = GemStone(_config())
    return gs.dataset, gs.power_dataset


def _assert_bit_identical(gemstone, reference):
    dataset, power = reference
    campaign_dataset = gemstone.dataset
    assert [
        (r.workload, r.freq_hz) for r in campaign_dataset.runs
    ] == [(r.workload, r.freq_hz) for r in dataset.runs]
    for run in campaign_dataset.runs:
        ref = dataset.run(run.workload, run.freq_hz)
        assert run.hw_time == ref.hw_time
        assert run.hw.pmc == ref.hw.pmc
        assert run.gem5_time == ref.gem5_time
        assert run.gem5.stats == ref.gem5.stats
    campaign_power = gemstone.power_dataset
    # Bit-identical and free of duplicate samples: same (workload, OPP)
    # multiset, every observation equal.
    assert [
        (o.workload, o.freq_hz) for o in campaign_power
    ] == [(o.workload, o.freq_hz) for o in power]
    assert campaign_power == power


def _assert_no_duplicate_completions(board_dir):
    """Every job key reaches ``job-done`` exactly once in the journal."""
    board = CampaignBoard.open(board_dir)
    done = [
        r["key"] for r in board.read_journal() if r["event"] == "job-done"
    ]
    assert len(done) == len(set(done))
    assert board.all_settled()


def _journal_events(board_dir):
    return [r["event"] for r in CampaignBoard.open(board_dir).read_journal()]


class TestCleanCampaign:
    def test_two_shards_bit_identical_to_serial(self, tmp_path, reference):
        board_dir = str(tmp_path / "board")
        result = run_campaign(_config(), board_dir, shards=2)
        assert not result.degraded
        assert result.lost_shards == 0
        assert result.poisoned == ()
        assert result.sync["queued"] == 6
        assert result.status == {
            "total": 6, "done": 6, "poisoned": 0, "leased": 0, "queued": 0,
        }
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)
        assert result.gemstone.health.guard_events == []

    def test_rerun_reuses_every_result(self, tmp_path, reference):
        board_dir = str(tmp_path / "board")
        run_campaign(_config(), board_dir, shards=2, collate=False)
        claims_before = _journal_events(board_dir).count("lease-claimed")
        again = run_campaign(_config(), board_dir, shards=2)
        assert again.sync["reused"] == 6
        assert again.sync["queued"] == 0
        # Incremental recompute: the journal proves nothing re-ran.
        assert _journal_events(board_dir).count(
            "lease-claimed"
        ) == claims_before
        _assert_bit_identical(again.gemstone, reference)


class TestShardLoss:
    def test_shard_crash_after_store_is_adopted(self, tmp_path, reference):
        # The shard dies between the store write and the done marker; the
        # orphaned-but-intact result must be adopted, never recomputed.
        board_dir = str(tmp_path / "board")
        result = run_campaign(
            _config(faults=FaultPlan.shard_crash(TARGET, attempts=2)),
            board_dir, shards=2, ttl_seconds=0.5,
        )
        assert result.lost_shards >= 1
        assert result.degraded
        assert result.poisoned == ()
        kinds = {e.kind for e in result.health.guard_events}
        assert "shard-lost" in kinds
        board = CampaignBoard.open(board_dir)
        adopted = [
            r for r in board.read_journal()
            if r["event"] == "job-done" and r.get("adopted")
        ]
        assert adopted
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)

    def test_sigkilled_shard_lease_is_stolen(self, tmp_path, reference):
        # A literal SIGKILL mid-lease: the worker stalls (injected) with a
        # lease held, dies without cleanup, and a thief converges the
        # board to the same bytes.
        board_dir = str(tmp_path / "board")
        config = _config()
        board = CampaignBoard(board_dir, ttl_seconds=0.3)
        board.create_or_sync(
            RunManifest.from_config(config).fingerprint,
            campaign_jobs(config),
        )
        target_keys = {
            j.key for j in campaign_jobs(config) if j.workload == TARGET
        }
        victim = multiprocessing.get_context().Process(
            target=_worker_entry,
            args=(board_dir, "victim", "scalar", "off",
                  FaultPlan.lease_stall(TARGET, seconds=60.0, attempts=2),
                  None, 0.02),
        )
        victim.start()
        deadline = time.monotonic() + 30.0
        try:
            while time.monotonic() < deadline:
                held = [
                    k for k in sorted(target_keys)
                    if board.owns(k, "victim")
                ]
                if held:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never leased a target job")
        finally:
            victim.kill()
            victim.join()
        thief = run_worker(
            board_dir, owner="thief", engine="scalar", in_worker=False
        )
        assert thief.stolen >= 1
        assert _journal_events(board_dir).count("lease-stolen") >= 1
        _assert_no_duplicate_completions(board_dir)
        collation = GemStone(
            dataclasses.replace(config, board_dir=board_dir)
        )
        _assert_bit_identical(collation, reference)

    def test_lease_expires_under_live_worker(self, tmp_path, reference):
        # The stalled worker survives, wakes after losing its lease, and
        # must abandon the job instead of double-completing it.
        board_dir = str(tmp_path / "board")
        config = _config()
        board = CampaignBoard(board_dir, ttl_seconds=0.2)
        board.create_or_sync(
            RunManifest.from_config(config).fingerprint,
            campaign_jobs(config),
        )
        reports = {}

        def stall_worker():
            reports["sleepy"] = run_worker(
                board_dir, owner="sleepy", engine="scalar",
                faults=FaultPlan.lease_stall(
                    TARGET, seconds=1.0, attempts=2
                ),
                in_worker=False, poll_seconds=0.02,
            )

        thread = threading.Thread(target=stall_worker)
        thread.start()
        time.sleep(0.35)  # let a stalled lease expire
        reports["peer"] = run_worker(
            board_dir, owner="peer", engine="scalar", in_worker=False,
            poll_seconds=0.02,
        )
        thread.join()
        assert reports["sleepy"].abandoned >= 1
        assert reports["peer"].stolen >= 1
        _assert_no_duplicate_completions(board_dir)
        collation = GemStone(
            dataclasses.replace(config, board_dir=board_dir)
        )
        _assert_bit_identical(collation, reference)


class TestPoisoning:
    def test_repeat_offender_poisons_across_shards(self, tmp_path):
        # Every attempt fails, on whichever shard claims the job: the
        # board's attempt budget must circuit-break it instead of letting
        # the campaign spin forever.
        board_dir = str(tmp_path / "board")
        result = run_campaign(
            _config(faults=FaultPlan.worker_oom(TARGET, attempts=99)),
            board_dir, shards=2, collate=False,
        )
        assert result.degraded
        assert result.status["poisoned"] == 2  # hw + gem5 job
        assert {w for _k, w, _r in result.poisoned} == {TARGET}
        assert all(
            "retry budget exhausted" in reason
            for _k, _w, reason in result.poisoned
        )
        assert len(result.health.failures) == 2
        assert result.status["done"] == 4
        board = CampaignBoard.open(board_dir)
        assert board.all_settled()
        requeues = [
            r for r in board.read_journal()
            if r["event"] == "job-requeued" and "MemoryError" in
            r.get("reason", "")
        ]
        assert requeues

    def test_single_failure_retries_clean(self, tmp_path, reference):
        # One failed attempt is a requeue, not a poison: attempt 2 on the
        # next claimant completes the job.
        board_dir = str(tmp_path / "board")
        result = run_campaign(
            _config(faults=FaultPlan.worker_oom(TARGET, attempts=1)),
            board_dir, shards=2,
            max_attempts=3,
        )
        assert result.poisoned == ()
        events = _journal_events(board_dir)
        assert events.count("job-requeued") >= 1
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)


class TestIncrementalRecompute:
    def test_coordinator_killed_midway_resumes_without_rework(
        self, tmp_path, reference
    ):
        # A coordinator that dies mid-campaign leaves a partially-drained
        # board; the next coordinator must reuse every finished job and
        # re-run exactly the remainder.
        board_dir = str(tmp_path / "board")
        config = _config()
        board = CampaignBoard(board_dir)
        board.create_or_sync(
            RunManifest.from_config(config).fingerprint,
            campaign_jobs(config),
        )
        partial = run_worker(
            board_dir, owner="doomed", engine="scalar", max_jobs=2,
            in_worker=False,
        )
        assert partial.done == 2
        claims_before = _journal_events(board_dir).count("lease-claimed")
        result = run_campaign(_config(), board_dir, shards=2)
        assert result.sync["reused"] == 2
        assert result.sync["pending"] == 4
        new_claims = _journal_events(board_dir).count(
            "lease-claimed"
        ) - claims_before
        assert new_claims == 4
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)

    def test_corrupt_store_entry_requeues_exactly_one_job(
        self, tmp_path, reference
    ):
        board_dir = str(tmp_path / "board")
        run_campaign(_config(), board_dir, shards=2, collate=False)
        board = CampaignBoard.open(board_dir)
        key = board.job_keys()[0]
        store = board.store()
        path = store._shard(key)._path(key)
        with open(path, "r+") as handle:
            handle.write("corrupt")
        claims_before = _journal_events(board_dir).count("lease-claimed")
        result = run_campaign(_config(), board_dir, shards=2)
        assert result.sync["requeued"] == 1
        assert result.sync["reused"] == 5
        new_claims = _journal_events(board_dir).count(
            "lease-claimed"
        ) - claims_before
        assert new_claims == 1
        # The invalidated key is legitimately completed twice (once per
        # campaign); every other key exactly once.
        done = [
            r["key"] for r in board.read_journal()
            if r["event"] == "job-done"
        ]
        assert done.count(key) == 2
        assert all(done.count(k) == 1 for k in set(done) - {key})
        assert board.all_settled()
        _assert_bit_identical(result.gemstone, reference)

    def test_added_workload_runs_only_the_new_subgraph(
        self, tmp_path, reference
    ):
        board_dir = str(tmp_path / "board")
        two = _profiles(WORKLOADS[:2])
        run_campaign(
            _config(workloads=two, power_workloads=two),
            board_dir, shards=2, collate=False,
        )
        claims_before = _journal_events(board_dir).count("lease-claimed")
        result = run_campaign(_config(), board_dir, shards=2)
        assert result.sync["queued"] == 2  # hw + gem5 for the new workload
        assert result.sync["reused"] == 4
        new_claims = _journal_events(board_dir).count(
            "lease-claimed"
        ) - claims_before
        assert new_claims == 2
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)


class TestTraceStitching:
    """Campaign control tower: cross-shard traces under chaos."""

    def _traced_campaign(self, tmp_path, **kwargs):
        import os

        from repro.obs.exporters import EVENTS_FILE
        from repro.obs.tracer import Tracer

        board_dir = str(tmp_path / "board")
        trace_dir = str(tmp_path / "trace")
        os.makedirs(trace_dir, exist_ok=True)
        tracer = Tracer(
            enabled=True,
            stream_path=os.path.join(trace_dir, EVENTS_FILE),
        )
        result = run_campaign(
            _config(), board_dir, shards=2, tracer=tracer, **kwargs
        )
        tracer.close()
        return board_dir, trace_dir, result

    def test_clean_report_byte_identical_traced_or_not(
        self, tmp_path, reference
    ):
        # Tracing must never feed back into results: same report bytes.
        from repro.core.report import render_full_report

        plain = run_campaign(_config(), str(tmp_path / "plain"), shards=2)
        _board, _trace, traced = self._traced_campaign(tmp_path)
        assert not plain.degraded and not traced.degraded
        assert plain.summary == traced.summary
        assert render_full_report(
            plain.gemstone, include_telemetry=False
        ) == render_full_report(traced.gemstone, include_telemetry=False)
        _assert_bit_identical(traced.gemstone, reference)

    def test_merged_trace_and_prom_snapshot(self, tmp_path):
        import json

        from repro.obs.exporters import validate_chrome_trace
        from repro.obs.merge import export_campaign_trace

        board_dir, trace_dir, result = self._traced_campaign(tmp_path)
        paths = export_campaign_trace(board_dir, trace_dir)
        with open(paths["chrome"]) as handle:
            document = json.load(handle)
        validate_chrome_trace(document)
        tracks = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        # The coordinator timeline plus one distinct track per shard.
        assert "campaign shard-0" in tracks
        assert "campaign shard-1" in tracks
        assert len(tracks) >= 3
        # The merged Prometheus counters equal the journal's job counts.
        done = _journal_events(board_dir).count("job-done")
        with open(paths["metrics"]) as handle:
            prom = handle.read()
        assert f"repro_sim_campaign_jobs_done {done}" in prom
        assert result.status["done"] == done

    def test_sigkilled_shard_keeps_surviving_spans(self, tmp_path):
        # SIGKILL mid-segment: the unsealed tail merges best-effort, the
        # torn final line is dropped, and the board still converges.
        from repro.obs.merge import merge_campaign_records, read_shard_stream

        board_dir = str(tmp_path / "board")
        config = _config()
        board = CampaignBoard(board_dir, ttl_seconds=0.3)
        board.create_or_sync(
            RunManifest.from_config(config).fingerprint,
            campaign_jobs(config),
        )
        victim = multiprocessing.get_context().Process(
            target=_worker_entry,
            args=(board_dir, "victim", "scalar", "off", None,
                  None, 0.02, True),
        )
        victim.start()
        deadline = time.monotonic() + 30.0
        try:
            while time.monotonic() < deadline:
                done = sum(
                    1
                    for r in CampaignBoard.open(board_dir).read_journal()
                    if r["event"] == "job-done"
                )
                if done >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never completed a job")
        finally:
            victim.kill()
            victim.join()
        import os

        stream = os.path.join(board_dir, "obs", "victim", "events.jsonl")
        records, problems = read_shard_stream(stream)
        # The segment never sealed, yet the finished spans survive.
        assert any("no seal" in p for p in problems)
        assert any(r.get("name") == "campaign-job" for r in records)
        thief = run_worker(
            board_dir, owner="thief", engine="scalar", in_worker=False
        )
        assert thief.done >= 1
        merged, names = merge_campaign_records(board_dir)
        assert "campaign victim" in names.values()
        victim_pids = {
            pid for pid, name in names.items() if "victim" in name
        }
        assert any(
            r.get("segment") in victim_pids
            and r.get("name") == "campaign-job"
            for r in merged
        )
        _assert_no_duplicate_completions(board_dir)

    def test_lease_steal_visible_on_both_tracks(self, tmp_path):
        # The victim's track closes the job span with abandoned=True; the
        # thief's track carries the matching stolen=True span.
        import os

        from repro.obs.merge import merge_campaign_records
        from repro.obs.tracer import Tracer

        board_dir = str(tmp_path / "board")
        config = _config()
        board = CampaignBoard(board_dir, ttl_seconds=0.2)
        board.create_or_sync(
            RunManifest.from_config(config).fingerprint,
            campaign_jobs(config),
        )

        def _tracer(owner):
            return Tracer(
                enabled=True,
                stream_path=os.path.join(
                    board_dir, "obs", owner, "events.jsonl"
                ),
            )

        tracers = {"sleepy": _tracer("sleepy"), "peer": _tracer("peer")}

        def stall_worker():
            run_worker(
                board_dir, owner="sleepy", engine="scalar",
                faults=FaultPlan.lease_stall(
                    TARGET, seconds=1.0, attempts=2
                ),
                in_worker=False, poll_seconds=0.02,
                tracer=tracers["sleepy"],
            )

        thread = threading.Thread(target=stall_worker)
        thread.start()
        time.sleep(0.35)
        peer = run_worker(
            board_dir, owner="peer", engine="scalar", in_worker=False,
            poll_seconds=0.02, tracer=tracers["peer"],
        )
        thread.join()
        for tracer in tracers.values():
            tracer.close()
        assert peer.stolen >= 1
        merged, names = merge_campaign_records(board_dir)
        track_of = {name: pid for pid, name in names.items()}
        jobs = [
            r for r in merged
            if r.get("kind") == "span" and r.get("name") == "campaign-job"
        ]
        abandoned = [
            r for r in jobs
            if r["segment"] == track_of["campaign sleepy"]
            and r["attrs"].get("abandoned")
        ]
        stolen = [
            r for r in jobs
            if r["segment"] == track_of["campaign peer"]
            and r["attrs"].get("stolen")
        ]
        assert abandoned and stolen
        _assert_no_duplicate_completions(board_dir)

    def test_coordinator_kill_resume_merge_is_byte_identical(
        self, tmp_path, reference
    ):
        # A coordinator killed mid-campaign leaves a partial board; after
        # the resumed campaign drains it, exporting the merged trace is a
        # pure function — repeated exports produce identical bytes.
        self._traced_campaign(tmp_path, max_jobs_per_shard=1, collate=False)
        board_dir, trace_dir, result = self._traced_campaign(tmp_path)
        assert result.status["done"] == 6
        from repro.obs.merge import export_campaign_trace

        paths = export_campaign_trace(board_dir, trace_dir)
        with open(paths["chrome"], "rb") as handle:
            first = handle.read()
        export_campaign_trace(board_dir, trace_dir)
        with open(paths["chrome"], "rb") as handle:
            assert handle.read() == first
        _assert_no_duplicate_completions(board_dir)
        _assert_bit_identical(result.gemstone, reference)
