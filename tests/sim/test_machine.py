"""Tests for machine configurations: the encoded specification errors."""

import pytest

from repro.sim.machine import (
    CacheGeometry,
    gem5_ex5_big,
    gem5_ex5_big_fixed_bp,
    gem5_ex5_little,
    hardware_a7,
    hardware_a15,
    machine_by_name,
)


class TestFactories:
    def test_all_factories_resolve_by_name(self):
        for name in ("hw-a15", "hw-a7", "gem5-ex5-big",
                     "gem5-ex5-big-fixed", "gem5-ex5-little"):
            machine = machine_by_name(name)
            assert machine.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            machine_by_name("gem5-ex5-huge")

    def test_flavours(self):
        assert hardware_a15().flavour == "hardware"
        assert gem5_ex5_big().flavour == "gem5"

    def test_cores(self):
        assert hardware_a7().core == "A7"
        assert gem5_ex5_little().core == "A7"
        assert gem5_ex5_big().core == "A15"

    def test_describe_mentions_key_facts(self):
        text = gem5_ex5_big().describe()
        assert "gem5" in text and "A15" in text


class TestA15SpecificationErrors:
    """Every Section IV-F divergence must be present in the config pair."""

    def setup_method(self):
        self.hw = hardware_a15()
        self.gem5 = gem5_ex5_big()

    def test_buggy_predictor(self):
        assert self.hw.predictor == "tournament"
        assert self.gem5.predictor == "buggy_tournament"

    def test_itlb_32_vs_64(self):
        assert self.hw.tlb.itlb_entries == 32
        assert self.gem5.tlb.itlb_entries == 64

    def test_unified_vs_split_l2_tlb(self):
        assert self.hw.tlb.unified_l2
        assert not self.gem5.tlb.unified_l2

    def test_hw_l2_tlb_is_512_entry_4_way(self):
        assert self.hw.tlb.l2_entries == 512
        assert self.hw.tlb.l2_assoc == 4

    def test_walker_cache_latency_higher(self):
        assert self.gem5.tlb.l2_latency > self.hw.tlb.l2_latency

    def test_dram_latency_too_low_in_model(self):
        assert self.gem5.dram_latency_ns < self.hw.dram_latency_ns

    def test_write_streaming_missing_in_model(self):
        assert self.hw.l1d.write_streaming
        assert not self.gem5.l1d.write_streaming

    def test_prefetcher_over_aggressive_in_model(self):
        assert self.gem5.l2.prefetch_degree > self.hw.l2.prefetch_degree

    def test_sync_too_cheap_in_model(self):
        assert self.gem5.barrier_cycles < self.hw.barrier_cycles
        assert self.gem5.ldrex_cycles < self.hw.ldrex_cycles

    def test_accounting_quirks(self):
        assert self.gem5.l1i_access_per_instruction
        assert self.gem5.vfp_counted_as_simd
        assert not self.hw.l1i_access_per_instruction

    def test_shared_truths(self):
        # Parameters the model gets right must be identical.
        assert self.hw.l1i.size_kb == self.gem5.l1i.size_kb == 32
        assert self.hw.l2.size_kb == self.gem5.l2.size_kb == 2048
        assert self.hw.issue_width == self.gem5.issue_width


class TestBpFixVariant:
    def test_only_predictor_related_fields_change(self):
        buggy = gem5_ex5_big()
        fixed = gem5_ex5_big_fixed_bp()
        assert fixed.predictor == "tournament"
        assert buggy.predictor == "buggy_tournament"
        # Spec errors persist after the fix (Section VII: remaining errors).
        assert fixed.dram_latency_ns == buggy.dram_latency_ns
        assert fixed.tlb == buggy.tlb
        assert fixed.l2 == buggy.l2


class TestA7Pair:
    def test_l2_latency_too_high_in_model(self):
        # Fig. 4: "the Cortex-A7 L2 cache latency was too high".
        assert gem5_ex5_little().l2.latency > hardware_a7().l2.latency

    def test_dram_latency_too_low_in_model(self):
        assert gem5_ex5_little().dram_latency_ns < hardware_a7().dram_latency_ns

    def test_a7_is_in_order(self):
        assert not hardware_a7().out_of_order
        assert not gem5_ex5_little().out_of_order

    def test_a7_bp_is_not_buggy(self):
        # The BP bug was specific to the ex5_big model.
        assert gem5_ex5_little().predictor == "tournament"


class TestCacheGeometry:
    def test_size_bytes(self):
        assert CacheGeometry(32, 4, 4).size_bytes == 32 * 1024

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CacheGeometry(32, 4, 4).size_kb = 64
