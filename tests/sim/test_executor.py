"""Tests for the parallel simulation executor.

The container running the suite may have a single CPU, so these tests
assert *correctness* (bit-identical results, dedup accounting, cache
integration, fallback behaviour) rather than speedup; the throughput
benchmark prints the speedup on capable hosts.
"""

from __future__ import annotations

import pytest

import repro.sim.executor as executor_mod
from repro.core.validation import collect_validation_dataset
from repro.sim.cpu import simulate
from repro.sim.executor import SimExecutor, SimTelemetry, prime_engines
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.sim.platform import HardwarePlatform
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

N_INSTRS = 6_000


@pytest.fixture(scope="module")
def traces():
    return tuple(
        compile_trace(workload_by_name(name), N_INSTRS)
        for name in ("mi-sha", "mi-qsort", "dhrystone")
    )


def _assert_same(a, b):
    assert a.counts == b.counts
    assert a.core_cycles == b.core_cycles
    assert a.dram_stall_weight == b.dram_stall_weight
    assert a.components == b.components


class TestRunMany:
    def test_serial_matches_direct_simulate(self, traces):
        machine = hardware_a15()
        results = SimExecutor(jobs=1).run_many([(t, machine) for t in traces])
        for trace, result in zip(traces, results):
            _assert_same(result, simulate(trace, machine))

    def test_parallel_matches_serial(self, traces):
        machine = hardware_a15()
        jobs = [(t, machine) for t in traces]
        serial = SimExecutor(jobs=1).run_many(jobs)
        parallel = SimExecutor(jobs=4).run_many(jobs)
        for s, p in zip(serial, parallel):
            _assert_same(s, p)

    def test_results_align_with_input_order(self, traces):
        machine = hardware_a15()
        results = SimExecutor(jobs=2).run_many([(t, machine) for t in traces])
        for trace, result in zip(traces, results):
            assert result.trace_name == trace.name

    def test_duplicate_jobs_simulated_once(self, traces):
        machine = hardware_a15()
        ex = SimExecutor(jobs=1)
        results = ex.run_many([(traces[0], machine)] * 3)
        assert ex.telemetry.jobs_submitted == 3
        assert ex.telemetry.jobs_deduplicated == 2
        assert ex.telemetry.jobs_run == 1
        assert results[0] is results[1] is results[2]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SimExecutor(jobs=0)


class TestCacheIntegration:
    def test_second_executor_hits_disk_cache(self, traces, tmp_path):
        machine = hardware_a15()
        cache_dir = str(tmp_path / "simcache")
        jobs = [(t, machine) for t in traces]
        first = SimExecutor(jobs=1, cache_dir=cache_dir)
        cold = first.run_many(jobs)
        assert first.telemetry.cache_hits == 0
        second = SimExecutor(jobs=1, cache_dir=cache_dir)
        warm = second.run_many(jobs)
        assert second.telemetry.cache_hits == len(traces)
        assert second.telemetry.jobs_run == 0
        for c, w in zip(cold, warm):
            _assert_same(c, w)

    def test_parallel_workers_populate_cache(self, traces, tmp_path):
        machine = hardware_a15()
        cache_dir = str(tmp_path / "simcache")
        ex = SimExecutor(jobs=4, cache_dir=cache_dir)
        results = ex.run_many([(t, machine) for t in traces])
        assert len(ex.cache) == len(traces)
        for trace, result in zip(traces, results):
            _assert_same(result, simulate(trace, machine))


class TestSerialFallback:
    def test_broken_pool_degrades_to_serial(self, traces, monkeypatch):
        class BrokenPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes in this environment")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", BrokenPool)
        machine = hardware_a15()
        ex = SimExecutor(jobs=4)
        results = ex.run_many([(t, machine) for t in traces])
        assert ex.telemetry.serial_fallbacks == 1
        assert ex.telemetry.parallel_jobs_run == 0
        for trace, result in zip(traces, results):
            _assert_same(result, simulate(trace, machine))


class TestTelemetry:
    def test_wall_seconds_sums_stages(self):
        t = SimTelemetry(probe_seconds=1.0, simulate_seconds=2.0, reap_seconds=0.5)
        assert t.wall_seconds == 3.5

    def test_throughput(self):
        t = SimTelemetry(jobs_run=4, simulate_seconds=2.0)
        assert t.throughput() == 2.0
        assert SimTelemetry().throughput() == 0.0


class TestPrimeEngines:
    def test_primes_both_engines_in_one_batch(self, small_profiles):
        profiles = small_profiles[:3]
        platform = HardwarePlatform("A15", trace_instructions=N_INSTRS)
        gem5 = Gem5Simulation(gem5_ex5_big(), trace_instructions=N_INSTRS)
        ex = SimExecutor(jobs=1)
        submitted = prime_engines(ex, (platform, gem5), profiles)
        assert submitted == 2 * len(profiles)
        assert ex.telemetry.batches == 1
        for engine in (platform, gem5):
            for profile in profiles:
                assert engine.has_result(profile.name)
        # A second priming finds everything memoised.
        assert prime_engines(ex, (platform, gem5), profiles) == 0


class TestCollectionDeterminism:
    def test_parallel_dataset_identical_to_serial(self, small_profiles):
        profiles = small_profiles[:3]
        frequencies = (600e6, 1000e6)

        def collect(jobs):
            platform = HardwarePlatform("A15", trace_instructions=N_INSTRS)
            gem5 = Gem5Simulation(gem5_ex5_big(), trace_instructions=N_INSTRS)
            return collect_validation_dataset(
                platform,
                gem5,
                profiles,
                frequencies,
                with_power=False,
                jobs=jobs,
            )

        serial = collect(1)
        parallel = collect(4)
        assert len(serial.runs) == len(parallel.runs)
        for s, p in zip(serial.runs, parallel.runs):
            assert s.workload == p.workload and s.freq_hz == p.freq_hz
            assert s.hw.time_seconds == p.hw.time_seconds
            assert s.hw.pmc == p.hw.pmc
            assert s.gem5.stats == p.gem5.stats


@pytest.mark.bench_smoke
def test_bench_smoke_parallel_collection(small_profiles, tmp_path):
    """Tiny end-to-end parallel collection: pool + cache + dataset in one go."""
    from repro.core.pipeline import GemStone, GemStoneConfig

    gs = GemStone(
        GemStoneConfig(
            core="A15",
            workloads=small_profiles[:2],
            frequencies=(1000e6,),
            trace_instructions=N_INSTRS,
            cache_dir=str(tmp_path / "simcache"),
            jobs=2,
        )
    )
    dataset = gs.dataset
    assert len(dataset.runs) == 2
    telemetry = gs.executor.telemetry
    assert telemetry.jobs_submitted > 0
    assert telemetry.jobs_run + telemetry.cache_hits > 0
