"""Unit tests for :mod:`repro.sim.guard`.

Plans and sampling, bit-exact result comparison, result/decode integrity
contracts, the guarded-simulate fallback matrix, guardrail accounting and
the campaign watchdog.  Campaign-level chaos scenarios live in
``test_chaos_columnar.py``.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.sim.cpu import simulate
from repro.sim.faults import FaultPlan
from repro.sim.guard import (
    SENTINEL_INTERVAL,
    CampaignWatchdog,
    GuardEvent,
    GuardPlan,
    GuardRail,
    check_memory_budget,
    compare_results,
    guarded_simulate,
    parent_rss_mb,
)
from repro.sim.machine import hardware_a15
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import columnar_checksum, compile_trace, validate_columnar

N_INSTRS = 6_000

PARANOID = GuardPlan.from_level("paranoid")


@pytest.fixture(scope="module")
def trace():
    return compile_trace(workload_by_name("mi-sha"), N_INSTRS)


@pytest.fixture(scope="module")
def machine():
    return hardware_a15()


@pytest.fixture(scope="module")
def golden(trace, machine):
    """The scalar reference result everything must stay bit-identical to."""
    return simulate(trace, machine, "scalar")


def _assert_same(a, b):
    assert compare_results(a, b) == []


def _fresh_decode(trace):
    """A freshly built decode, bypassing any memoised attach."""
    tables = trace.replay_tables()
    tables._columnar = None
    return tables, tables.columnar(trace)


class TestGuardPlan:
    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown guard level"):
            GuardPlan(level="bogus")

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="sentinel_interval"):
            GuardPlan(level="sentinel", sentinel_interval=0)
        with pytest.raises(ValueError, match="poison_threshold"):
            GuardPlan(level="sentinel", poison_threshold=0)

    def test_off_is_inactive(self):
        plan = GuardPlan.off()
        assert not plan.active
        assert not plan.supervises()
        assert not any(plan.samples(i) for i in range(64))

    def test_interval_resolution(self):
        assert GuardPlan.from_level("sentinel").interval == SENTINEL_INTERVAL
        assert GuardPlan.from_level("paranoid").interval == 1
        assert GuardPlan(level="sentinel", sentinel_interval=7).interval == 7

    def test_sampling_is_deterministic_and_seeded(self):
        plan = GuardPlan(level="sentinel", sentinel_interval=8)
        sampled = [i for i in range(64) if plan.samples(i)]
        assert sampled == list(range(0, 64, 8))
        assert sampled == [i for i in range(64) if plan.samples(i)]
        shifted = replace(plan, seed=3)
        assert [i for i in range(64) if shifted.samples(i)] == list(range(5, 64, 8))

    def test_paranoid_samples_every_ordinal(self):
        assert all(PARANOID.samples(i) for i in range(16))

    def test_supervises_only_with_a_budget(self):
        assert not GuardPlan.from_level("sentinel").supervises()
        assert GuardPlan(level="sentinel", heartbeat_seconds=1.0).supervises()
        assert GuardPlan(level="sentinel", batch_deadline_seconds=1.0).supervises()
        assert GuardPlan(level="sentinel", memory_budget_mb=1.0).supervises()
        assert not GuardPlan(level="off", heartbeat_seconds=1.0).supervises()


class TestGuardEvent:
    def test_summary_wording(self):
        event = GuardEvent(
            kind="divergence",
            workload="mi-sha",
            machine="A15",
            action="fallback-scalar",
            detail="core_cycles: 1.0 != 2.0",
        )
        assert event.summary() == (
            "[divergence] mi-sha on A15 -> fallback-scalar "
            "(core_cycles: 1.0 != 2.0)"
        )
        bare = GuardEvent("deadline", "*", "*", "observe")
        assert bare.summary() == "[deadline] * on * -> observe"


class TestCompareResults:
    def test_identical_results_match(self, golden):
        assert compare_results(golden, golden) == []

    def test_nan_equals_nan(self, golden):
        a = replace(golden, core_cycles=float("nan"))
        b = replace(golden, core_cycles=float("nan"))
        assert compare_results(a, b) == []

    def test_scalar_field_mismatch_reported(self, golden):
        tweaked = replace(golden, core_cycles=golden.core_cycles + 1.0)
        mismatches = compare_results(golden, tweaked)
        assert len(mismatches) == 1
        assert mismatches[0].startswith("core_cycles:")

    def test_mapping_mismatches_reported(self, golden):
        counts = dict(golden.counts)
        key = sorted(counts)[0]
        counts[key] += 1
        counts["phantom"] = 9
        mismatches = compare_results(golden, replace(golden, counts=counts))
        assert any(f"counts[{key}]" in m for m in mismatches)
        assert any("present on one side only" in m for m in mismatches)


class TestResultIntegrity:
    def test_clean_result_has_no_problems(self, golden):
        assert golden.integrity_problems() == []

    def test_nan_and_inf_flagged(self, golden):
        assert replace(golden, core_cycles=float("nan")).integrity_problems()
        assert replace(
            golden, dram_stall_weight=float("inf")
        ).integrity_problems()

    def test_negative_count_flagged(self, golden):
        counts = dict(golden.counts)
        counts[sorted(counts)[0]] = -1
        problems = replace(golden, counts=counts).integrity_problems()
        assert any("negative" in p for p in problems)


class TestDecodeContract:
    def test_fresh_decode_validates(self, trace):
        _, cols = _fresh_decode(trace)
        assert validate_columnar(cols) == []
        assert cols.checksum == columnar_checksum(cols)

    def test_flipped_column_fails_checksum(self, trace):
        tables, cols = _fresh_decode(trace)
        try:
            cols.mem_line[::3] ^= 0x15
            problems = validate_columnar(cols)
            assert problems
            assert any("checksum" in p or "line" in p for p in problems)
        finally:
            # Detach the corrupted decode from the module-scoped trace.
            tables._columnar = None


class TestGuardedSimulate:
    def test_off_plan_is_a_passthrough(self, trace, machine, golden):
        result, events, sentinels = guarded_simulate(trace, machine)
        assert events == [] and sentinels == 0
        _assert_same(result, golden)

    def test_scalar_engine_bypasses_guards(self, trace, machine, golden):
        result, events, sentinels = guarded_simulate(
            trace, machine, engine="scalar", plan=PARANOID
        )
        assert events == [] and sentinels == 0
        _assert_same(result, golden)

    def test_clean_paranoid_run_dual_replays(self, trace, machine, golden):
        result, events, sentinels = guarded_simulate(
            trace, machine, plan=PARANOID
        )
        assert events == []
        assert sentinels == 1
        _assert_same(result, golden)

    def test_unsampled_ordinal_skips_the_sentinel(self, trace, machine, golden):
        plan = GuardPlan(level="sentinel", sentinel_interval=1000)
        result, events, sentinels = guarded_simulate(
            trace, machine, plan=plan, ordinal=1
        )
        assert events == [] and sentinels == 0
        _assert_same(result, golden)

    def test_corrupt_decode_requarantined(self, trace, machine, golden):
        faults = FaultPlan.corrupt_column("mi-sha")
        result, events, _ = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0
        )
        assert [e.kind for e in events] == ["decode-corrupt"]
        assert events[0].action == "requarantine-decode"
        _assert_same(result, golden)
        # The re-decode healed in place: the next attempt runs clean.
        result, events, _ = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0, attempt=2
        )
        assert events == []
        _assert_same(result, golden)

    def test_poisoned_memo_caught_by_sentinel(self, trace, machine, golden):
        faults = FaultPlan.poison_memo("mi-sha")
        result, events, sentinels = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0
        )
        assert [e.kind for e in events] == ["divergence"]
        assert events[0].action == "fallback-scalar"
        assert sentinels == 1
        _assert_same(result, golden)
        # The divergence quarantined the decode and its memos.
        result, events, _ = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0, attempt=2
        )
        assert events == []
        _assert_same(result, golden)

    def test_nan_result_rejected(self, trace, machine, golden):
        faults = FaultPlan.nan_pass("mi-sha")
        result, events, _ = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0
        )
        assert [e.kind for e in events] == ["nan-result"]
        _assert_same(result, golden)

    def test_faults_target_their_job_only(self, trace, machine, golden):
        faults = FaultPlan.corrupt_column("mi-qsort")
        _, events, _ = guarded_simulate(
            trace, machine, plan=PARANOID, faults=faults, ordinal=0
        )
        assert events == []


class TestGuardRail:
    def test_record_routes_to_counters(self):
        rail = GuardRail(PARANOID)
        rail.record(GuardEvent("divergence", "w", "m", "fallback-scalar"))
        rail.record(GuardEvent("decode-corrupt", "w", "m", "requarantine-decode"))
        assert rail.telemetry.events == 2
        assert rail.telemetry.divergences == 1
        assert rail.telemetry.decode_quarantines == 1
        # Only genuine result replacements count as fallbacks.
        assert rail.telemetry.fallbacks == 1
        assert len(rail.events) == 2

    def test_absorb_worker_payload(self):
        rail = GuardRail(PARANOID)
        shipped = (GuardEvent("nan-result", "w", "m", "fallback-scalar"),)
        rail.absorb(shipped, sentinel_replays=1)
        rail.absorb((), sentinel_replays=1)
        assert rail.telemetry.sentinel_replays == 2
        assert rail.telemetry.nan_fallbacks == 1
        assert [e.kind for e in rail.events] == ["nan-result"]


class TestMemoryBudget:
    def test_rss_is_measurable(self):
        assert parent_rss_mb() > 0.0

    def test_no_budget_never_raises(self):
        check_memory_budget(None)
        check_memory_budget(GuardPlan.from_level("sentinel"))

    def test_breached_budget_raises(self):
        plan = GuardPlan(level="sentinel", memory_budget_mb=0.001)
        with pytest.raises(MemoryError, match="guard budget"):
            check_memory_budget(plan)


def _wait_for(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestCampaignWatchdog:
    def test_poison_accounting(self):
        rail = GuardRail(GuardPlan(level="sentinel", poison_threshold=2))
        dog = rail.watchdog
        assert not dog.is_poisoned("mi-sha@A15")
        assert dog.record_worker_kill("mi-sha@A15") == 1
        assert not dog.is_poisoned("mi-sha@A15")
        assert dog.record_worker_kill("mi-sha@A15") == 2
        assert dog.is_poisoned("mi-sha@A15")
        assert not dog.is_poisoned("mi-qsort@A15")

    def test_circuit_break_announces_once(self):
        rail = GuardRail(PARANOID)
        dog = rail.watchdog
        dog.record_worker_kill("mi-sha@A15")
        dog.circuit_break("mi-sha", "A15", "mi-sha@A15")
        dog.circuit_break("mi-sha", "A15", "mi-sha@A15")
        assert rail.telemetry.poison_jobs == 1
        assert [e.kind for e in rail.events] == ["poison-job"]
        assert "killed 1 worker(s)" in rail.events[0].detail

    def test_no_thread_without_budgets(self):
        rail = GuardRail(GuardPlan.from_level("sentinel"))
        rail.watchdog.batch_started()
        try:
            assert rail.watchdog._thread is None
        finally:
            rail.watchdog.batch_finished()

    def test_budget_breaches_are_observed(self):
        plan = GuardPlan(
            level="sentinel",
            heartbeat_seconds=0.01,
            batch_deadline_seconds=0.01,
            memory_budget_mb=0.001,
        )
        rail = GuardRail(plan)
        dog = rail.watchdog
        dog.batch_started()
        try:
            dog.job_started(0, "mi-sha", "A15")
            assert _wait_for(
                lambda: {e.kind for e in rail.events}
                >= {"heartbeat-stall", "deadline", "memory-budget"}
            )
        finally:
            dog.job_finished(0)
            dog.batch_finished()
        kinds = [e.kind for e in rail.events]
        # Each budget announces once, not once per tick.
        assert kinds.count("heartbeat-stall") == 1
        assert kinds.count("deadline") == 1
        assert kinds.count("memory-budget") == 1
        assert all(e.action == "observe" for e in rail.events)
        assert rail.telemetry.heartbeat_stalls == 1
        assert rail.telemetry.deadline_breaches == 1
        assert rail.telemetry.memory_breaches == 1
