"""Tests for on-disk simulation-result caching."""

import os
from dataclasses import replace

import pytest

from repro.sim.cpu import simulate
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.sim.platform import HardwarePlatform
from repro.sim.result_cache import (
    ShardedResultStore,
    SimResultCache,
    advisory_lock,
    cache_key,
    cache_spec,
    machine_fingerprint,
    open_cache_spec,
)
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace


@pytest.fixture
def trace():
    return compile_trace(workload_by_name("mi-sha"), 6_000)


@pytest.fixture
def cache(tmp_path):
    return SimResultCache(str(tmp_path / "simcache"))


class TestKeys:
    def test_fingerprint_stable(self):
        assert machine_fingerprint(hardware_a15()) == machine_fingerprint(
            hardware_a15()
        )

    def test_fingerprint_sensitive_to_any_field(self):
        base = hardware_a15()
        tweaked = replace(base, dram_latency_ns=base.dram_latency_ns + 1.0)
        assert machine_fingerprint(base) != machine_fingerprint(tweaked)

    def test_key_distinguishes_machines(self, trace):
        assert cache_key(trace, hardware_a15()) != cache_key(trace, gem5_ex5_big())

    def test_key_distinguishes_traces(self, trace):
        other = compile_trace(workload_by_name("mi-fft"), 6_000)
        assert cache_key(trace, hardware_a15()) != cache_key(other, hardware_a15())


class TestStoreAndLoad:
    def test_miss_then_hit(self, cache, trace):
        machine = hardware_a15()
        assert cache.get(trace, machine) is None
        result = simulate(trace, machine)
        cache.put(trace, machine, result)
        cached = cache.get(trace, machine)
        assert cached is not None
        assert cached.counts == result.counts
        assert cached.core_cycles == pytest.approx(result.core_cycles)
        assert cached.dram_stall_weight == pytest.approx(result.dram_stall_weight)

    def test_cached_timing_identical(self, cache, trace):
        machine = hardware_a15()
        result = simulate(trace, machine)
        cache.put(trace, machine, result)
        cached = cache.get(trace, machine)
        assert cached.time_seconds(1e9) == pytest.approx(result.time_seconds(1e9))
        assert cached.sync_factor == result.sync_factor

    def test_modified_config_misses(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        tweaked = replace(machine, mispredict_penalty=99.0)
        assert cache.get(trace, tweaked) is None

    def test_corrupt_entry_treated_as_miss(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        import os
        path = cache._path(cache_key(trace, machine))
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(trace, machine) is None
        assert not os.path.exists(path)

    def test_len_and_clear(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestIntegrity:
    """Schema/checksum verification and the quarantine path."""

    def _entry_path(self, cache, trace, machine):
        return cache._path(cache_key(trace, machine))

    def test_envelope_format(self, cache, trace):
        import json

        from repro.sim.result_cache import CACHE_SCHEMA_VERSION

        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        with open(self._entry_path(cache, trace, machine)) as handle:
            data = json.load(handle)
        assert data["schema"] == CACHE_SCHEMA_VERSION
        assert set(data) == {"schema", "checksum", "payload"}

    def test_bit_rot_quarantined(self, cache, trace):
        """A flipped payload byte fails the checksum, not just bad JSON."""
        import json
        import os

        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        path = self._entry_path(cache, trace, machine)
        with open(path) as handle:
            data = json.load(handle)
        data["payload"]["core_cycles"] += 1.0  # still perfectly valid JSON
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert cache.get(trace, machine) is None
        assert cache.telemetry.quarantined == 1
        # The corrupt bytes are preserved for post-mortems, out of the key
        # namespace so they can never answer another read; the destination
        # name is suffixed with a content hash of the corrupt bytes.
        stem = os.path.splitext(os.path.basename(path))[0]
        quarantined = [
            name
            for name in os.listdir(cache.quarantine_dir)
            if name.startswith(f"{stem}-") and name.endswith(".json")
        ]
        assert len(quarantined) == 1
        assert not os.path.exists(path)

    def test_repeated_quarantines_never_collide(self, cache, trace):
        """Two corruptions of the same key keep two post-mortem artifacts.

        The quarantine name used to be just the key's basename, so a
        second corrupt entry for the same job silently overwrote the
        first; the content-hash suffix keeps both.
        """
        import json
        import os

        machine = hardware_a15()
        result = simulate(trace, machine)
        path = self._entry_path(cache, trace, machine)
        for gen in range(2):
            cache.put(trace, machine, result)
            with open(path) as handle:
                data = json.load(handle)
            data["payload"]["core_cycles"] += 1.0 + gen  # distinct corruption
            with open(path, "w") as handle:
                json.dump(data, handle)
            assert cache.get(trace, machine) is None
        assert cache.telemetry.quarantined == 2
        stem = os.path.splitext(os.path.basename(path))[0]
        quarantined = [
            name
            for name in os.listdir(cache.quarantine_dir)
            if name.startswith(f"{stem}-")
        ]
        assert len(quarantined) == 2

    def test_stale_schema_quarantined(self, cache, trace):
        import json

        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        path = self._entry_path(cache, trace, machine)
        with open(path) as handle:
            data = json.load(handle)
        data["schema"] = 2
        with open(path, "w") as handle:
            json.dump(data, handle)
        assert cache.get(trace, machine) is None
        assert cache.telemetry.quarantined == 1

    def test_rewrite_after_quarantine_recovers(self, cache, trace):
        machine = hardware_a15()
        result = simulate(trace, machine)
        cache.put(trace, machine, result)
        path = self._entry_path(cache, trace, machine)
        with open(path, "w") as handle:
            handle.write("{half-written")
        assert cache.get(trace, machine) is None
        cache.put(trace, machine, result)
        cached = cache.get(trace, machine)
        assert cached is not None
        assert cached.counts == result.counts

    def test_telemetry_counts(self, cache, trace):
        machine = hardware_a15()
        assert cache.get(trace, machine) is None
        cache.put(trace, machine, simulate(trace, machine))
        assert cache.get(trace, machine) is not None
        assert cache.telemetry.misses == 1
        assert cache.telemetry.hits == 1
        assert cache.telemetry.quarantined == 0
        assert cache.telemetry.put_failures == 0


class TestIntegration:
    def test_platform_uses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "platform-cache")
        profile = workload_by_name("mi-sha")
        first = HardwarePlatform("A15", trace_instructions=6_000,
                                 cache_dir=cache_dir)
        m1 = first.characterize(profile, 1000e6)
        second = HardwarePlatform("A15", trace_instructions=6_000,
                                  cache_dir=cache_dir)
        m2 = second.characterize(profile, 1000e6)
        assert m1.time_seconds == m2.time_seconds
        assert m1.pmc == m2.pmc
        assert len(SimResultCache(cache_dir)) >= 1

    def test_gem5_uses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "gem5-cache")
        profile = workload_by_name("mi-sha")
        first = Gem5Simulation(trace_instructions=6_000, cache_dir=cache_dir)
        s1 = first.run(profile, 1000e6)
        second = Gem5Simulation(trace_instructions=6_000, cache_dir=cache_dir)
        s2 = second.run(profile, 1000e6)
        assert s1.stats == s2.stats

    def test_cached_equals_uncached(self, tmp_path):
        profile = workload_by_name("mi-fft")
        cached = Gem5Simulation(trace_instructions=6_000,
                                cache_dir=str(tmp_path / "c"))
        cached.run(profile, 1000e6)               # populate
        rerun = Gem5Simulation(trace_instructions=6_000,
                               cache_dir=str(tmp_path / "c"))
        plain = Gem5Simulation(trace_instructions=6_000)
        assert rerun.run(profile, 1000e6).stats == plain.run(profile, 1000e6).stats


class TestAdvisoryLock:
    def test_lock_is_exclusive_across_handles(self, tmp_path):
        import fcntl

        directory = str(tmp_path)
        with advisory_lock(directory) as held:
            assert held
            # A second claimant (another fd, as another process would
            # hold) cannot take the lock while we do.
            probe = open(str(tmp_path / ".lock"), "a")
            with pytest.raises(OSError):
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            probe.close()
        probe = open(str(tmp_path / ".lock"), "a")
        fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        fcntl.flock(probe.fileno(), fcntl.LOCK_UN)
        probe.close()

    def test_unopenable_lock_degrades_to_noop(self, tmp_path):
        with advisory_lock(str(tmp_path / "missing" / "deep")) as held:
            assert held is False

    def test_put_and_quarantine_run_under_lock(self, cache, trace):
        # The locked write path must still round-trip and quarantine
        # exactly as before.
        machine = hardware_a15()
        result = simulate(trace, machine, "scalar")
        cache.put(trace, machine, result)
        key = cache_key(trace, machine)
        assert cache.verify(key)


class TestVerify:
    def test_verify_states(self, cache, trace):
        machine = hardware_a15()
        key = cache_key(trace, machine)
        assert not cache.verify(key)          # missing
        cache.put(trace, machine, simulate(trace, machine, "scalar"))
        assert cache.verify(key)              # intact
        with open(cache._path(key), "r+") as handle:
            handle.write("garbage")
        assert not cache.verify(key)          # corrupt -> quarantined
        assert not cache.verify(key)          # and stays gone


class TestShardedStore:
    def test_round_trip_and_layout(self, tmp_path, trace):
        store = ShardedResultStore(str(tmp_path / "store"), prefix_chars=2)
        machine = hardware_a15()
        result = simulate(trace, machine, "scalar")
        store.put(trace, machine, result)
        key = cache_key(trace, machine)
        assert store.verify(key)
        hit = store.get(trace, machine)
        assert hit is not None
        assert hit.counts == result.counts
        assert hit.core_cycles == result.core_cycles
        # Entries live in key-prefix shard subdirectories.
        assert os.path.exists(
            os.path.join(str(tmp_path / "store"), key[:2], f"{key}.json")
        )

    def test_entries_relocatable_from_flat_cache(self, tmp_path, trace):
        machine = hardware_a15()
        flat = SimResultCache(str(tmp_path / "flat"))
        flat.put(trace, machine, simulate(trace, machine, "scalar"))
        key = cache_key(trace, machine)
        store = ShardedResultStore(str(tmp_path / "store"), prefix_chars=2)
        os.makedirs(os.path.join(str(tmp_path / "store"), key[:2]),
                    exist_ok=True)
        os.rename(
            flat._path(key),
            os.path.join(str(tmp_path / "store"), key[:2], f"{key}.json"),
        )
        assert store.verify(key)
        assert store.get(trace, machine) is not None

    def test_clear_spans_shards(self, tmp_path, trace):
        store = ShardedResultStore(str(tmp_path / "store"))
        machine = hardware_a15()
        store.put(trace, machine, simulate(trace, machine, "scalar"))
        other = compile_trace(workload_by_name("mi-fft"), 6_000)
        store.put(other, machine, simulate(other, machine, "scalar"))
        assert store.clear() == 2
        assert not store.verify(cache_key(trace, machine))


class TestCacheSpec:
    def test_specs_round_trip_both_layouts(self, tmp_path):
        flat = SimResultCache(str(tmp_path / "flat"))
        sharded = ShardedResultStore(str(tmp_path / "store"), prefix_chars=3)
        assert cache_spec(None) is None
        assert open_cache_spec(None) is None
        rebuilt_flat = open_cache_spec(cache_spec(flat))
        assert isinstance(rebuilt_flat, SimResultCache)
        assert rebuilt_flat.directory == flat.directory
        rebuilt = open_cache_spec(cache_spec(sharded))
        assert isinstance(rebuilt, ShardedResultStore)
        assert rebuilt.directory == sharded.directory
        assert rebuilt.prefix_chars == 3
