"""Tests for on-disk simulation-result caching."""

from dataclasses import replace

import pytest

from repro.sim.cpu import simulate
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.sim.platform import HardwarePlatform
from repro.sim.result_cache import SimResultCache, cache_key, machine_fingerprint
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace


@pytest.fixture
def trace():
    return compile_trace(workload_by_name("mi-sha"), 6_000)


@pytest.fixture
def cache(tmp_path):
    return SimResultCache(str(tmp_path / "simcache"))


class TestKeys:
    def test_fingerprint_stable(self):
        assert machine_fingerprint(hardware_a15()) == machine_fingerprint(
            hardware_a15()
        )

    def test_fingerprint_sensitive_to_any_field(self):
        base = hardware_a15()
        tweaked = replace(base, dram_latency_ns=base.dram_latency_ns + 1.0)
        assert machine_fingerprint(base) != machine_fingerprint(tweaked)

    def test_key_distinguishes_machines(self, trace):
        assert cache_key(trace, hardware_a15()) != cache_key(trace, gem5_ex5_big())

    def test_key_distinguishes_traces(self, trace):
        other = compile_trace(workload_by_name("mi-fft"), 6_000)
        assert cache_key(trace, hardware_a15()) != cache_key(other, hardware_a15())


class TestStoreAndLoad:
    def test_miss_then_hit(self, cache, trace):
        machine = hardware_a15()
        assert cache.get(trace, machine) is None
        result = simulate(trace, machine)
        cache.put(trace, machine, result)
        cached = cache.get(trace, machine)
        assert cached is not None
        assert cached.counts == result.counts
        assert cached.core_cycles == pytest.approx(result.core_cycles)
        assert cached.dram_stall_weight == pytest.approx(result.dram_stall_weight)

    def test_cached_timing_identical(self, cache, trace):
        machine = hardware_a15()
        result = simulate(trace, machine)
        cache.put(trace, machine, result)
        cached = cache.get(trace, machine)
        assert cached.time_seconds(1e9) == pytest.approx(result.time_seconds(1e9))
        assert cached.sync_factor == result.sync_factor

    def test_modified_config_misses(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        tweaked = replace(machine, mispredict_penalty=99.0)
        assert cache.get(trace, tweaked) is None

    def test_corrupt_entry_treated_as_miss(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        import os
        path = cache._path(cache_key(trace, machine))
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get(trace, machine) is None
        assert not os.path.exists(path)

    def test_len_and_clear(self, cache, trace):
        machine = hardware_a15()
        cache.put(trace, machine, simulate(trace, machine))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestIntegration:
    def test_platform_uses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "platform-cache")
        profile = workload_by_name("mi-sha")
        first = HardwarePlatform("A15", trace_instructions=6_000,
                                 cache_dir=cache_dir)
        m1 = first.characterize(profile, 1000e6)
        second = HardwarePlatform("A15", trace_instructions=6_000,
                                  cache_dir=cache_dir)
        m2 = second.characterize(profile, 1000e6)
        assert m1.time_seconds == m2.time_seconds
        assert m1.pmc == m2.pmc
        assert len(SimResultCache(cache_dir)) >= 1

    def test_gem5_uses_cache(self, tmp_path):
        cache_dir = str(tmp_path / "gem5-cache")
        profile = workload_by_name("mi-sha")
        first = Gem5Simulation(trace_instructions=6_000, cache_dir=cache_dir)
        s1 = first.run(profile, 1000e6)
        second = Gem5Simulation(trace_instructions=6_000, cache_dir=cache_dir)
        s2 = second.run(profile, 1000e6)
        assert s1.stats == s2.stats

    def test_cached_equals_uncached(self, tmp_path):
        profile = workload_by_name("mi-fft")
        cached = Gem5Simulation(trace_instructions=6_000,
                                cache_dir=str(tmp_path / "c"))
        cached.run(profile, 1000e6)               # populate
        rerun = Gem5Simulation(trace_instructions=6_000,
                               cache_dir=str(tmp_path / "c"))
        plain = Gem5Simulation(trace_instructions=6_000)
        assert rerun.run(profile, 1000e6).stats == plain.run(profile, 1000e6).stats
