"""Tests for the silicon power process."""

import pytest

from repro.sim.power_ground_truth import CORES_PER_CLUSTER, PowerGroundTruth


@pytest.fixture
def a15():
    return PowerGroundTruth("A15")


@pytest.fixture
def a7():
    return PowerGroundTruth("A7")


def busy_counts(n=1e9, time_s=1.0, freq=1e9):
    return {
        "cycles": freq * time_s,
        "instructions": n * 1.5,
        "l1d_rd_accesses": n * 0.25,
        "l1d_wr_accesses": n * 0.08,
        "l1i_fetch_accesses": n * 0.2,
        "l2_rd_accesses": n * 0.01,
        "l2_wr_accesses": n * 0.005,
        "dram_reads": n * 0.002,
        "dram_writes": n * 0.001,
        "inst_fp": n * 0.1,
        "inst_simd": 0.0,
        "branch_mispredicts": n * 0.005,
    }


class TestStatic:
    def test_increases_with_voltage(self, a15):
        assert a15.static_power(1.3, 55.0) > a15.static_power(0.9, 55.0)

    def test_increases_with_temperature(self, a15):
        assert a15.static_power(1.0, 80.0) > a15.static_power(1.0, 40.0)

    def test_a7_leaks_less_than_a15(self, a15, a7):
        assert a7.static_power(1.0, 55.0) < a15.static_power(1.0, 55.0)

    def test_never_negative(self, a15):
        assert a15.static_power(0.9, -200.0) > 0


class TestDynamic:
    def test_scales_with_v_squared(self, a15):
        counts = busy_counts()
        low = a15.dynamic_power(counts, 1.0, 0.9, 1e9)
        high = a15.dynamic_power(counts, 1.0, 1.2, 1e9)
        assert high / low == pytest.approx((1.2 / 0.9) ** 2, rel=0.01)

    def test_more_cores_more_power(self, a15):
        counts = busy_counts()
        assert a15.dynamic_power(counts, 1.0, 1.0, 1e9, 4) > 2.5 * a15.dynamic_power(
            counts, 1.0, 1.0, 1e9, 1
        )

    def test_activity_increases_power(self, a15):
        idle = {"cycles": 1e9}
        assert a15.dynamic_power(busy_counts(), 1.0, 1.0, 1e9) > a15.dynamic_power(
            idle, 1.0, 1.0, 1e9
        )

    def test_invalid_core_count(self, a15):
        with pytest.raises(ValueError):
            a15.dynamic_power(busy_counts(), 1.0, 1.0, 1e9, CORES_PER_CLUSTER + 1)

    def test_invalid_time(self, a15):
        with pytest.raises(ValueError):
            a15.activity_rates(busy_counts(), 0.0)


class TestClusterPower:
    def test_realistic_envelope_a15(self, a15):
        """One busy core at 1.8 GHz: around one to two watts."""
        counts = busy_counts(n=1.8e9, freq=1.8e9)
        power = a15.cluster_power(counts, 1.0, 1.2625, 1.8e9, 1, 60.0)
        assert 0.8 < power < 3.0

    def test_realistic_envelope_a7(self, a7):
        counts = busy_counts(n=1.4e9, freq=1.4e9)
        power = a7.cluster_power(counts, 1.0, 1.2, 1.4e9, 1, 50.0)
        assert 0.08 < power < 0.8

    def test_a15_cluster_4core_within_board_budget(self, a15):
        counts = busy_counts(n=1.8e9, freq=1.8e9)
        power = a15.cluster_power(counts, 1.0, 1.2625, 1.8e9, 4, 70.0)
        assert power < 9.0  # the XU3's A15 cluster peak envelope

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            PowerGroundTruth("M7")

    def test_near_linear_in_rates(self, a15):
        """The Powmon fit depends on near-linearity: doubling activity must
        roughly double the dynamic power (within the interaction term)."""
        base = busy_counts()
        double = {k: v * 2 for k, v in base.items()}
        p1 = a15.dynamic_power(base, 1.0, 1.0, 1e9)
        p2 = a15.dynamic_power(double, 1.0, 1.0, 1e9)
        assert p2 / p1 == pytest.approx(2.0, rel=0.05)
