"""Tests for the simulated hardware platform (PMU, sensors, thermals)."""

import numpy as np
import pytest

from repro.events.armv7_pmu import events_for_core
from repro.sim.machine import gem5_ex5_big
from repro.sim.platform import (
    MAX_PMU_COUNTERS,
    SENSOR_HZ,
    HardwarePlatform,
    POWER_WINDOW_SECONDS,
)
from repro.workloads.suites import workload_by_name


@pytest.fixture(scope="module")
def measurement(platform_a15):
    return platform_a15.characterize(workload_by_name("mi-qsort"), 1000e6)


class TestConstruction:
    def test_wrong_machine_core_rejected(self):
        with pytest.raises(ValueError):
            HardwarePlatform("A7", machine=gem5_ex5_big())

    def test_default_machines(self, platform_a15, platform_a7):
        assert platform_a15.machine.name == "hw-a15"
        assert platform_a7.machine.name == "hw-a7"


class TestCharacterize(object):
    def test_deterministic(self, platform_a15):
        profile = workload_by_name("mi-sha")
        a = platform_a15.characterize(profile, 1000e6)
        b = platform_a15.characterize(profile, 1000e6)
        assert a.time_seconds == b.time_seconds
        assert a.pmc == b.pmc
        assert a.power_w == b.power_w

    def test_covers_all_a15_events(self, measurement):
        expected = {e.number for e in events_for_core("A15")}
        assert set(measurement.pmc) == expected

    def test_a7_covers_only_a7_events(self, platform_a7):
        m = platform_a7.characterize(workload_by_name("mi-sha"), 1000e6)
        expected = {e.number for e in events_for_core("A7")}
        assert set(m.pmc) == expected

    def test_time_plausible(self, measurement):
        # natural_seconds is ~4 s at nominal CPI 1; actual CPI shifts it.
        assert 0.5 < measurement.time_seconds < 120.0

    def test_instructions_scale_with_repeat(self, platform_a15, measurement):
        profile = workload_by_name("mi-qsort")
        repeat = platform_a15.repeat_count(profile, platform_a15.trace_instructions)
        per_trace = platform_a15._sim(profile).counts["instructions"]
        assert measurement.pmc[0x08] == pytest.approx(
            per_trace * repeat * profile.threads, rel=0.02
        )

    def test_multiplexing_jitter_differs_between_groups(self, measurement):
        """Events from different counter groups carry different run jitter;
        derived identities hold only approximately, as on real hardware."""
        l1d = measurement.pmc[0x04]
        split_sum = measurement.pmc[0x40] + measurement.pmc[0x41]
        assert l1d == pytest.approx(split_sum, rel=0.03)
        assert l1d != split_sum  # but not exactly (multiplexed runs)

    def test_rate_helper(self, measurement):
        assert measurement.rate(0x08) == pytest.approx(
            measurement.pmc[0x08] / measurement.time_seconds
        )

    def test_energy_helper(self, measurement):
        assert measurement.energy_j() == pytest.approx(
            measurement.power_w * measurement.time_seconds
        )

    def test_cycles_close_to_time_times_frequency(self, measurement):
        expected = measurement.time_seconds * measurement.effective_freq_hz
        assert measurement.pmc[0x11] == pytest.approx(expected, rel=0.05)

    def test_multithreaded_counts_aggregate_cores(self, platform_a15):
        one = platform_a15.characterize(workload_by_name("parsec-canneal-1"), 1000e6)
        four = platform_a15.characterize(workload_by_name("parsec-canneal-4"), 1000e6)
        assert four.pmc[0x08] > 3.0 * one.pmc[0x08]


class TestPower:
    def test_power_positive_and_plausible(self, measurement):
        assert 0.1 < measurement.power_w < 8.0

    def test_sample_count_covers_window(self, measurement):
        assert len(measurement.power_samples) >= int(
            POWER_WINDOW_SECONDS * SENSOR_HZ
        )

    def test_mean_matches_samples(self, measurement):
        assert measurement.power_w == pytest.approx(
            float(np.mean(measurement.power_samples))
        )

    def test_power_grows_with_frequency(self, platform_a15):
        profile = workload_by_name("mi-sha")
        low = platform_a15.characterize(profile, 600e6)
        high = platform_a15.characterize(profile, 1800e6)
        assert high.power_w > 1.8 * low.power_w

    def test_four_threads_draw_more_power(self, platform_a15):
        one = platform_a15.characterize(workload_by_name("parsec-canneal-1"), 1000e6)
        four = platform_a15.characterize(workload_by_name("parsec-canneal-4"), 1000e6)
        assert four.power_w > 2.0 * one.power_w

    def test_with_power_false_skips_sensors(self, platform_a15):
        m = platform_a15.characterize(
            workload_by_name("mi-sha"), 1000e6, with_power=False
        )
        assert np.isnan(m.power_w)
        assert len(m.power_samples) == 0

    def test_temperature_above_ambient(self, measurement):
        assert measurement.temperature_c > 28.0


class TestThrottling:
    def test_a15_throttles_at_2ghz_on_hot_workload(self, platform_a15):
        m = platform_a15.characterize(workload_by_name("parsec-canneal-4"), 2000e6)
        assert m.throttled
        assert m.effective_freq_hz == pytest.approx(1.8e9)

    def test_no_throttling_at_1800(self, platform_a15):
        m = platform_a15.characterize(workload_by_name("parsec-canneal-4"), 1800e6)
        assert not m.throttled

    def test_a7_never_throttles(self, platform_a7):
        m = platform_a7.characterize(workload_by_name("mi-sha"), 1400e6)
        assert not m.throttled


class TestMeasureEvents:
    def test_limited_counters_enforced(self, platform_a15):
        profile = workload_by_name("mi-sha")
        with pytest.raises(ValueError, match="counters"):
            platform_a15.measure_events(
                profile, 1000e6, [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x08]
            )

    def test_requested_events_returned(self, platform_a15):
        profile = workload_by_name("mi-sha")
        result = platform_a15.measure_events(profile, 1000e6, [0x08, 0x11])
        assert set(result) == {0x08, 0x11}

    def test_unknown_event_raises(self, platform_a7):
        with pytest.raises(KeyError):
            platform_a7.measure_events(workload_by_name("mi-sha"), 1000e6, [0x43])

    def test_invalid_opp_rejected(self, platform_a15):
        with pytest.raises(KeyError):
            platform_a15.characterize(workload_by_name("mi-sha"), 777e6)
