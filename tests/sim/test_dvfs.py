"""Tests for OPP tables and the experiment frequency sweeps."""

import pytest

from repro.sim.dvfs import (
    MHZ,
    OperatingPoint,
    OppTable,
    experiment_frequencies,
    opp_table_for,
)


class TestOppTables:
    def test_a7_sweep_matches_paper(self):
        assert [f / MHZ for f in experiment_frequencies("A7")] == [
            200, 600, 1000, 1400
        ]

    def test_a15_sweep_matches_paper(self):
        # 2 GHz throttles; 1.8 GHz is the ceiling used (Section III).
        assert [f / MHZ for f in experiment_frequencies("A15")] == [
            600, 1000, 1400, 1800
        ]

    def test_voltage_monotonic_in_frequency(self):
        for core in ("A7", "A15"):
            table = opp_table_for(core)
            voltages = [p.voltage for p in table.points]
            assert voltages == sorted(voltages)

    def test_voltage_lookup(self):
        assert opp_table_for("A15").voltage(1800 * MHZ) == pytest.approx(1.2625)

    def test_voltage_unknown_frequency_raises(self):
        with pytest.raises(KeyError, match="not an OPP"):
            opp_table_for("A15").voltage(1234 * MHZ)

    def test_experiment_frequencies_are_table_entries(self):
        for core in ("A7", "A15"):
            table = opp_table_for(core)
            for freq in experiment_frequencies(core):
                table.voltage(freq)  # must not raise

    def test_min_max(self):
        table = opp_table_for("A7")
        assert table.min_freq == 200 * MHZ
        assert table.max_freq == 1400 * MHZ

    def test_unknown_core(self):
        with pytest.raises(ValueError):
            opp_table_for("M0")
        with pytest.raises(ValueError):
            experiment_frequencies("M0")

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            OppTable("X", [])

    def test_points_sorted_on_construction(self):
        table = OppTable("X", [
            OperatingPoint(2e9, 1.2), OperatingPoint(1e9, 1.0),
        ])
        assert table.frequencies() == [1e9, 2e9]

    def test_a15_2ghz_exists_but_unswept(self):
        # The OPP exists (the board offers it); the experiment avoids it.
        table = opp_table_for("A15")
        assert 2000 * MHZ in table.frequencies()
        assert 2000 * MHZ not in experiment_frequencies("A15")
