"""Property-based tests for the CPU simulator (hypothesis)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cpu import simulate
from repro.sim.machine import hardware_a15
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace

#: One shared small trace; properties vary the machine, not the program.
_TRACE = compile_trace(workload_by_name("mi-fft"), 4_000)


@st.composite
def machines(draw):
    base = hardware_a15()
    return replace(
        base,
        mispredict_penalty=draw(st.floats(5.0, 30.0)),
        dram_latency_ns=draw(st.floats(40.0, 200.0)),
        mem_overlap=draw(st.floats(0.0, 0.9)),
        dram_overlap=draw(st.floats(0.0, 0.9)),
        barrier_cycles=draw(st.floats(5.0, 80.0)),
        predictor=draw(st.sampled_from(["tournament", "buggy_tournament"])),
        wrongpath_fetch=draw(st.integers(2, 16)),
    )


@settings(max_examples=20, deadline=None)
@given(machine=machines())
def test_simulation_invariants_hold_for_any_machine(machine):
    result = simulate(_TRACE, machine)
    counts = result.counts

    # Committed-path accounting never depends on the machine.
    assert counts["instructions"] == _TRACE.n_instrs
    assert counts["branches"] == _TRACE.n_branches
    assert counts["dtlb_lookups"] == _TRACE.n_mem_ops

    # Structural bounds.
    assert 0 <= counts["branch_mispredicts"] <= counts["branches"]
    assert counts["l1i_misses"] <= counts["l1i_fetch_accesses"]
    assert counts["l2tlb_i_hits"] + counts["l2tlb_i_misses"] == pytest.approx(
        counts["l2tlb_i_accesses"]
    )
    assert counts["spec_instructions"] >= counts["instructions"]

    # Timing is positive and finite, and components account for it.
    assert result.core_cycles > 0
    assert result.dram_stall_weight >= 0
    assert sum(result.components.values()) == pytest.approx(result.core_cycles)
    assert result.time_seconds(1e9) > 0


@settings(max_examples=15, deadline=None)
@given(machine=machines(), f1=st.floats(3e8, 2.5e9), f2=st.floats(3e8, 2.5e9))
def test_time_monotone_in_frequency(machine, f1, f2):
    result = simulate(_TRACE, machine)
    low, high = sorted((f1, f2))
    assert result.time_seconds(high) <= result.time_seconds(low) + 1e-15


@settings(max_examples=15, deadline=None)
@given(machine=machines())
def test_speedup_bounded_by_clock_ratio(machine):
    """Fixed-ns memory terms keep scaling sublinear (Fig. 8's physics)."""
    result = simulate(_TRACE, machine)
    speedup = result.time_seconds(0.6e9) / result.time_seconds(1.8e9)
    assert 1.0 <= speedup <= 3.0 + 1e-9


@settings(max_examples=10, deadline=None)
@given(penalty=st.floats(5.0, 40.0))
def test_higher_mispredict_penalty_never_speeds_up(penalty):
    base = hardware_a15()
    slow = replace(base, mispredict_penalty=penalty + 5.0)
    fast = replace(base, mispredict_penalty=penalty)
    assert simulate(_TRACE, slow).time_seconds(1e9) >= simulate(
        _TRACE, fast
    ).time_seconds(1e9)


@settings(max_examples=10, deadline=None)
@given(dram=st.floats(40.0, 200.0))
def test_higher_dram_latency_never_speeds_up(dram):
    base = hardware_a15()
    slow = replace(base, dram_latency_ns=dram + 20.0)
    fast = replace(base, dram_latency_ns=dram)
    assert simulate(_TRACE, slow).time_seconds(1e9) >= simulate(
        _TRACE, fast
    ).time_seconds(1e9)
