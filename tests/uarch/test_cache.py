"""Tests for the set-associative cache model."""

import pytest

from repro.uarch.cache import CacheStats, SetAssociativeCache, StridePrefetcher


def make_cache(**kwargs):
    defaults = dict(name="test", size_bytes=4096, line_bytes=64, assoc=2)
    defaults.update(kwargs)
    return SetAssociativeCache(**defaults)


class TestBasics:
    def test_first_access_misses(self):
        cache = make_cache()
        hit, wb, allocated = cache.access(0)
        assert not hit and not wb and allocated

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(0)
        hit, _, _ = cache.access(0)
        assert hit

    def test_geometry(self):
        cache = make_cache(size_bytes=4096, assoc=2)
        assert cache.n_sets == 32

    def test_assoc_capped_at_lines(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=16)
        assert cache.assoc == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_cache(size_bytes=0)

    def test_counters(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        cache.access(1, is_write=True)
        stats = cache.stats
        assert stats.read_accesses == 2
        assert stats.read_misses == 1
        assert stats.write_accesses == 1
        assert stats.write_misses == 1
        assert stats.hits == 1
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_reset(self):
        cache = make_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        hit, _, _ = cache.access(0)
        assert not hit

    def test_contains_does_not_mutate(self):
        cache = make_cache()
        cache.access(0)
        before = cache.stats.accesses
        assert cache.contains(0)
        assert not cache.contains(99999)
        assert cache.stats.accesses == before


class TestLruReplacement:
    def test_lru_victim_evicted(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)  # 1 set
        cache.access(0)
        cache.access(1)
        cache.access(0)      # 1 is now LRU
        cache.access(2)      # evicts 1
        assert cache.contains(0)
        assert cache.contains(2)
        assert not cache.contains(1)

    def test_replacements_counted(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)
        for line in range(3):
            cache.access(line)
        assert cache.stats.replacements == 1


class TestWriteback:
    def test_dirty_eviction_counts_writeback(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)
        cache.access(0, is_write=True)
        cache.access(1)
        _, wb, _ = cache.access(2)  # evicts dirty 0
        assert wb
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)
        cache.access(0)
        cache.access(1)
        _, wb, _ = cache.access(2)
        assert not wb

    def test_write_hit_marks_dirty(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)
        cache.access(0)              # clean fill
        cache.access(0, is_write=True)  # now dirty
        cache.access(1)
        _, wb, _ = cache.access(2)
        assert wb

    def test_no_write_allocate(self):
        cache = make_cache(write_allocate=False)
        _, _, allocated = cache.access(0, is_write=True)
        assert not allocated
        assert not cache.contains(0)


class TestWriteStreaming:
    def test_streaming_store_run_bypasses_allocation(self):
        cache = make_cache(size_bytes=4096, write_streaming=True)
        for line in range(16):  # long sequential store stream
            cache.access(line, is_write=True)
        assert cache.stats.streaming_stores > 0

    def test_non_streaming_cache_allocates_stores(self):
        cache = make_cache(size_bytes=4096, write_streaming=False)
        for line in range(16):
            cache.access(line, is_write=True)
        assert cache.stats.streaming_stores == 0

    def test_streaming_reduces_writebacks(self):
        """The mechanism behind the paper's 19x L1D_WB divergence."""
        def run(streaming: bool) -> int:
            cache = make_cache(size_bytes=1024, write_streaming=streaming)
            for line in range(400):
                cache.access(line, is_write=True)
            return cache.stats.writebacks

        assert run(True) < run(False) / 4

    def test_random_stores_defeat_streaming(self):
        cache = make_cache(size_bytes=4096, write_streaming=True)
        for line in (5, 100, 7, 300, 2, 250, 9, 77):
            cache.access(line, is_write=True)
        assert cache.stats.streaming_stores == 0


class TestFillAndPrefetch:
    def test_fill_does_not_count(self):
        cache = make_cache()
        cache.fill(0)
        assert cache.stats.accesses == 0
        hit, _, _ = cache.access(0)
        assert hit

    def test_fill_evicts_silently(self):
        cache = make_cache(size_bytes=128, line_bytes=64, assoc=2)
        cache.access(0, is_write=True)
        cache.fill(1)
        cache.fill(2)  # evicts dirty 0 silently
        assert cache.stats.writebacks == 0

    def test_prefetch_inserts(self):
        cache = make_cache()
        assert cache.prefetch(5)
        assert cache.contains(5)
        assert not cache.prefetch(5)  # already present
        assert cache.stats.prefetches_issued == 2


class TestStridePrefetcher:
    def test_detects_constant_stride(self):
        cache = make_cache(size_bytes=65536)
        prefetcher = StridePrefetcher(cache, degree=2)
        issued = 0
        for line in range(0, 40, 4):
            issued += prefetcher.train(line)
        assert issued > 0
        assert cache.contains(40)  # prefetched ahead

    def test_degree_zero_never_issues(self):
        cache = make_cache()
        prefetcher = StridePrefetcher(cache, degree=0)
        assert sum(prefetcher.train(line) for line in range(0, 40, 4)) == 0

    def test_higher_degree_attempts_more(self):
        def attempts_with(degree: int) -> int:
            cache = make_cache(size_bytes=65536)
            prefetcher = StridePrefetcher(cache, degree=degree)
            for line in range(0, 200, 4):
                prefetcher.train(line)
            return cache.stats.prefetches_issued

        assert attempts_with(4) > attempts_with(1) * 2

    def test_random_pattern_trains_nothing(self):
        cache = make_cache(size_bytes=65536)
        prefetcher = StridePrefetcher(cache, degree=2)
        issued = sum(prefetcher.train(line) for line in (3, 99, 4, 1000, 17, 5))
        assert issued == 0

    def test_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            StridePrefetcher(make_cache(), degree=-1)


class TestStatsAsDict:
    def test_as_dict_consistency(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        d = cache.stats.as_dict()
        assert d["accesses"] == 2
        assert d["hits"] == 1
        assert d["misses"] == 1
