"""Property-based tests for cache and TLB invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.uarch.cache import SetAssociativeCache
from repro.uarch.tlb import Tlb


@settings(max_examples=40, deadline=None)
@given(
    size_kb=st.sampled_from([1, 4, 32]),
    assoc=st.sampled_from([1, 2, 4, 8]),
    accesses=st.lists(
        st.tuples(st.integers(0, 5000), st.booleans()), min_size=1, max_size=300
    ),
)
def test_cache_counter_invariants(size_kb, assoc, accesses):
    cache = SetAssociativeCache("p", size_kb * 1024, 64, assoc)
    for line, is_write in accesses:
        cache.access(line, is_write)
    stats = cache.stats
    assert stats.accesses == len(accesses)
    assert stats.hits + stats.misses == stats.accesses
    assert 0 <= stats.miss_rate <= 1
    assert stats.writebacks <= stats.replacements
    # Occupancy never exceeds capacity.
    occupancy = sum(len(ways) for ways in cache._sets)
    assert occupancy <= cache.n_sets * cache.assoc


@settings(max_examples=40, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 2000), min_size=1, max_size=300),
    entries=st.sampled_from([4, 16, 64]),
)
def test_tlb_counter_invariants(accesses, entries):
    tlb = Tlb("p", entries)
    for page in accesses:
        tlb.lookup(page)
    stats = tlb.stats
    assert stats.lookups == len(accesses)
    assert stats.hits + stats.misses == stats.lookups
    # A repeated immediate lookup always hits.
    tlb.lookup(accesses[-1])
    before = tlb.stats.hits
    tlb.lookup(accesses[-1])
    assert tlb.stats.hits == before + 1


@settings(max_examples=30, deadline=None)
@given(accesses=st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_bigger_cache_never_misses_more(accesses):
    """Inclusion-style property: with identical access streams and LRU, a
    cache of double associativity (same sets) never takes more misses."""
    small = SetAssociativeCache("s", 64 * 16, 64, 1)   # 16 sets, 1 way
    large = SetAssociativeCache("l", 64 * 32, 64, 2)   # 16 sets, 2 ways
    for line in accesses:
        small.access(line)
        large.access(line)
    assert large.stats.misses <= small.stats.misses


@settings(max_examples=30, deadline=None)
@given(pages=st.lists(st.integers(0, 50), min_size=1, max_size=150))
def test_fully_associative_tlb_lru_property(pages):
    """After any access sequence, the last min(entries, distinct) pages hit."""
    tlb = Tlb("p", 8)
    for page in pages:
        tlb.lookup(page)
    # Most-recent page must be resident.
    assert tlb.contains(pages[-1])


@settings(max_examples=25, deadline=None)
@given(
    lines=st.lists(st.integers(0, 3000), min_size=1, max_size=200),
)
def test_fill_then_access_always_hits_immediately(lines):
    cache = SetAssociativeCache("p", 64 * 1024, 64, 4)
    for line in lines:
        cache.fill(line)
        hit, _, _ = cache.access(line)
        assert hit
