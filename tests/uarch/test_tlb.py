"""Tests for the TLB models and the two hierarchy shapes."""

import pytest

from repro.uarch.tlb import Tlb, TlbHierarchy, TlbHierarchyConfig


class TestTlb:
    def test_first_lookup_misses_then_hits(self):
        tlb = Tlb("t", 8)
        assert not tlb.lookup(1)
        assert tlb.lookup(1)

    def test_capacity_eviction(self):
        tlb = Tlb("t", 2)
        tlb.lookup(1)
        tlb.lookup(2)
        tlb.lookup(3)  # evicts 1 (LRU)
        assert not tlb.contains(1)
        assert tlb.contains(2) and tlb.contains(3)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            Tlb("t", 0)

    def test_set_associative_geometry(self):
        tlb = Tlb("t", 512, assoc=4)
        assert tlb.n_sets == 128

    def test_fully_associative_default(self):
        tlb = Tlb("t", 32)
        assert tlb.n_sets == 1

    def test_fill_does_not_count(self):
        tlb = Tlb("t", 8)
        tlb.fill(5)
        assert tlb.stats.lookups == 0
        assert tlb.lookup(5)

    def test_reset(self):
        tlb = Tlb("t", 8)
        tlb.lookup(1)
        tlb.reset()
        assert tlb.stats.lookups == 0
        assert not tlb.contains(1)

    def test_miss_rate(self):
        tlb = Tlb("t", 8)
        tlb.lookup(1)
        tlb.lookup(1)
        assert tlb.stats.miss_rate == 0.5


class TestHardwareShape:
    """Shared 512-entry L2 TLB, 32-entry L1s — the real Cortex-A15."""

    def make(self):
        return TlbHierarchy(TlbHierarchyConfig(
            itlb_entries=32, dtlb_entries=32, unified_l2=True,
            l2_entries=512, l2_assoc=4, l2_latency=2,
        ))

    def test_l2_shared_between_sides(self):
        hierarchy = self.make()
        assert hierarchy.l2_itlb is hierarchy.l2_dtlb

    def test_data_fill_serves_instruction_side(self):
        hierarchy = self.make()
        hierarchy.translate_data(7)          # fills shared L2
        result = hierarchy.translate_inst(7)  # L1I miss, L2 hit
        assert not result.l1_hit
        assert result.l2_hit
        assert not result.walked

    def test_l1_hit_skips_l2(self):
        hierarchy = self.make()
        hierarchy.translate_inst(3)
        result = hierarchy.translate_inst(3)
        assert result.l1_hit and not result.l2_accessed

    def test_cold_miss_walks(self):
        hierarchy = self.make()
        result = hierarchy.translate_inst(9)
        assert result.walked
        assert hierarchy.walks_inst == 1

    def test_probe_inst_non_mutating(self):
        hierarchy = self.make()
        hierarchy.translate_inst(3)
        lookups = hierarchy.itlb.stats.lookups
        assert hierarchy.probe_inst(3)
        assert not hierarchy.probe_inst(999)
        assert hierarchy.itlb.stats.lookups == lookups


class TestGem5Shape:
    """Split walker caches, 64-entry L1s — the ex5_big model."""

    def make(self):
        return TlbHierarchy(TlbHierarchyConfig(
            itlb_entries=64, dtlb_entries=64, unified_l2=False,
            l2_entries=128, l2_assoc=8, l2_latency=4,
        ))

    def test_l2_split(self):
        hierarchy = self.make()
        assert hierarchy.l2_itlb is not hierarchy.l2_dtlb

    def test_data_fill_does_not_serve_instruction_side(self):
        hierarchy = self.make()
        hierarchy.translate_data(7)
        result = hierarchy.translate_inst(7)
        assert not result.l2_hit
        assert result.walked

    def test_reset_clears_both_walkers(self):
        hierarchy = self.make()
        hierarchy.translate_inst(1)
        hierarchy.translate_data(2)
        hierarchy.reset()
        assert hierarchy.l2_itlb.stats.lookups == 0
        assert hierarchy.l2_dtlb.stats.lookups == 0
        assert hierarchy.walks_inst == 0


class TestCapacityContrast:
    def test_32_entry_itlb_thrashes_where_64_holds(self):
        """The paper's 0.06x ITLB-refill divergence: ~48 hot pages thrash a
        32-entry ITLB but (mostly) fit the 64-entry model ITLB."""
        hw = TlbHierarchy(TlbHierarchyConfig(itlb_entries=32))
        gem5 = TlbHierarchy(TlbHierarchyConfig(itlb_entries=64))
        pages = list(range(48))
        for _ in range(20):  # cyclic revisits, LRU worst case
            for page in pages:
                hw.translate_inst(page)
                gem5.translate_inst(page)
        hw_misses = hw.itlb.stats.misses
        gem5_misses = gem5.itlb.stats.misses
        assert gem5_misses < hw_misses / 10
