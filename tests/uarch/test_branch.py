"""Tests for the branch predictors, including the buggy gem5 predictor."""

import numpy as np
import pytest

from repro.uarch.branch import (
    BimodalPredictor,
    BuggyTournamentPredictor,
    GsharePredictor,
    IndirectPredictor,
    ReturnAddressStack,
    TournamentPredictor,
    make_predictor,
)


def accuracy(predictor, outcomes, pc=0x1000, backward=False):
    correct = 0
    for taken in outcomes:
        if predictor.predict(pc, backward) == taken:
            correct += 1
        predictor.update(pc, taken, backward)
    return correct / len(outcomes)


class TestBimodal:
    def test_learns_always_taken(self):
        predictor = BimodalPredictor()
        assert accuracy(predictor, [True] * 100) > 0.97

    def test_learns_always_not_taken(self):
        predictor = BimodalPredictor()
        assert accuracy(predictor, [False] * 100) > 0.95

    def test_cannot_learn_alternation(self):
        predictor = BimodalPredictor()
        outcomes = [bool(i % 2) for i in range(200)]
        assert accuracy(predictor, outcomes) < 0.7

    def test_reset_restores_initial_state(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x1000, False, False)
        predictor.reset()
        assert predictor.predict(0x1000, False)  # weakly taken init

    def test_invalid_table_bits(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=0)


class TestGshare:
    def test_learns_periodic_pattern(self):
        predictor = GsharePredictor(history_bits=8)
        pattern = [True, True, False, True] * 100
        assert accuracy(predictor, pattern) > 0.9

    def test_history_updates(self):
        predictor = GsharePredictor()
        predictor.update(0x1000, True, False)
        assert predictor.history == 1
        predictor.update(0x1000, False, False)
        assert predictor.history == 2


class TestTournament:
    def test_beats_components_on_mixed_population(self):
        rng = np.random.default_rng(1)
        branches = []
        for pc in range(0x1000, 0x1040, 4):
            if pc % 8 == 0:
                outcomes = [True, False] * 100  # needs history
            else:
                outcomes = list(rng.random(200) < 0.9)  # biased
            branches.append((pc, outcomes))

        def run(predictor):
            correct = total = 0
            for step in range(200):
                for pc, outcomes in branches:
                    taken = outcomes[step]
                    if predictor.predict(pc, False) == taken:
                        correct += 1
                    predictor.update(pc, taken, False)
                    total += 1
            return correct / total

        tournament = run(TournamentPredictor())
        bimodal = run(BimodalPredictor())
        assert tournament > 0.80
        assert tournament > bimodal + 0.10

    def test_loop_branch_high_accuracy(self):
        """A trip-12 loop back-edge is ~92 % predictable by saturation."""
        predictor = TournamentPredictor()
        outcomes = ([True] * 11 + [False]) * 40
        assert accuracy(predictor, outcomes, backward=True) > 0.85


class TestBuggyTournament:
    def test_anti_predicts_backward_always_taken(self):
        """The paper's Cluster-16 signature: the most predictable hardware
        branch becomes near-0 % in the model."""
        predictor = BuggyTournamentPredictor()
        assert accuracy(predictor, [True] * 500, backward=True) < 0.05

    def test_forward_branches_unaffected(self):
        buggy = BuggyTournamentPredictor()
        good = TournamentPredictor()
        outcomes = ([True] * 9 + [False]) * 50
        assert accuracy(buggy, outcomes, backward=False) == pytest.approx(
            accuracy(good, outcomes, backward=False)
        )

    def test_factory_kinds(self):
        assert isinstance(make_predictor("tournament"), TournamentPredictor)
        assert isinstance(
            make_predictor("buggy_tournament"), BuggyTournamentPredictor
        )
        assert isinstance(make_predictor("gshare"), GsharePredictor)
        assert isinstance(make_predictor("bimodal"), BimodalPredictor)
        with pytest.raises(ValueError):
            make_predictor("perceptron")


class TestReturnAddressStack:
    def test_matched_push_pop_predicts(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        assert ras.pop(0x100)
        assert ras.incorrect == 0

    def test_corruption_breaks_next_pop(self):
        ras = ReturnAddressStack()
        ras.push(0x100)
        ras.corrupt()
        assert not ras.pop(0x100)
        assert ras.incorrect == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop(3)
        assert ras.pop(2)
        assert not ras.pop(1)  # dropped by overflow

    def test_pop_empty_mispredicts(self):
        ras = ReturnAddressStack()
        assert not ras.pop(0x42)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(depth=0)

    def test_nested_calls(self):
        ras = ReturnAddressStack(depth=8)
        for addr in (1, 2, 3, 4):
            ras.push(addr)
        for addr in (4, 3, 2, 1):
            assert ras.pop(addr)


class TestIndirectPredictor:
    def test_stable_target_predicted(self):
        predictor = IndirectPredictor()
        predictor.predict_and_update(0x100, 5)  # cold miss
        assert predictor.predict_and_update(0x100, 5)

    def test_target_change_mispredicts_once(self):
        predictor = IndirectPredictor()
        predictor.predict_and_update(0x100, 5)
        assert not predictor.predict_and_update(0x100, 6)
        assert predictor.predict_and_update(0x100, 6)

    def test_misses_property(self):
        predictor = IndirectPredictor()
        predictor.predict_and_update(0x100, 1)
        predictor.predict_and_update(0x100, 1)
        assert predictor.misses == 1
        assert predictor.hits == 1
