"""Property-based tests for the trace compiler (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import BranchClass, compile_trace


@st.composite
def profiles(draw):
    """Random but valid workload profiles."""
    frac_load = draw(st.floats(0.02, 0.3))
    frac_store = draw(st.floats(0.01, 0.15))
    frac_branch = draw(st.floats(0.05, 0.25))
    frac_fp = draw(st.floats(0.0, 0.25))
    loop = draw(st.floats(0.15, 0.9))
    pattern = draw(st.floats(0.0, 1.0 - loop))
    biased = draw(st.floats(0.0, 1.0 - loop - pattern))
    random_frac = 1.0 - loop - pattern - biased
    seq = draw(st.floats(0.1, 0.9))
    stride = draw(st.floats(0.0, 1.0 - seq))
    return WorkloadProfile(
        name="hyp",
        suite="hypothesis",
        frac_load=frac_load,
        frac_store=frac_store,
        frac_branch=frac_branch,
        frac_fp=frac_fp,
        loop_branch_frac=loop,
        pattern_branch_frac=pattern,
        biased_branch_frac=biased,
        random_branch_frac=random_frac,
        loop_trip_mean=draw(st.floats(2.0, 200.0)),
        n_functions=draw(st.integers(1, 24)),
        code_kb=draw(st.floats(4.0, 256.0)),
        data_kb=draw(st.floats(8.0, 4096.0)),
        frac_seq=seq,
        frac_stride=stride,
        frac_rand=1.0 - seq - stride,
        ilp=draw(st.floats(0.5, 3.0)),
    )


@settings(max_examples=25, deadline=None)
@given(profile=profiles(), seed=st.integers(0, 2**31 - 1))
def test_compiled_trace_invariants(profile, seed):
    """Every valid profile compiles to a self-consistent trace."""
    trace = compile_trace(profile, 3_000, seed=seed)

    # Instruction accounting is exact.
    assert trace.n_instrs == sum(trace.totals.values())
    assert trace.totals["branch"] == len(trace.block_seq)
    assert trace.n_instrs >= 3_000

    # Dynamic sequences are aligned.
    assert len(trace.taken_seq) == len(trace.block_seq)
    assert len(trace.indirect_target_seq) == len(trace.block_seq)

    # Memory stream bookkeeping is exact.
    expected_mem = sum(trace.blocks[b].n_mem for b in trace.block_seq.tolist())
    assert len(trace.mem_addrs) == expected_mem

    # Block indices are in range.
    assert trace.block_seq.min() >= 0
    assert trace.block_seq.max() < len(trace.blocks)

    # Unconditional branch classes are always taken.
    for seq_index, block_id in enumerate(trace.block_seq.tolist()):
        cls = trace.blocks[block_id].branch_class
        if cls in (BranchClass.CALL, BranchClass.RETURN, BranchClass.INDIRECT):
            assert trace.taken_seq[seq_index] == 1


@settings(max_examples=10, deadline=None)
@given(profile=profiles())
def test_compilation_is_deterministic(profile):
    a = compile_trace(profile, 2_000, seed=7)
    b = compile_trace(profile, 2_000, seed=7)
    assert np.array_equal(a.block_seq, b.block_seq)
    assert np.array_equal(a.taken_seq, b.taken_seq)
    assert np.array_equal(a.mem_addrs, b.mem_addrs)
    assert a.totals == b.totals


@settings(max_examples=15, deadline=None)
@given(profile=profiles())
def test_mem_addresses_within_regions(profile):
    """Data addresses stay inside the declared address-space regions."""
    from repro.workloads.trace import DATA_BASE, LOCK_BASE

    trace = compile_trace(profile, 2_000, seed=3)
    if len(trace.mem_addrs) == 0:
        return
    addrs = trace.mem_addrs
    data_top = LOCK_BASE + 4096
    assert int(addrs.min()) >= DATA_BASE
    assert int(addrs.max()) < data_top
