"""Tests for the 65-workload catalog."""

import pytest

from repro.workloads.suites import (
    POWER_SET,
    VALIDATION_SET,
    all_workloads,
    power_modelling_workloads,
    validation_workloads,
    workload_by_name,
)


class TestCatalogShape:
    def test_validation_set_has_45_workloads(self):
        assert len(validation_workloads()) == 45

    def test_power_set_has_65_workloads(self):
        assert len(power_modelling_workloads()) == 65

    def test_all_names_unique(self):
        names = [w.name for w in power_modelling_workloads()]
        assert len(names) == len(set(names))

    def test_validation_subset_of_power_set(self):
        assert set(VALIDATION_SET) <= set(POWER_SET)

    def test_all_workloads_alias(self):
        assert [w.name for w in all_workloads()] == list(POWER_SET)

    def test_suites_present(self):
        suites = {w.suite for w in power_modelling_workloads()}
        assert suites == {
            "mibench", "parmibench", "parsec", "lmbench", "longbottom", "classic"
        }

    def test_lmbench_and_longbottom_not_in_validation(self):
        validation_suites = {w.suite for w in validation_workloads()}
        assert "lmbench" not in validation_suites
        assert "longbottom" not in validation_suites


class TestNamingConventions:
    def test_mibench_prefix(self):
        for w in power_modelling_workloads():
            if w.suite == "mibench":
                assert w.name.startswith("mi-")

    def test_parmibench_prefix(self):
        for w in power_modelling_workloads():
            if w.suite == "parmibench":
                assert w.name.startswith("par-")

    def test_parsec_prefix_and_thread_suffix(self):
        for w in power_modelling_workloads():
            if w.suite == "parsec":
                assert w.name.startswith("parsec-")
                assert w.name.endswith(("-1", "-4"))


class TestParsecThreading:
    def test_parsec_run_single_and_four_threaded(self):
        parsec = [w for w in power_modelling_workloads() if w.suite == "parsec"]
        singles = {w.name[:-2] for w in parsec if w.threads == 1}
        quads = {w.name[:-2] for w in parsec if w.threads == 4}
        assert singles == quads
        assert len(parsec) == 2 * len(singles)

    def test_four_threaded_have_sync_ops(self):
        # The basicmath trio is data-parallel without locking; every other
        # 4-thread workload synchronises through exclusives.
        for w in power_modelling_workloads():
            if w.threads == 4 and "basicmath" not in w.name:
                assert w.frac_ldrex > 0, w.name

    def test_parmibench_is_four_threaded(self):
        for w in power_modelling_workloads():
            if w.suite == "parmibench":
                assert w.threads == 4, w.name


class TestCharacteristics:
    def test_rad2deg_is_pathologically_loopy(self):
        w = workload_by_name("par-basicmath-rad2deg")
        assert w.loop_branch_frac > 0.9
        assert w.loop_trip_mean >= 200
        assert w.effective_backward_loop_frac >= 0.9

    def test_canneal_is_memory_heavy(self):
        w = workload_by_name("parsec-canneal-1")
        assert w.data_kb >= 4096

    def test_whetstone_is_fp_heavy(self):
        assert workload_by_name("whetstone").frac_fp > 0.25

    def test_dhrystone_is_tiny_footprint(self):
        w = workload_by_name("dhrystone")
        assert w.code_kb <= 16 and w.data_kb <= 32

    def test_typeset_has_big_code_and_indirects(self):
        w = workload_by_name("mi-typeset")
        assert w.code_kb >= 256
        assert w.indirect_frac > 0.04

    def test_lat_mem_chases_are_random_access(self):
        for name in ("lm-lat-mem-l1", "lm-lat-mem-l2", "lm-lat-mem-dram"):
            assert workload_by_name(name).frac_rand > 0.9

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("spec2006-gcc")

    def test_code_footprints_span_itlb_regimes(self):
        # The ITLB divergence story needs workloads below 32 pages and
        # workloads well above 32 pages of hot code.
        pages = [w.code_pages for w in validation_workloads()]
        assert min(pages) < 8
        assert max(pages) > 48
