"""Tests for the lmbench-style micro-benchmarks (Fig. 4 machinery)."""

import pytest

from repro.sim.machine import (
    gem5_ex5_big,
    gem5_ex5_little,
    hardware_a7,
    hardware_a15,
)
from repro.workloads.microbench import (
    LatencyPoint,
    memory_bandwidth,
    memory_latency_sweep,
    op_latency_table,
)

SIZES = (8, 16, 256, 1024, 8192)


@pytest.fixture(scope="module")
def hw_curve():
    return memory_latency_sweep(hardware_a15(), sizes_kb=SIZES, n_instrs=15_000)


@pytest.fixture(scope="module")
def gem5_curve():
    return memory_latency_sweep(gem5_ex5_big(), sizes_kb=SIZES, n_instrs=15_000)


class TestLatencyCurve:
    def test_monotone_with_size(self, hw_curve):
        latencies = [p.ns_per_access for p in hw_curve]
        assert latencies == sorted(latencies)

    def test_l1_region_is_cheap(self, hw_curve):
        l1 = hw_curve[0]
        assert l1.size_kb == 8
        assert l1.ns_per_access < 10.0

    def test_dram_region_near_dram_latency(self, hw_curve):
        dram = hw_curve[-1]
        # Well past the 2 MiB L2: latency approaches the DRAM figure.
        assert dram.ns_per_access > 60.0

    def test_returns_latency_points(self, hw_curve):
        assert all(isinstance(p, LatencyPoint) for p in hw_curve)


class TestPaperFig4Findings:
    def test_model_dram_latency_too_low(self, hw_curve, gem5_curve):
        """Fig. 4: 'the DRAM memory latency was too low in the model'."""
        assert gem5_curve[-1].ns_per_access < 0.85 * hw_curve[-1].ns_per_access

    def test_l1_region_matches(self, hw_curve, gem5_curve):
        """'the other measurements being very close'."""
        assert gem5_curve[0].ns_per_access == pytest.approx(
            hw_curve[0].ns_per_access, rel=0.15
        )

    def test_a7_model_l2_latency_too_high(self):
        """'the Cortex-A7 L2 cache latency was too high'."""
        hw = memory_latency_sweep(hardware_a7(), sizes_kb=(256,), n_instrs=10_000)
        gem5 = memory_latency_sweep(
            gem5_ex5_little(), sizes_kb=(256,), n_instrs=10_000
        )
        assert gem5[0].ns_per_access > 1.5 * hw[0].ns_per_access


class TestOpLatency:
    def test_divide_slowest(self):
        table = op_latency_table(hardware_a7())
        assert table["int_div"] > table["int_mul"] > 0

    def test_l2_load_includes_l1(self):
        table = op_latency_table(hardware_a15())
        assert table["load_l2"] > table["load_l1"]

    def test_a7_fp_exposed(self):
        assert op_latency_table(hardware_a7())["fp_add"] > op_latency_table(
            hardware_a15()
        )["fp_add"]


class TestBandwidth:
    def test_positive_and_plausible(self):
        bandwidth = memory_bandwidth(hardware_a15(), n_instrs=10_000)
        assert 1e8 < bandwidth < 1e11  # 0.1-100 GB/s envelope

    def test_scales_with_frequency(self):
        low = memory_bandwidth(hardware_a15(), freq_hz=0.6e9, n_instrs=10_000)
        high = memory_bandwidth(hardware_a15(), freq_hz=1.8e9, n_instrs=10_000)
        assert high > low
