"""Tests for WorkloadProfile validation and derived properties."""

import pytest

from repro.workloads.profile import WorkloadProfile


def make(**kwargs):
    defaults = dict(name="wl", suite="test")
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestValidation:
    def test_default_profile_valid(self):
        profile = make()
        assert profile.frac_int_alu > 0

    def test_mix_over_one_rejected(self):
        with pytest.raises(ValueError, match="instruction mix"):
            make(frac_load=0.6, frac_store=0.3, frac_branch=0.2)

    def test_branch_classes_must_sum_to_one(self):
        with pytest.raises(ValueError, match="branch classes"):
            make(loop_branch_frac=0.5, pattern_branch_frac=0.5,
                 biased_branch_frac=0.5, random_branch_frac=0.5)

    def test_locality_must_sum_to_one(self):
        with pytest.raises(ValueError, match="locality"):
            make(frac_seq=0.5, frac_stride=0.1, frac_rand=0.1)

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="threads"):
            make(threads=0)

    def test_tiny_loop_trip_rejected(self):
        with pytest.raises(ValueError, match="loop_trip_mean"):
            make(loop_trip_mean=1)

    def test_zero_ilp_rejected(self):
        with pytest.raises(ValueError, match="ilp"):
            make(ilp=0.0)

    def test_zero_footprint_rejected(self):
        with pytest.raises(ValueError, match="footprints"):
            make(code_kb=0)

    def test_bias_bounds(self):
        with pytest.raises(ValueError, match="branch_bias"):
            make(branch_bias=1.5)

    def test_backward_loop_frac_bounds(self):
        with pytest.raises(ValueError, match="backward_loop_frac"):
            make(backward_loop_frac=1.2)

    def test_excess_indirect_plus_return_rejected(self):
        with pytest.raises(ValueError, match="indirect"):
            make(indirect_frac=0.5, return_frac=0.4)


class TestDerived:
    def test_int_alu_is_remainder(self):
        profile = make(frac_load=0.2, frac_store=0.1, frac_branch=0.1,
                       frac_mul=0.0)
        assert profile.frac_int_alu == pytest.approx(0.6, abs=1e-9)

    def test_frac_mem_includes_exclusives(self):
        profile = make(frac_load=0.2, frac_store=0.1, frac_ldrex=0.01,
                       frac_strex=0.01)
        assert profile.frac_mem == pytest.approx(0.32)

    def test_code_pages(self):
        assert make(code_kb=4.0).code_pages == 1
        assert make(code_kb=128.0).code_pages == 32

    def test_backward_frac_explicit_override(self):
        assert make(backward_loop_frac=0.5).effective_backward_loop_frac == 0.5

    def test_backward_frac_grows_with_trip_count(self):
        short = make(loop_trip_mean=5).effective_backward_loop_frac
        long = make(loop_trip_mean=300).effective_backward_loop_frac
        assert long > short
        assert long <= 0.92

    def test_iter_mix_sums_to_one(self):
        profile = make(frac_load=0.2, frac_fp=0.1)
        assert sum(frac for _, frac in profile.iter_mix()) == pytest.approx(1.0)


class TestWithThreads:
    def test_renames_with_suffix(self):
        assert make(name="parsec-x-1").with_threads(4).name == "parsec-x-4"

    def test_adds_sync_operations(self):
        threaded = make().with_threads(4)
        assert threaded.frac_ldrex > 0
        assert threaded.frac_barrier > 0

    def test_same_thread_count_is_identity(self):
        profile = make()
        assert profile.with_threads(1) is profile

    def test_result_still_valid(self):
        # Must not blow the instruction-mix budget.
        threaded = make(frac_load=0.3, frac_store=0.2, frac_branch=0.2,
                        frac_fp=0.25).with_threads(4)
        assert threaded.instruction_mix_sum() <= 1.0
