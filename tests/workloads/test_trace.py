"""Tests for trace compilation."""

import numpy as np
import pytest

from repro.workloads.profile import WorkloadProfile
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import (
    BranchClass,
    SyntheticTrace,
    compile_trace,
    workload_seed,
)


@pytest.fixture(scope="module")
def trace():
    return compile_trace(workload_by_name("mi-qsort"), 12_000)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        profile = workload_by_name("mi-sha")
        a = compile_trace(profile, 8_000)
        b = compile_trace(profile, 8_000)
        assert np.array_equal(a.block_seq, b.block_seq)
        assert np.array_equal(a.taken_seq, b.taken_seq)
        assert np.array_equal(a.mem_addrs, b.mem_addrs)

    def test_different_seed_different_trace(self):
        profile = workload_by_name("mi-sha")
        a = compile_trace(profile, 8_000, seed=1)
        b = compile_trace(profile, 8_000, seed=2)
        assert not np.array_equal(a.mem_addrs, b.mem_addrs)

    def test_workload_seed_stable(self):
        assert workload_seed("mi-sha") == workload_seed("mi-sha")
        assert workload_seed("mi-sha") != workload_seed("mi-crc32")
        assert workload_seed("mi-sha", "power") != workload_seed("mi-sha", "trace")


class TestStructure:
    def test_length_near_target(self, trace):
        assert 12_000 <= trace.n_instrs <= 12_000 * 1.4

    def test_too_short_target_rejected(self):
        with pytest.raises(ValueError):
            compile_trace(workload_by_name("mi-sha"), 100)

    def test_totals_match_block_composition(self, trace):
        occurrences = trace.block_occurrences()
        recomputed = {}
        for block in trace.blocks:
            for kind_index, count in enumerate(block.kind_counts):
                from repro.workloads.trace import KIND_NAMES
                name = KIND_NAMES[kind_index]
                recomputed[name] = recomputed.get(name, 0) + count * int(
                    occurrences[block.index]
                )
        assert recomputed == trace.totals

    def test_every_block_ends_in_one_branch(self, trace):
        for block in trace.blocks:
            assert block.kind_counts[-1] == 1

    def test_branch_count_equals_dynamic_blocks(self, trace):
        assert trace.totals["branch"] == len(trace.block_seq)

    def test_mem_addrs_cover_all_dynamic_mem_ops(self, trace):
        expected = sum(
            trace.blocks[b].n_mem for b in trace.block_seq.tolist()
        )
        assert len(trace.mem_addrs) == expected

    def test_indirect_targets_only_for_indirect_blocks(self, trace):
        for seq_index, block_id in enumerate(trace.block_seq.tolist()):
            block = trace.blocks[block_id]
            target = trace.indirect_target_seq[seq_index]
            if block.branch_class == BranchClass.INDIRECT:
                assert 0 <= target < len(block.indirect_targets)
            else:
                assert target == -1

    def test_block_addresses_within_code_footprint(self, trace):
        from repro.workloads.trace import CODE_BASE
        code_bytes = trace.profile.code_kb * 1024
        for block in trace.blocks:
            assert CODE_BASE <= block.addr < CODE_BASE + code_bytes + 4096


class TestMixFidelity:
    @pytest.mark.parametrize("name", ["mi-qsort", "parsec-canneal-4", "mi-sha"])
    def test_realised_mix_close_to_profile(self, name):
        profile = workload_by_name(name)
        trace = compile_trace(profile, 40_000)
        n = trace.n_instrs
        for kind, target in profile.iter_mix():
            if target < 0.05:
                continue  # rare kinds are granular on purpose
            realised = trace.totals[kind] / n
            assert realised == pytest.approx(target, rel=0.35), (kind, realised)

    def test_loop_fraction_close_to_target(self):
        profile = workload_by_name("mi-sha")
        trace = compile_trace(profile, 40_000)
        counts = trace.branch_class_counts
        conditional = sum(
            counts[c]
            for c in (BranchClass.LOOP, BranchClass.PATTERN,
                      BranchClass.BIASED, BranchClass.RANDOM)
        )
        realised = counts[BranchClass.LOOP] / conditional
        assert realised == pytest.approx(profile.loop_branch_frac, abs=0.15)

    def test_backward_fraction_tracks_profile(self):
        profile = workload_by_name("par-basicmath-rad2deg")
        trace = compile_trace(profile, 20_000)
        loops = [b for b in trace.blocks if b.branch_class == BranchClass.LOOP]
        backward = sum(1 for b in loops if b.branch_backward)
        assert backward / len(loops) >= 0.8

    def test_threads_recorded(self):
        trace = compile_trace(workload_by_name("parsec-canneal-4"), 8_000)
        assert trace.profile.threads == 4


class TestLoopBehaviour:
    def test_loop_outcomes_mostly_taken_for_long_trips(self):
        profile = workload_by_name("mi-crc32")  # trip mean 120
        trace = compile_trace(profile, 20_000)
        loop_taken = 0
        loop_total = 0
        for seq_index, block_id in enumerate(trace.block_seq.tolist()):
            if trace.blocks[block_id].branch_class == BranchClass.LOOP:
                loop_total += 1
                loop_taken += int(trace.taken_seq[seq_index])
        assert loop_taken / loop_total > 0.9

    def test_calls_and_returns_balanced(self, trace):
        counts = trace.branch_class_counts
        calls = counts[BranchClass.CALL]
        returns = counts[BranchClass.RETURN]
        assert calls == returns
