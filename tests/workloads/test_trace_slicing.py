"""Tests for trace windowing (run-time power analysis support)."""

import numpy as np
import pytest

from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace, slice_trace


@pytest.fixture(scope="module")
def trace():
    return compile_trace(workload_by_name("mi-qsort"), 8_000)


class TestSliceTrace:
    def test_full_slice_preserves_totals(self, trace):
        window = slice_trace(trace, 0, len(trace.block_seq))
        assert window.totals == trace.totals
        assert window.n_instrs == trace.n_instrs
        assert np.array_equal(window.mem_addrs, trace.mem_addrs)

    def test_windows_partition_instructions(self, trace):
        n = len(trace.block_seq)
        mid = n // 2
        first = slice_trace(trace, 0, mid)
        second = slice_trace(trace, mid, n)
        assert first.n_instrs + second.n_instrs == trace.n_instrs
        for kind in trace.totals:
            assert first.totals[kind] + second.totals[kind] == trace.totals[kind]

    def test_windows_partition_mem_ops(self, trace):
        n = len(trace.block_seq)
        thirds = [slice_trace(trace, round(i * n / 3), round((i + 1) * n / 3))
                  for i in range(3)]
        assert sum(w.n_mem_ops for w in thirds) == trace.n_mem_ops

    def test_mem_addresses_are_the_right_segment(self, trace):
        mid = len(trace.block_seq) // 2
        second = slice_trace(trace, mid, len(trace.block_seq))
        assert np.array_equal(
            second.mem_addrs, trace.mem_addrs[-second.n_mem_ops:]
            if second.n_mem_ops else second.mem_addrs,
        )

    def test_shares_static_program(self, trace):
        window = slice_trace(trace, 0, 10)
        assert window.blocks is trace.blocks
        assert window.streams is trace.streams

    def test_name_records_window(self, trace):
        assert slice_trace(trace, 3, 9).name.endswith("[3:9]")

    def test_invalid_windows_rejected(self, trace):
        n = len(trace.block_seq)
        with pytest.raises(ValueError):
            slice_trace(trace, 5, 5)
        with pytest.raises(ValueError):
            slice_trace(trace, -1, 5)
        with pytest.raises(ValueError):
            slice_trace(trace, 0, n + 1)

    def test_sliced_trace_simulates(self, trace):
        from repro.sim.cpu import simulate
        from repro.sim.machine import hardware_a15

        window = slice_trace(trace, 0, len(trace.block_seq) // 4)
        result = simulate(window, hardware_a15())
        assert result.counts["instructions"] == window.n_instrs
        assert result.time_seconds(1e9) > 0
