"""Chrome trace export + validation, Prometheus snapshot, span analysis."""

from __future__ import annotations

import json

import pytest

from repro.obs.exporters import (
    chrome_trace_document,
    prometheus_snapshot,
    read_event_stream,
    slowest_spans,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


@pytest.fixture
def traced():
    tracer = Tracer(enabled=True)
    with tracer.span("batch", kind="executor"):
        with tracer.span("job", kind="job", workload="w1"):
            pass
        tracer.event("retry", attempt=1)
    return tracer


class TestChromeTrace:
    def test_document_is_valid_and_complete(self, traced):
        document = chrome_trace_document(traced.records)
        count = validate_chrome_trace(document)
        assert count == len(document["traceEvents"])
        phases = sorted(e["ph"] for e in document["traceEvents"])
        assert phases == ["M", "X", "X", "i"]

    def test_span_events_carry_args_and_category(self, traced):
        document = chrome_trace_document(traced.records)
        job = next(
            e for e in document["traceEvents"] if e["name"] == "job"
        )
        assert job["cat"] == "job"
        assert job["args"]["workload"] == "w1"
        assert job["args"]["path"] == "batch/job"

    def test_segments_become_pids_with_metadata(self):
        records = [
            {"kind": "span", "id": "a#0", "parent": None, "name": "a",
             "path": "a", "start_us": 0.0, "dur_us": 1.0, "tid": 0,
             "segment": s, "status": "ok", "attrs": {}}
            for s in (0, 1)
        ]
        document = chrome_trace_document(records)
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert [m["pid"] for m in metadata] == [0, 1]
        assert all(m["name"] == "process_name" for m in metadata)

    def test_negative_duration_is_clamped(self):
        record = {"kind": "span", "id": "a#0", "parent": None, "name": "a",
                  "path": "a", "start_us": 5.0, "dur_us": -1.0, "tid": 0,
                  "segment": 0, "status": "ok", "attrs": {}}
        document = chrome_trace_document([record])
        validate_chrome_trace(document)

    def test_write_is_loadable_json(self, traced, tmp_path):
        path = str(tmp_path / "trace.chrome.json")
        n_events = write_chrome_trace(traced.records, path)
        with open(path) as handle:
            document = json.load(handle)
        assert validate_chrome_trace(document) == n_events
        assert document["displayTimeUnit"] == "ms"


class TestValidateChromeTrace:
    @pytest.mark.parametrize(
        "document, match",
        [
            ([], "JSON object"),
            ({}, "traceEvents"),
            ({"traceEvents": [{}]}, "missing"),
            ({"traceEvents": [{"name": "a", "ph": "Z", "pid": 0, "tid": 0}]},
             "not a known phase"),
            ({"traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": "soon",
                 "dur": 1}]},
             "not a number"),
            ({"traceEvents": [
                {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 0,
                 "dur": -1}]},
             "negative"),
        ],
        ids=["not-dict", "no-events", "missing-keys", "bad-phase",
             "bad-ts", "negative-dur"],
    )
    def test_structural_violations_raise(self, document, match):
        with pytest.raises(ValueError, match=match):
            validate_chrome_trace(document)


class TestPrometheus:
    def test_counter_gauge_and_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("sim.executor.jobs_run").inc(3)
        registry.gauge("sim.executor.workers").set(4)
        registry.histogram("trace.span.job.seconds", buckets=(1.0,)).observe(0.5)
        text = prometheus_snapshot(registry)
        assert "# TYPE repro_sim_executor_jobs_run counter" in text
        assert "repro_sim_executor_jobs_run 3" in text
        assert "# TYPE repro_sim_executor_workers gauge" in text
        assert "# TYPE repro_trace_span_job_seconds histogram" in text
        assert 'repro_trace_span_job_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_trace_span_job_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_trace_span_job_seconds_count 1" in text
        assert text.endswith("\n")

    def test_write_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        path = str(tmp_path / "metrics.prom")
        write_prometheus_snapshot(registry, path)
        with open(path) as handle:
            assert "repro_a 1" in handle.read()


class TestStreamReader:
    def test_missing_stream(self, tmp_path):
        path = str(tmp_path / "absent.jsonl")
        assert read_event_stream(path, missing_ok=True) == []
        with pytest.raises(FileNotFoundError):
            read_event_stream(path)

    def test_non_record_line_ends_the_trusted_prefix(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"kind": "segment-start", "segment": 0}\n'
            '["not", "a", "record"]\n'
            '{"kind": "span"}\n'
        )
        records = read_event_stream(str(path))
        assert len(records) == 1


class TestSpanAnalysis:
    def _records(self):
        def span(name, dur_ms):
            return {"kind": "span", "id": f"{name}#0", "parent": None,
                    "name": name, "path": name, "start_us": 0.0,
                    "dur_us": dur_ms * 1000.0, "tid": 0, "segment": 0,
                    "status": "ok", "attrs": {}}

        return [span("a", 5.0), span("a", 1.0), span("b", 10.0)]

    def test_summary_aggregates_and_sorts_by_total(self):
        summary = summarize_spans(self._records())
        assert [e["name"] for e in summary] == ["b", "a"]
        a = summary[1]
        assert a["count"] == 2
        assert a["total_ms"] == pytest.approx(6.0)
        assert a["mean_ms"] == pytest.approx(3.0)
        assert a["max_ms"] == pytest.approx(5.0)

    def test_slowest_spans_orders_by_duration(self):
        slowest = slowest_spans(self._records(), top=2)
        assert [s["name"] for s in slowest] == ["b", "a"]
        assert slowest[0]["dur_us"] == 10_000.0
