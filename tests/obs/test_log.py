"""Structured stderr logging: namespacing, levels, JSON lines."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import configure_logging, get_logger


@pytest.fixture(autouse=True)
def _reset_logging():
    yield
    configure_logging(level=None)


class TestGetLogger:
    def test_names_are_namespaced_under_repro(self):
        assert get_logger("executor").name == "repro.executor"
        assert get_logger("repro.sim.executor").name == "repro.sim.executor"
        assert get_logger("repro").name == "repro"

    def test_silent_by_default(self, capsys):
        configure_logging(level=None)
        get_logger("quiet").warning("nothing should appear")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestConfigureLogging:
    def test_text_format_goes_to_the_given_stream(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("sim.executor").info("probing %d jobs", 3)
        assert stream.getvalue() == "I repro.sim.executor: probing 3 jobs\n"

    def test_level_filters_records(self):
        stream = io.StringIO()
        configure_logging(level="error", stream=stream)
        get_logger("x").warning("dropped")
        get_logger("x").error("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_reconfiguring_replaces_the_handler(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        configure_logging(level="info", stream=stream)
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_none_silences_again(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        configure_logging(level=None)
        get_logger("x").info("gone")
        assert stream.getvalue() == ""

    def test_never_touches_the_root_logger(self):
        before = list(logging.getLogger().handlers)
        configure_logging(level="debug", stream=io.StringIO())
        assert logging.getLogger().handlers == before


class TestJsonLines:
    def test_records_are_one_json_object_per_line(self):
        stream = io.StringIO()
        configure_logging(level="warning", json_lines=True, stream=stream)
        get_logger("sim.cache").warning("degraded: %s", "full disk")
        (line,) = stream.getvalue().splitlines()
        payload = json.loads(line)
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.sim.cache"
        assert payload["message"] == "degraded: full disk"
        assert isinstance(payload["ts"], float)

    def test_exception_type_is_captured(self):
        stream = io.StringIO()
        configure_logging(level="error", json_lines=True, stream=stream)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("x").exception("failed")
        payload = json.loads(stream.getvalue().splitlines()[0])
        assert payload["exc_type"] == "RuntimeError"
