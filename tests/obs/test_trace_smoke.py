"""Trace smoke suite (``make trace-smoke``): a tiny traced pipeline run.

Asserts the three observability invariants end-to-end: the exported Chrome
trace-event JSON is schema-valid (Perfetto-loadable), tracing never changes
a single report byte, and the span *tree* is deterministic — two runs of
the same configuration differ only in wall-clock fields.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.obs.exporters import (
    CHROME_FILE,
    EVENTS_FILE,
    METRICS_FILE,
    read_event_stream,
    validate_chrome_trace,
)
from repro.workloads.suites import workload_by_name

pytestmark = pytest.mark.obs

N_INSTRS = 4_000
WORKLOADS = ("mi-bitcount", "mi-sha")


def _config(**overrides):
    profiles = tuple(workload_by_name(name) for name in WORKLOADS)
    defaults = dict(
        core="A15",
        workloads=profiles,
        power_workloads=profiles,
        frequencies=(1000e6,),
        trace_instructions=N_INSTRS,
        n_workload_clusters=2,
        power_model_terms=2,
    )
    defaults.update(overrides)
    return GemStoneConfig(**defaults)


class TestTraceSmoke:
    def test_traced_run_exports_valid_chrome_trace(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        gs = GemStone(_config(trace_dir=trace_dir))
        gs.report()
        paths = gs.export_trace()
        gs.tracer.close()

        with open(paths["chrome"]) as handle:
            document = json.load(handle)
        n_events = validate_chrome_trace(document)
        assert n_events > 0

        names = {
            e["name"] for e in document["traceEvents"] if e["ph"] == "X"
        }
        # Every pipeline phase and the executor layer left spans.
        assert "phase:dataset" in names
        assert "phase:report" in names
        assert "executor-batch" in names
        assert "sim-job" in names

        assert os.path.exists(os.path.join(trace_dir, EVENTS_FILE))
        with open(os.path.join(trace_dir, METRICS_FILE)) as handle:
            assert "repro_sim_executor_jobs_run" in handle.read()

    def test_tracing_never_changes_the_report(self, tmp_path):
        # Byte-compare the deterministic rendering: the wall-clock
        # telemetry table differs between *any* two runs, traced or not.
        from repro.core.report import render_full_report

        plain = render_full_report(GemStone(_config()), include_telemetry=False)
        gs = GemStone(_config(trace_dir=str(tmp_path / "trace")))
        gs.report()
        traced = render_full_report(gs, include_telemetry=False)
        assert traced == plain

    def test_span_tree_is_deterministic_modulo_wallclock(self):
        def run():
            gs = GemStone(_config(trace=True))
            gs.report()
            return gs.tracer.shape()

        assert run() == run()

    def test_stream_parses_and_covers_one_segment(self, tmp_path):
        trace_dir = str(tmp_path / "trace")
        gs = GemStone(_config(trace_dir=trace_dir))
        gs.report()
        gs.tracer.close()
        records = read_event_stream(os.path.join(trace_dir, EVENTS_FILE))
        assert records[0]["kind"] == "segment-start"
        assert {r["segment"] for r in records} == {0}

    def test_metrics_registry_is_the_single_source_of_truth(self):
        gs = GemStone(_config(trace=True))
        gs.report()
        telemetry = gs.executor.telemetry
        assert telemetry.registry is gs.metrics
        assert gs.metrics.value("sim.executor.jobs_run") == (
            telemetry.jobs_run
        )
        assert telemetry.jobs_run > 0
        # Span durations fed the histogram family.
        assert gs.metrics.histogram("trace.span.sim-job.seconds").count > 0
