"""The ``gemstone trace`` subcommand over a synthesized trace directory."""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.obs.exporters import CHROME_FILE, EVENTS_FILE, validate_chrome_trace
from repro.obs.tracer import Tracer


def _trace_dir(tmp_path) -> str:
    directory = str(tmp_path / "trace")
    tracer = Tracer(
        enabled=True, stream_path=os.path.join(directory, EVENTS_FILE)
    )
    with tracer.span("phase:dataset", kind="phase"):
        with tracer.span("executor-batch", kind="executor"):
            with tracer.span("sim-job", kind="job"):
                pass
        tracer.event("job-retry", attempt=1)
    tracer.close()
    return directory


class TestTraceSubcommand:
    def test_summary_prints_span_table(self, tmp_path, capsys):
        assert main(["trace", "summary", _trace_dir(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run segment(s)" in out
        assert "phase:dataset" in out
        assert "sim-job" in out

    def test_slowest_honours_top(self, tmp_path, capsys):
        assert main(["trace", "slowest", _trace_dir(tmp_path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "slowest 1 spans" in out

    def test_export_writes_and_validates_default_path(self, tmp_path, capsys):
        directory = _trace_dir(tmp_path)
        assert main(["trace", "export", directory]) == 0
        assert "schema OK" in capsys.readouterr().out
        with open(os.path.join(directory, CHROME_FILE)) as handle:
            assert validate_chrome_trace(json.load(handle)) > 0

    def test_export_honours_out(self, tmp_path, capsys):
        directory = _trace_dir(tmp_path)
        target = str(tmp_path / "elsewhere.json")
        assert main(["trace", "export", directory, "--out", target]) == 0
        assert target in capsys.readouterr().out
        with open(target) as handle:
            assert validate_chrome_trace(json.load(handle)) > 0
        assert not os.path.exists(os.path.join(directory, CHROME_FILE))

    def test_missing_stream_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "absent")]) == 1
        assert "no trace stream" in capsys.readouterr().err
