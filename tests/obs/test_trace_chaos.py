"""Chaos: a traced run killed mid-pipeline leaves well-formed trace files.

The crash-safety contract for observability is weaker than for results —
a trace is best-effort — but it must never be *corrupt*: every record
flushed before the kill parses, the resumed run appends a second segment
to the same stream, and the Chrome export renders both segments as
separate process tracks.  Meanwhile the report, as ever, must come back
byte-identical; wall-clock lives only in the trace files.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.obs.exporters import (
    EVENTS_FILE,
    read_event_stream,
    validate_chrome_trace,
)
from repro.workloads.suites import workload_by_name

pytestmark = pytest.mark.chaos

N_INSTRS = 8_000
FREQS = (600e6, 1000e6)
WORKLOADS = ("mi-bitcount", "mi-qsort", "mi-sha")


@pytest.fixture(scope="module")
def sim_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("sim-cache"))


def _config(sim_cache_dir, **overrides):
    profiles = tuple(workload_by_name(name) for name in WORKLOADS)
    defaults = dict(
        core="A15",
        workloads=profiles,
        power_workloads=profiles,
        frequencies=FREQS,
        trace_instructions=N_INSTRS,
        n_workload_clusters=2,
        power_model_terms=2,
        cache_dir=sim_cache_dir,
    )
    defaults.update(overrides)
    return GemStoneConfig(**defaults)


@pytest.fixture(scope="module")
def reference_report(sim_cache_dir, tmp_path_factory):
    """The untraced, uninterrupted report the traced resume must match.

    Checkpointed like the scenario runs: checkpointed reports render
    without the wall-clock telemetry table, which is what makes
    byte-identity possible at all.
    """
    ckpt = str(tmp_path_factory.mktemp("reference-ckpt"))
    return GemStone(_config(sim_cache_dir, checkpoint_dir=ckpt)).report()


def test_killed_traced_run_resumes_with_a_two_segment_trace(
    sim_cache_dir, tmp_path, reference_report
):
    ckpt = str(tmp_path / "ckpt")
    trace_dir = str(tmp_path / "trace")
    stream = os.path.join(trace_dir, EVENTS_FILE)

    # First run: finish the two collection phases, then die.  Abandoning
    # the facade is what SIGKILL leaves behind: the trace stream is
    # flushed per record, so everything that closed before the kill is
    # already durable.
    victim = GemStone(
        _config(sim_cache_dir, checkpoint_dir=ckpt, trace_dir=trace_dir)
    )
    _ = victim.dataset
    _ = victim.power_dataset
    victim.tracer.close()
    del victim

    first = read_event_stream(stream)
    assert first, "the killed run left no trace"
    assert {r["segment"] for r in first} == {0}
    phase_spans = {
        r["name"] for r in first if r.get("kind") == "span"
    }
    assert "phase:dataset" in phase_spans

    # Resume: the report must be byte-identical (all wall-clock lives in
    # the trace files), and the stream gains a second segment.
    resumed = GemStone(
        _config(
            sim_cache_dir, checkpoint_dir=ckpt, trace_dir=trace_dir,
            resume=True,
        )
    )
    assert resumed.report() == reference_report
    assert resumed.tracer.segment == 1
    paths = resumed.export_trace()
    resumed.tracer.close()

    records = read_event_stream(stream)
    segments = {r["segment"] for r in records}
    assert segments == {0, 1}
    # Restored phases announce themselves in the second segment.
    restored = [
        r for r in records
        if r.get("kind") == "event" and r["name"] == "restored"
    ]
    assert {e["attrs"]["phase"] for e in restored} >= {
        "dataset", "power-dataset",
    }

    # The Chrome export is schema-valid and renders one process track
    # (pid) per segment.
    with open(paths["chrome"]) as handle:
        document = json.load(handle)
    assert validate_chrome_trace(document) == len(document["traceEvents"])
    assert {e["pid"] for e in document["traceEvents"]} == {0, 1}


def test_stream_torn_by_a_kill_mid_record_still_parses(
    sim_cache_dir, tmp_path
):
    trace_dir = str(tmp_path / "trace")
    stream = os.path.join(trace_dir, EVENTS_FILE)
    gs = GemStone(_config(sim_cache_dir, trace_dir=trace_dir))
    _ = gs.dataset
    gs.tracer.close()

    intact = len(read_event_stream(stream))
    with open(stream, "a") as handle:
        handle.write('{"kind": "span", "id": "torn')  # the kill point

    # The torn tail is dropped; the trusted prefix survives, and a
    # resumed tracer still opens segment 1 on top of it.
    assert len(read_event_stream(stream)) == intact
    resumed = GemStone(
        _config(sim_cache_dir, trace_dir=trace_dir)
    )
    assert resumed.tracer.segment == 1
    resumed.tracer.close()
