"""Deterministic replay profiler: attribution, coverage, CLI table."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.prof import PASS_COMPONENTS, attribute_cycles, profile_records
from repro.obs.tracer import Tracer
from repro.sim.cpu import simulate
from repro.sim.machine import gem5_ex5_big
from repro.workloads.suites import workload_by_name
from repro.workloads.trace import compile_trace


def _traced_run(workloads=("mi-sha",), stream_path=None):
    tracer = Tracer(enabled=True, stream_path=stream_path)
    machine = gem5_ex5_big()
    results = []
    for name in workloads:
        trace = compile_trace(workload_by_name(name), n_instrs=3_000)
        results.append(
            simulate(trace, machine, engine="columnar", tracer=tracer)
        )
    return tracer, results


class TestAttributeCycles:
    def test_every_component_is_claimed_by_exactly_one_pass(self):
        claimed = [key for keys in PASS_COMPONENTS.values() for key in keys]
        assert len(claimed) == len(set(claimed))

    def test_attribution_sums_to_core_cycles(self):
        _tracer, results = _traced_run()
        for result in results:
            attributed = attribute_cycles(result.components)
            assert sum(attributed.values()) == pytest.approx(
                result.core_cycles
            )
            assert "replay/unattributed" not in attributed

    def test_unknown_component_lands_in_unattributed(self):
        attributed = attribute_cycles({"branch": 10.0, "quantum": 5.0})
        assert attributed["replay/branch_pass"] == 10.0
        assert attributed["replay/unattributed"] == 5.0

    def test_attribution_is_wall_clock_free(self):
        # Pure function of the components dict: identical across runs.
        _t1, first = _traced_run()
        _t2, second = _traced_run()
        assert attribute_cycles(first[0].components) == attribute_cycles(
            second[0].components
        )


class TestProfileRecords:
    def test_coverage_meets_the_95_percent_gate(self):
        tracer, results = _traced_run(("mi-sha", "dhrystone"))
        profile = profile_records(tracer.records)
        assert profile["replays"] == 2
        assert profile["core_cycles"] == pytest.approx(
            sum(r.core_cycles for r in results)
        )
        assert profile["coverage"] >= 0.95

    def test_rows_join_cycles_with_measured_seconds(self):
        tracer, _results = _traced_run()
        profile = profile_records(tracer.records)
        rows = {row["pass"]: row for row in profile["rows"]}
        decode = rows["replay/decode"]
        assert decode["calls"] == 1
        assert decode["cycles"] > 0
        assert decode["seconds"] >= 0.0
        shares = [row["share"] for row in profile["rows"]]
        assert sum(shares) == pytest.approx(1.0)
        # Sorted by attributed cycles, descending.
        cycles = [row["cycles"] for row in profile["rows"]]
        assert cycles == sorted(cycles, reverse=True)

    def test_empty_records_report_full_coverage(self):
        profile = profile_records([])
        assert profile == {
            "replays": 0,
            "core_cycles": 0.0,
            "attributed_cycles": 0.0,
            "coverage": 1.0,
            "rows": [],
        }

    def test_untraced_simulation_emits_no_profile_event(self):
        trace = compile_trace(workload_by_name("mi-sha"), n_instrs=3_000)
        result = simulate(trace, gem5_ex5_big(), engine="columnar")
        assert result.core_cycles > 0  # the run itself is unaffected


class TestProfileCli:
    def test_gemstone_trace_profile_renders_the_table(
        self, tmp_path, capsys
    ):
        stream = str(tmp_path / "events.jsonl")
        tracer, _results = _traced_run(stream_path=stream)
        tracer.close()
        assert main(["trace", "profile", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "replay profile over 1 simulation(s)" in out
        assert "replay/decode" in out
        assert "coverage 100.0%" in out
