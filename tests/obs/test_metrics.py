"""Counters, gauges, histograms, the registry, and the MetricView facade."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricView,
)


class TestCounterAndGauge:
    def test_counter_inc_and_set(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        c.set(10)
        assert c.value == 10

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(4)
        g.set(2)
        assert g.value == 2.0
        g.inc(3)
        assert g.value == 5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.min == 0.05
        assert h.max == 50.0
        assert h.cumulative() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5)
        ]

    def test_boundary_value_counts_as_le(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(1.0)
        assert h.cumulative() == [(1.0, 1), (float("inf"), 1)]


class TestRegistry:
    def test_create_on_first_use_and_reuse(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc()
        assert reg.value("a.b") == 2

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        reg.histogram("c")
        assert reg.names() == ["a", "b", "c"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.2)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"] == {"type": "gauge", "value": 7.0}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert snap["h"]["min"] == pytest.approx(0.2)

    def test_empty_histogram_snapshot_has_null_extremes(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()["h"]
        assert snap["min"] is None and snap["max"] is None

    def test_absorb_merges_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.histogram("h").observe(0.1)
        b.histogram("h").observe(0.3)
        b.gauge("g").set(9)
        a.absorb(b)
        assert a.value("c") == 3
        assert a.histogram("h").count == 2
        assert a.gauge("g").value == 9.0


class _View(MetricView):
    _fields = {"hits": "t.hits", "misses": "t.misses"}


class TestMetricView:
    def test_reads_and_writes_go_to_the_registry(self):
        reg = MetricsRegistry()
        view = _View(reg)
        assert view.hits == 0
        view.hits += 2
        assert reg.value("t.hits") == 2
        reg.counter("t.hits").inc()
        assert view.hits == 3

    def test_keyword_construction_matches_old_dataclasses(self):
        view = _View(hits=4, misses=1)
        assert view.hits == 4 and view.misses == 1

    def test_unknown_keyword_raises(self):
        with pytest.raises(TypeError):
            _View(bogus=1)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            _View().bogus

    def test_private_registry_when_none_given(self):
        a, b = _View(), _View()
        a.hits += 1
        assert b.hits == 0

    def test_as_dict_and_repr(self):
        view = _View(hits=1)
        assert view.as_dict() == {"hits": 1, "misses": 0}
        assert "hits=1" in repr(view)
