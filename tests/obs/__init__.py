"""Tests for the unified tracing & metrics layer (:mod:`repro.obs`)."""
