"""Campaign stitching: seal verification, adopt tracks, metric merging."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.exporters import (
    chrome_trace_document,
    prometheus_snapshot,
    validate_chrome_trace,
)
from repro.obs.merge import (
    autotune_hint,
    campaign_health,
    export_campaign_trace,
    is_campaign_dir,
    load_trace_records,
    merge_board_metrics,
    merge_campaign_records,
    merge_snapshots,
    read_shard_stream,
    registry_from_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _write_stream(path, span_names, close=True):
    tracer = Tracer(enabled=True, stream_path=str(path))
    for name in span_names:
        with tracer.span(name):
            pass
    if close:
        tracer.close()
    return tracer


def _fake_board(tmp_path, shards=("shard-0", "shard-1")):
    board = tmp_path / "board"
    board.mkdir()
    (board / "board.json").write_text("{}\n")
    for owner in shards:
        obs = board / "obs" / owner
        obs.mkdir(parents=True)
        _write_stream(obs / "events.jsonl", [f"job-{owner}"])
    return str(board)


class TestSealVerification:
    def test_sealed_segment_reads_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_stream(path, ["work"])
        records, problems = read_shard_stream(str(path))
        assert problems == []
        assert [r["kind"] for r in records] == ["segment-start", "span"]
        # The seal itself is consumed by verification, not returned.
        assert all(r["kind"] != "segment-end" for r in records)

    def test_unsealed_tail_kept_best_effort(self, tmp_path):
        # SIGKILL before close(): no seal, records survive with a note.
        path = tmp_path / "events.jsonl"
        _write_stream(path, ["work"], close=False)
        records, problems = read_shard_stream(str(path))
        assert [r["kind"] for r in records] == ["segment-start", "span"]
        assert len(problems) == 1
        assert "no seal" in problems[0]

    def test_tampered_segment_is_dropped_whole(self, tmp_path):
        path = tmp_path / "events.jsonl"
        _write_stream(path, ["work"])
        lines = path.read_text().splitlines()
        span = json.loads(lines[1])
        span["name"] = "forged"
        lines[1] = json.dumps(span, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        records, problems = read_shard_stream(str(path))
        assert records == []
        assert "failed its seal" in problems[0]

    def test_killed_then_resumed_writer_isolates_segments(self, tmp_path):
        # Segment 0 dies unsealed; segment 1 seals cleanly.  The unsealed
        # prefix must not pollute segment 1's checksum.
        path = tmp_path / "events.jsonl"
        _write_stream(path, ["first"], close=False)
        _write_stream(path, ["second"])
        records, problems = read_shard_stream(str(path))
        names = [r["name"] for r in records if r["kind"] == "span"]
        assert names == ["first", "second"]  # both kept, stream order
        assert len(problems) == 1 and "segment 0" in problems[0]

    def test_missing_stream(self, tmp_path):
        path = str(tmp_path / "nope.jsonl")
        assert read_shard_stream(path) == ([], [])
        with pytest.raises(FileNotFoundError):
            read_shard_stream(path, missing_ok=False)


class TestAdoptGeneralisation:
    def _worker_records(self):
        worker = Tracer(enabled=True)
        with worker.span("job"):
            with worker.span("step"):
                pass
        return worker.records

    def test_segment_override_sets_the_track(self):
        parent = Tracer(enabled=True)
        parent.adopt(self._worker_records(), rebase_us=0.0, segment=7)
        assert {r["segment"] for r in parent.records} == {7}

    def test_keep_tid_preserves_worker_lanes(self):
        records = self._worker_records()
        for record in records:
            record["tid"] = 5
        parent = Tracer(enabled=True)
        parent.adopt(records, rebase_us=0.0, segment=3, keep_tid=True)
        assert {r["tid"] for r in parent.records} == {5}

    def test_default_still_rehomes_to_parent_segment(self):
        parent = Tracer(enabled=True)
        parent.adopt(self._worker_records(), rebase_us=0.0, tid=2)
        assert {r["segment"] for r in parent.records} == {parent.segment}
        assert {r["tid"] for r in parent.records} == {2}


class TestMergeCampaignRecords:
    def test_each_shard_gets_its_own_track(self, tmp_path):
        board = _fake_board(tmp_path)
        records, names = merge_campaign_records(board)
        assert sorted(names.values()) == [
            "campaign shard-0", "campaign shard-1",
        ]
        by_pid = {}
        for record in records:
            if record["kind"] == "span":
                by_pid.setdefault(record["segment"], set()).add(
                    record["name"]
                )
        assert by_pid == {0: {"job-shard-0"}, 1: {"job-shard-1"}}

    def test_coordinator_keeps_its_segments_below_shard_tracks(
        self, tmp_path
    ):
        board = _fake_board(tmp_path)
        coordinator = Tracer(enabled=True)
        with coordinator.span("campaign"):
            pass
        records, names = merge_campaign_records(
            board, coordinator_records=list(coordinator.records)
        )
        campaign_span = next(
            r for r in records if r.get("name") == "campaign"
        )
        assert campaign_span["segment"] == 0
        assert set(names) == {1, 2}  # shard tracks start above

    def test_merged_document_validates_with_named_tracks(self, tmp_path):
        board = _fake_board(tmp_path)
        records, names = merge_campaign_records(board)
        document = chrome_trace_document(records, process_names=names)
        validate_chrome_trace(document)
        meta = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("ph") == "M"
        }
        assert meta == {"campaign shard-0", "campaign shard-1"}

    def test_merge_is_a_pure_function_of_the_streams(self, tmp_path):
        # Re-merging after a coordinator restart must be byte-identical.
        board = _fake_board(tmp_path)
        first = merge_campaign_records(board)
        second = merge_campaign_records(board)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_load_trace_records_detects_campaign_dirs(self, tmp_path):
        board = _fake_board(tmp_path)
        assert is_campaign_dir(board)
        records, names = load_trace_records(board)
        assert names is not None and len(names) == 2
        plain = tmp_path / "plain"
        plain.mkdir()
        _write_stream(plain / "events.jsonl", ["solo"])
        records, names = load_trace_records(str(plain))
        assert names is None
        assert [r["name"] for r in records if r["kind"] == "span"] == [
            "solo"
        ]


class TestSnapshotRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("sim.campaign.jobs_done").inc(4)
        registry.gauge("sim.campaign.workers").set(2)
        hist = registry.histogram(
            "sim.campaign.job.seconds", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_snapshot_round_trips_exactly(self):
        registry = self._registry()
        rebuilt = registry_from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_empty_histogram_round_trips(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,))
        rebuilt = registry_from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown type"):
            registry_from_snapshot({"x": {"type": "summary"}})


class TestMergeConflictSemantics:
    def test_counters_add_gauges_last_write_histograms_bucketwise(self):
        a = MetricsRegistry()
        a.counter("done").inc(2)
        a.gauge("workers").set(1)
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("done").inc(3)
        b.gauge("workers").set(4)
        b.histogram("lat", buckets=(1.0,)).observe(2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.value("done") == 5
        assert merged.value("workers") == 4  # last write wins
        hist = merged.histogram("lat")
        assert hist.count == 2
        assert hist.bucket_counts == [1, 1]

    def test_kind_conflict_raises_type_error(self):
        a = MetricsRegistry()
        a.counter("x").inc(1)
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(TypeError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_bucket_conflict_raises_value_error(self):
        a = MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("lat", buckets=(2.0, 4.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            merge_snapshots([a.snapshot(), b.snapshot()])


class TestPrometheusLabels:
    def test_unlabelled_output_is_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(1)
        assert prometheus_snapshot(registry) == prometheus_snapshot(
            registry, labels=None
        )
        assert "repro_jobs 1" in prometheus_snapshot(registry)

    def test_labels_attach_to_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(1)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = prometheus_snapshot(registry, labels={"shard": "s0"})
        assert 'repro_jobs{shard="s0"} 1' in text
        assert 'repro_lat_bucket{shard="s0",le="1.0"} 1' in text
        assert 'repro_lat_sum{shard="s0"} 0.5' in text

    def test_label_values_escape_exposition_metachars(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(1)
        text = prometheus_snapshot(
            registry, labels={"shard": 'we"ird\\path\nname'}
        )
        assert (
            'repro_jobs{shard="we\\"ird\\\\path\\nname"} 1' in text
        )
        # The document itself stays one sample per line.
        assert len(text.splitlines()) == 2


class TestHealthAndHint:
    def test_campaign_health_derives_the_three_signals(self):
        merged = MetricsRegistry()
        merged.counter("sim.campaign.jobs_claimed").inc(8)
        merged.counter("sim.campaign.leases_stolen").inc(2)
        merged.histogram(
            "sim.campaign.board.flock_wait.seconds", buckets=(0.1,)
        ).observe(0.5)
        merged.histogram(
            "sim.campaign.job.seconds", buckets=(1.0,)
        ).observe(2.0)
        health = campaign_health(merged, {"s0": 6, "s1": 2})
        assert health["steal_rate"] == 0.25
        assert health["straggler_skew"] == 1.5  # 6 / mean(6, 2)
        assert health["contention_index"] == 0.25
        assert health["jobs_claimed"] == 8

    def test_empty_registry_degrades_to_null_signals(self):
        health = campaign_health(MetricsRegistry())
        assert health["steal_rate"] == 0.0
        assert health["straggler_skew"] is None
        assert health["contention_index"] is None

    def test_hint_more_shards_than_jobs(self):
        hint = autotune_hint(8, 3, 0.0)
        assert hint["suggested_shards"] == 3
        assert "idle" in hint["reason"]

    def test_hint_high_steal_rate_halves_shards(self):
        hint = autotune_hint(8, 100, 0.5)
        assert hint["suggested_shards"] == 4
        assert "steal rate" in hint["reason"]

    def test_hint_high_contention_halves_shards(self):
        hint = autotune_hint(4, 100, 0.0, contention_index=0.6)
        assert hint["suggested_shards"] == 2
        assert "contention" in hint["reason"]

    def test_hint_well_matched(self):
        hint = autotune_hint(2, 100, 0.0, contention_index=0.01)
        assert hint["suggested_shards"] == 2


class TestExportCampaignTrace:
    def test_exports_validate_and_are_reproducible(self, tmp_path):
        board = _fake_board(tmp_path)
        snapshot = MetricsRegistry()
        snapshot.counter("sim.campaign.jobs_done").inc(2)
        obs = os.path.join(board, "obs", "shard-0")
        with open(os.path.join(obs, "metrics.json"), "w") as handle:
            json.dump(snapshot.snapshot(), handle, sort_keys=True)
        paths = export_campaign_trace(board)
        with open(paths["chrome"]) as handle:
            validate_chrome_trace(json.load(handle))
        with open(paths["metrics"]) as handle:
            prom = handle.read()
        assert "repro_sim_campaign_jobs_done 2" in prom
        first = open(paths["chrome"]).read()
        export_campaign_trace(board)
        assert open(paths["chrome"]).read() == first

    def test_merged_board_metrics_sums_shards(self, tmp_path):
        board = _fake_board(tmp_path)
        for owner, done in (("shard-0", 3), ("shard-1", 5)):
            registry = MetricsRegistry()
            registry.counter("sim.campaign.jobs_done").inc(done)
            path = os.path.join(board, "obs", owner, "metrics.json")
            with open(path, "w") as handle:
                json.dump(registry.snapshot(), handle, sort_keys=True)
        merged = merge_board_metrics(board)
        assert merged.value("sim.campaign.jobs_done") == 8
