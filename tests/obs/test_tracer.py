"""Span trees, deterministic identities, worker stitching, streaming."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.exporters import read_event_stream
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer, WALL_CLOCK_FIELDS


def span_by_name(tracer, name):
    return next(
        r for r in tracer.records
        if r["kind"] == "span" and r["name"] == name
    )


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("work", key=1) as span:
            span.set(more=2)
            span.event("tick")
        NULL_TRACER.event("loose")
        assert NULL_TRACER.records == []

    def test_null_span_is_shared(self):
        assert Tracer().span("a") is Tracer().span("b")


class TestSpanTree:
    def test_nesting_builds_paths_and_parent_links(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner = span_by_name(tracer, "inner")
        assert inner["path"] == "outer/inner"
        assert inner["parent"] == outer.span_id
        assert span_by_name(tracer, "outer")["parent"] is None

    def test_ids_are_path_plus_counter_never_wallclock(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("a"):
            pass
        ids = [r["id"] for r in tracer.records]
        assert ids == ["a#0", "a#1"]

    def test_durations_are_nonnegative_and_ordered(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = span_by_name(tracer, "inner")
        outer = span_by_name(tracer, "outer")
        assert inner["dur_us"] >= 0
        assert outer["start_us"] <= inner["start_us"]
        assert outer["dur_us"] >= inner["dur_us"]

    def test_exception_marks_error_status_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        record = span_by_name(tracer, "doomed")
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"

    def test_events_attach_to_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work") as span:
            tracer.event("tick", n=1)
        (event,) = [r for r in tracer.records if r["kind"] == "event"]
        assert event["span"] == span.span_id
        assert event["attrs"] == {"n": 1}

    def test_metrics_histogram_fed_on_close(self):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, metrics=registry)
        with tracer.span("work"):
            pass
        assert registry.histogram("trace.span.work.seconds").count == 1


class TestDeterministicShape:
    def _run(self):
        tracer = Tracer(enabled=True)
        with tracer.span("batch", n_jobs=2):
            for name in ("a", "b"):
                with tracer.span("job", workload=name):
                    pass
            tracer.event("done")
        return tracer

    def test_same_work_gives_identical_shape(self):
        assert self._run().shape() == self._run().shape()

    def test_shape_excludes_exactly_the_wallclock_fields(self):
        tracer = self._run()
        for record, skeleton in zip(tracer.records, tracer.shape()):
            kept = {key for key, _ in skeleton}
            assert kept == set(record) - WALL_CLOCK_FIELDS

    def test_different_work_changes_shape(self):
        other = Tracer(enabled=True)
        with other.span("batch", n_jobs=2):
            pass
        assert other.shape() != self._run().shape()


class TestAdopt:
    def _worker(self):
        worker = Tracer(enabled=True)
        with worker.span("sim-job", workload="w1"):
            with worker.span("cache-put"):
                pass
            worker.event("tick")
        return worker.records

    def test_records_are_reidentified_and_rerooted(self):
        parent = Tracer(enabled=True)
        with parent.span("pool") as pool:
            parent.adopt(self._worker(), rebase_us=pool.start_us, tid=3)
        job = span_by_name(parent, "sim-job")
        put = span_by_name(parent, "cache-put")
        assert job["path"] == "pool/sim-job"
        assert job["parent"] == pool.span_id
        assert put["parent"] == job["id"]
        assert {job["tid"], put["tid"]} == {3}
        event = next(r for r in parent.records if r["kind"] == "event")
        assert event["span"] == job["id"]

    def test_timestamps_rebase_into_parent_timeline(self):
        parent = Tracer(enabled=True)
        with parent.span("pool") as pool:
            parent.adopt(self._worker(), rebase_us=pool.start_us)
        job = span_by_name(parent, "sim-job")
        assert job["start_us"] >= pool.start_us

    def test_disabled_parent_adopts_nothing(self):
        records = self._worker()
        NULL_TRACER.adopt(records)
        assert NULL_TRACER.records == []


class TestStreaming:
    def test_records_stream_as_they_close(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer(enabled=True, stream_path=path)
        with tracer.span("work"):
            pass
        on_disk = read_event_stream(path)
        assert [r["kind"] for r in on_disk] == ["segment-start", "span"]
        assert on_disk == tracer.records

    def test_resumed_stream_appends_a_new_segment(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        first = Tracer(enabled=True, stream_path=path)
        with first.span("work"):
            pass
        first.close()
        second = Tracer(enabled=True, stream_path=path)
        assert second.segment == 1
        with second.span("work"):
            pass
        second.close()
        segments = [
            r["segment"] for r in read_event_stream(path)
            if r["kind"] == "segment-start"
        ]
        assert segments == [0, 1]

    def test_torn_tail_is_dropped_on_read(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer(enabled=True, stream_path=path)
        with tracer.span("work"):
            pass
        tracer.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "span", "tru')  # the kill point
        records = read_event_stream(path)
        # segment-start + the finished span + the segment-end seal
        assert len(records) == 3
        assert records[-1]["kind"] == "segment-end"

    def test_unwritable_stream_degrades_to_memory(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("not a directory")
        with pytest.warns(RuntimeWarning, match="unusable"):
            tracer = Tracer(
                enabled=True,
                stream_path=str(blocked / "events.jsonl"),
            )
        with tracer.span("work"):
            pass
        assert span_by_name(tracer, "work") is not None

    def test_stream_lines_are_sorted_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        tracer = Tracer(enabled=True, stream_path=path)
        with tracer.span("work", z=1, a=2):
            pass
        tracer.close()
        with open(path) as handle:
            for line in handle:
                parsed = json.loads(line)
                assert line == json.dumps(parsed, sort_keys=True) + "\n"

    def test_directory_is_created_on_demand(self, tmp_path):
        path = str(tmp_path / "deep" / "down" / "events.jsonl")
        tracer = Tracer(enabled=True, stream_path=path)
        tracer.close()
        assert os.path.exists(path)
