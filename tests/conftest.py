"""Shared fixtures: small, session-scoped datasets so tests stay fast.

Simulation-heavy fixtures are session-scoped and deliberately tiny (short
traces, a workload subset, two frequencies); unit tests for the statistical
and component layers construct their own inputs.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.validation import ValidationDataset, collect_validation_dataset
from repro.sim.cpu import SimResult, simulate
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import (
    gem5_ex5_big,
    gem5_ex5_big_fixed_bp,
    gem5_ex5_little,
    hardware_a7,
    hardware_a15,
)
from repro.sim.platform import HardwarePlatform
from repro.workloads.suites import validation_workloads, workload_by_name
from repro.workloads.trace import SyntheticTrace, compile_trace

TRACE_INSTRUCTIONS = 12_000
SMALL_FREQS = (600e6, 1000e6)

#: A diverse 12-workload subset: loop-dominated, branchy, memory-bound,
#: FP-heavy, multi-threaded — enough texture for the statistical stages.
SMALL_WORKLOADS = (
    "par-basicmath-rad2deg",
    "mi-bitcount",
    "mi-qsort",
    "mi-typeset",
    "mi-sha",
    "mi-fft",
    "dhrystone",
    "whetstone",
    "parsec-canneal-1",
    "parsec-canneal-4",
    "parsec-blackscholes-1",
    "parsec-streamcluster-4",
    "lm-bw-mem-wr",
)


@pytest.fixture(scope="session")
def small_profiles():
    return tuple(workload_by_name(name) for name in SMALL_WORKLOADS)


@pytest.fixture(scope="session")
def rad2deg_trace() -> SyntheticTrace:
    return compile_trace(workload_by_name("par-basicmath-rad2deg"), TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def qsort_trace() -> SyntheticTrace:
    return compile_trace(workload_by_name("mi-qsort"), TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def canneal_trace() -> SyntheticTrace:
    return compile_trace(workload_by_name("parsec-canneal-1"), TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def hw_a15_result(qsort_trace) -> SimResult:
    return simulate(qsort_trace, hardware_a15())


@pytest.fixture(scope="session")
def gem5_a15_result(qsort_trace) -> SimResult:
    return simulate(qsort_trace, gem5_ex5_big())


@pytest.fixture(scope="session")
def platform_a15() -> HardwarePlatform:
    return HardwarePlatform("A15", trace_instructions=TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def platform_a7() -> HardwarePlatform:
    return HardwarePlatform("A7", trace_instructions=TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def gem5_sim_a15() -> Gem5Simulation:
    return Gem5Simulation(gem5_ex5_big(), trace_instructions=TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def small_dataset(platform_a15, gem5_sim_a15, small_profiles) -> ValidationDataset:
    return collect_validation_dataset(
        platform_a15, gem5_sim_a15, small_profiles, SMALL_FREQS
    )


@pytest.fixture(scope="session")
def small_gemstone(small_profiles) -> GemStone:
    """A full GemStone run on the small workload subset (A15, buggy model)."""
    config = GemStoneConfig(
        core="A15",
        workloads=small_profiles,
        power_workloads=small_profiles,
        frequencies=SMALL_FREQS,
        analysis_freq_hz=1000e6,
        trace_instructions=TRACE_INSTRUCTIONS,
        n_workload_clusters=6,
        power_model_terms=5,
    )
    return GemStone(config)
