"""Tests for the ARMv7 PMU event catalog."""

import pytest

from repro.events.armv7_pmu import (
    PMU_EVENTS,
    EventCategory,
    PmuEvent,
    event_by_mnemonic,
    event_name,
    events_for_core,
    mnemonics,
)


class TestCatalogContents:
    def test_architectural_events_present(self):
        for number in (0x01, 0x02, 0x08, 0x10, 0x11, 0x12, 0x15, 0x16, 0x1B):
            assert number in PMU_EVENTS

    def test_paper_key_events_present(self):
        # The events named throughout the paper's analysis.
        for number in (0x43, 0x6C, 0x6D, 0x7E, 0x73, 0x75, 0x76, 0x78):
            assert number in PMU_EVENTS

    def test_inst_retired_is_0x08(self):
        assert PMU_EVENTS[0x08].mnemonic == "INST_RETIRED"

    def test_cpu_cycles_is_0x11(self):
        assert PMU_EVENTS[0x11].mnemonic == "CPU_CYCLES"

    def test_branch_mispredict_is_0x10(self):
        assert PMU_EVENTS[0x10].mnemonic == "BR_MIS_PRED"

    def test_mnemonics_unique(self):
        names = [e.mnemonic for e in PMU_EVENTS.values()]
        assert len(names) == len(set(names))

    def test_numbers_match_keys(self):
        for number, event in PMU_EVENTS.items():
            assert event.number == number

    def test_barrier_events_are_sync_category(self):
        assert PMU_EVENTS[0x7E].category == EventCategory.SYNC
        assert PMU_EVENTS[0x6C].category == EventCategory.SYNC

    def test_speculative_flagging(self):
        assert PMU_EVENTS[0x1B].speculative
        assert PMU_EVENTS[0x76].speculative
        assert not PMU_EVENTS[0x08].speculative

    def test_catalog_covers_at_least_60_events(self):
        # The paper captures 68; the catalog must be in that league.
        assert len(PMU_EVENTS) >= 60


class TestLookups:
    def test_event_by_mnemonic(self):
        assert event_by_mnemonic("INST_RETIRED").number == 0x08

    def test_event_by_mnemonic_unknown(self):
        with pytest.raises(KeyError):
            event_by_mnemonic("NOT_AN_EVENT")

    def test_event_name_known(self):
        assert event_name(0x11) == "0x11 CPU_CYCLES"

    def test_event_name_unknown_number(self):
        assert event_name(0xEE) == "0xEE"

    def test_mnemonics_order_preserved(self):
        assert mnemonics([0x11, 0x08]) == ["CPU_CYCLES", "INST_RETIRED"]

    def test_hex_id_format(self):
        assert PMU_EVENTS[0x08].hex_id == "0x08"
        assert PMU_EVENTS[0x7E].hex_id == "0x7E"


class TestPerCoreAvailability:
    def test_a15_has_implementation_defined_events(self):
        numbers = {e.number for e in events_for_core("A15")}
        assert 0x43 in numbers
        assert 0x7E in numbers

    def test_a7_lacks_implementation_defined_events(self):
        numbers = {e.number for e in events_for_core("A7")}
        assert 0x43 not in numbers
        assert 0x6C not in numbers
        assert 0x08 in numbers

    def test_a7_subset_of_a15(self):
        a7 = {e.number for e in events_for_core("A7")}
        a15 = {e.number for e in events_for_core("A15")}
        assert a7 <= a15

    def test_events_sorted_by_number(self):
        events = events_for_core("A15")
        numbers = [e.number for e in events]
        assert numbers == sorted(numbers)

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            events_for_core("M4")
