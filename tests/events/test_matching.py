"""Tests for the gem5 <-> PMC event matching equations."""

import pytest

from repro.events.matching import (
    UNAVAILABLE_IN_GEM5,
    UNRELIABLE_IN_GEM5,
    EventMatch,
    MatchQuality,
    default_event_matches,
)


@pytest.fixture
def matches():
    return default_event_matches()


class TestEvaluate:
    def test_single_term(self):
        match = EventMatch(0x08, ((1.0, "commit.committedInsts"),))
        assert match.evaluate({"commit.committedInsts": 100.0}) == 100.0

    def test_sum_of_terms(self):
        match = EventMatch(
            0x19, ((1.0, "mem_ctrls.readReqs"), (1.0, "mem_ctrls.writeReqs"))
        )
        stats = {"mem_ctrls.readReqs": 30.0, "mem_ctrls.writeReqs": 12.0}
        assert match.evaluate(stats) == 42.0

    def test_difference_of_terms(self):
        match = EventMatch(0x07, ((1.0, "commit.refs"), (-1.0, "commit.loads")))
        assert match.evaluate({"commit.refs": 50.0, "commit.loads": 30.0}) == 20.0

    def test_missing_stat_raises(self):
        match = EventMatch(0x08, ((1.0, "commit.committedInsts"),))
        with pytest.raises(KeyError):
            match.evaluate({})


class TestDescribe:
    def test_simple_equation(self):
        match = EventMatch(0x08, ((1.0, "commit.committedInsts"),))
        assert match.describe() == "0x08 INST_RETIRED = commit.committedInsts"

    def test_mnemonic_resolution(self):
        match = EventMatch(0x10, ((1.0, "branchPred.condIncorrect"),))
        assert match.mnemonic == "BR_MIS_PRED"


class TestDefaultTable:
    def test_core_events_matched(self, matches):
        for event in (0x08, 0x11, 0x10, 0x12, 0x16, 0x1B, 0x43, 0x02):
            assert event in matches

    def test_instructions_match_is_exact(self, matches):
        assert matches[0x08].quality == MatchQuality.EXACT

    def test_itlb_match_is_approximate(self, matches):
        # 64-entry model vs 32-entry hardware: explicitly approximate.
        assert matches[0x02].quality == MatchQuality.APPROXIMATE

    def test_vfp_match_is_misclassified(self, matches):
        assert matches[0x75].quality == MatchQuality.MISCLASSIFIED

    def test_writeback_match_flagged(self, matches):
        # The paper measured >1000% MPE on 0x15.
        assert matches[0x15].quality == MatchQuality.MISCLASSIFIED

    def test_bus_access_sums_dram_requests(self, matches):
        stats = {"mem_ctrls.readReqs": 5.0, "mem_ctrls.writeReqs": 3.0}
        assert matches[0x19].evaluate(stats) == 8.0

    def test_all_keys_match_event_numbers(self, matches):
        for number, match in matches.items():
            assert match.pmu_event == number


class TestRestraintPools:
    def test_unaligned_events_unavailable(self):
        # Section V: unaligned accesses are not readily available in gem5.
        assert 0x0F in UNAVAILABLE_IN_GEM5
        assert 0x6A in UNAVAILABLE_IN_GEM5

    def test_exclusives_unavailable(self):
        assert 0x6C in UNAVAILABLE_IN_GEM5

    def test_writebacks_unreliable(self):
        assert 0x15 in UNRELIABLE_IN_GEM5

    def test_vfp_unreliable(self):
        assert 0x75 in UNRELIABLE_IN_GEM5

    def test_0x43_stays_available(self):
        # The paper's final model includes 0x43 despite its over-count.
        assert 0x43 not in UNRELIABLE_IN_GEM5
        assert 0x43 not in UNAVAILABLE_IN_GEM5

    def test_pools_disjoint(self):
        assert not (UNAVAILABLE_IN_GEM5 & UNRELIABLE_IN_GEM5)
