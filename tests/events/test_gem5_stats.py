"""Tests for the gem5 statistics namespace."""

import pytest

from repro.events.gem5_stats import (
    GEM5_STAT_GROUPS,
    GLOBAL_STATS,
    RATE_LIKE_STATS,
    Gem5StatCatalog,
)


@pytest.fixture
def catalog():
    return Gem5StatCatalog()


class TestGroups:
    def test_paper_components_present(self):
        # Section IV-C names these component groups explicitly.
        for group in ("itb", "itb_walker_cache", "dtb", "branchPred",
                      "fetch", "iew", "commit", "icache", "dcache", "l2"):
            assert group in GEM5_STAT_GROUPS

    def test_walker_cache_has_read_req_stats(self):
        assert "ReadReq_accesses" in GEM5_STAT_GROUPS["itb_walker_cache"]
        assert "ReadReq_hits" in GEM5_STAT_GROUPS["itb_walker_cache"]

    def test_paper_cited_stats_exist(self):
        # Stats the paper cites by name in Sections IV-C and IV-D.
        cited = [
            ("iew", "exec_nop"),
            ("fetch", "TlbCycles"),
            ("iew", "predictedTakenIncorrect"),
            ("fetch", "PendingTrapStallCycles"),
            ("branchPred", "RASInCorrect"),
            ("commit", "branchMispredicts"),
            ("fetch", "predictedBranches"),
            ("branchPred", "usedRAS"),
            ("commit", "commitNonSpecStalls"),
            ("branchPred", "indirectMisses"),
            ("dtb", "prefetch_faults"),
            ("dcache", "UncacheableLatency_cpu_data"),
        ]
        for group, stat in cited:
            assert stat in GEM5_STAT_GROUPS[group], (group, stat)

    def test_no_duplicate_stats_within_group(self):
        for group, stats in GEM5_STAT_GROUPS.items():
            assert len(stats) == len(set(stats)), group


class TestQualify:
    def test_cpu_stat(self, catalog):
        assert catalog.qualify("commit.committedInsts") == (
            "system.cpu.commit.committedInsts"
        )

    def test_l2_hangs_off_system(self, catalog):
        assert catalog.qualify("l2.overall_misses") == "system.l2.overall_misses"

    def test_mem_ctrls_hangs_off_system(self, catalog):
        assert catalog.qualify("mem_ctrls.readReqs") == "system.mem_ctrls.readReqs"

    def test_global_stat_unchanged(self, catalog):
        assert catalog.qualify("sim_seconds") == "sim_seconds"

    def test_roundtrip(self, catalog):
        for name in catalog.all_short_names():
            assert catalog.shorten(catalog.qualify(name)) == name

    def test_custom_prefixes(self):
        cat = Gem5StatCatalog(system="sys", cpu="cpu0")
        assert cat.qualify("itb.misses") == "sys.cpu0.itb.misses"


class TestGroupOf:
    def test_group_of_short_name(self, catalog):
        assert catalog.group_of("itb_walker_cache.ReadReq_hits") == "itb_walker_cache"

    def test_group_of_full_name(self, catalog):
        assert catalog.group_of("system.cpu.branchPred.condIncorrect") == "branchPred"

    def test_group_of_global(self, catalog):
        assert catalog.group_of("sim_seconds") == "sim"


class TestRateLike:
    def test_cpi_is_rate_like(self, catalog):
        assert catalog.is_rate_like("cpu.cpi")

    def test_counts_are_not_rate_like(self, catalog):
        assert not catalog.is_rate_like("commit.committedInsts")

    def test_rate_like_names_exist_in_groups(self):
        all_names = set()
        for group, stats in GEM5_STAT_GROUPS.items():
            all_names.update(f"{group}.{s}" for s in stats)
        assert RATE_LIKE_STATS <= all_names


class TestAllShortNames:
    def test_includes_globals(self, catalog):
        names = catalog.all_short_names()
        for g in GLOBAL_STATS:
            assert g in names

    def test_count_is_substantial(self, catalog):
        # The emission layer produces every one of these.
        assert len(catalog.all_short_names()) > 150

    def test_stable_order(self, catalog):
        assert catalog.all_short_names() == catalog.all_short_names()
