"""Tests for the extended CLI subcommands (figures, export, runtime power)."""

import json

import pytest

from repro.cli import main

ARGS = ["--instructions", "4000"]


class TestFigureCommand:
    @pytest.mark.parametrize("figure", ["fig3", "fig5", "characterisation"])
    def test_figures_render(self, figure, capsys):
        assert main(["figure", figure] + ARGS) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 10

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"] + ARGS)


class TestExportCommand:
    def test_validation_csv(self, capsys):
        assert main(["export", "validation-csv"] + ARGS) == 0
        out = capsys.readouterr().out
        assert out.startswith("workload,suite,threads")
        assert "par-basicmath-rad2deg" in out

    def test_power_model_requires_out(self):
        with pytest.raises(SystemExit):
            main(["export", "power-model"] + ARGS)

    def test_power_model_written(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        assert main(["export", "power-model", "--out", str(path)] + ARGS) == 0
        payload = json.loads(path.read_text())
        assert payload["kind"] == "gemstone-power-model"
        assert payload["core"] == "A15"


class TestRuntimePowerCommand:
    def test_trace_printed(self, capsys):
        assert main(
            ["runtime-power", "--workload", "mi-sha", "--windows", "4"] + ARGS
        ) == 0
        out = capsys.readouterr().out
        assert "Run-time power of mi-sha" in out
        assert "mean power" in out
        # header + separator + four window rows + summary
        table_lines = [l for l in out.splitlines() if l.strip()]
        assert len(table_lines) >= 7


class TestCacheDirOption:
    def test_headline_with_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["headline", "--cache-dir", cache] + ARGS) == 0
        first = capsys.readouterr().out
        assert main(["headline", "--cache-dir", cache] + ARGS) == 0
        second = capsys.readouterr().out
        assert first == second
        import os
        assert os.listdir(cache)
