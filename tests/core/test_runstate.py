"""Unit tests for the crash-safe run layer (repro.core.runstate).

Covers manifest fingerprinting (what participates, what is excluded),
journal append/verify/torn-tail semantics, checkpoint round trips,
corruption quarantine, stale-directory quarantine, inert degradation on
unusable directories, signal handling, and the shared atomic-write helper.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal

import pytest

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.core.pipeline import GemStoneConfig
from repro.core.runstate import PHASES, RunManifest, RunState


def _manifest(tag: str = "a") -> RunManifest:
    return RunManifest(fingerprint=f"fp-{tag}", description={"tag": tag})


class TestAtomicIo:
    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(str(path), "hello")
        assert path.read_text() == "hello"

    def test_overwrite_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "artifact.bin"
        atomic_write_bytes(str(path), b"one")
        atomic_write_bytes(str(path), b"two")
        assert path.read_bytes() == b"two"
        assert os.listdir(tmp_path) == ["artifact.bin"]

    def test_failed_write_cleans_up_and_raises(self, tmp_path):
        missing = tmp_path / "nope" / "artifact.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(str(missing), b"x")
        assert not missing.exists()


class TestRunManifest:
    def test_fingerprint_is_stable(self):
        config = GemStoneConfig(trace_instructions=9000)
        assert (
            RunManifest.from_config(config).fingerprint
            == RunManifest.from_config(config).fingerprint
        )

    def test_result_affecting_fields_change_the_fingerprint(self):
        base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
        changed = RunManifest.from_config(
            GemStoneConfig(trace_instructions=9001)
        )
        assert base.fingerprint != changed.fingerprint

    def test_execution_knobs_are_excluded(self):
        base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
        tweaked = RunManifest.from_config(
            GemStoneConfig(
                trace_instructions=9000,
                jobs=4,
                cache_dir="/tmp/some-cache",
                checkpoint_dir="/tmp/some-ckpt",
                resume=True,
            )
        )
        assert base.fingerprint == tweaked.fingerprint


class TestJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        state.journal("custom", detail="x")
        records = state.read_journal()
        assert [r["event"] for r in records] == ["run-start", "custom"]
        assert [r["seq"] for r in records] == [0, 1]

    def test_torn_tail_line_is_dropped(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        state.journal("first")
        with open(state.journal_path, "a") as handle:
            handle.write('{"seq": 2, "event": "torn"')  # crash mid-append
        records = state.read_journal()
        assert [r["event"] for r in records] == ["run-start", "first"]
        assert state.telemetry.journal_records_dropped == 1

    def test_corrupt_record_invalidates_the_suffix(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        state.journal("first")
        lines = open(state.journal_path).readlines()
        tampered = lines[0].replace("run-start", "run-stxrt")
        with open(state.journal_path, "w") as handle:
            handle.writelines([tampered, *lines[1:]])
        assert state.read_journal() == []

    def test_sequence_continues_across_instances(self, tmp_path):
        directory = str(tmp_path / "run")
        RunState(directory, _manifest()).journal("first")
        second = RunState(directory, _manifest(), resume=True)
        records = second.read_journal()
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[-1]["event"] == "run-start"


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path / "run")
        writer = RunState(directory, _manifest())
        assert writer.checkpoint("dataset", {"answer": 42})
        reader = RunState(directory, _manifest(), resume=True)
        assert reader.restore("dataset") == {"answer": 42}
        assert reader.telemetry.restored == 1

    def test_without_resume_checkpoints_are_never_read(self, tmp_path):
        directory = str(tmp_path / "run")
        RunState(directory, _manifest()).checkpoint("dataset", 1)
        fresh = RunState(directory, _manifest(), resume=False)
        assert fresh.restore("dataset") is None
        assert fresh.telemetry.restored == 0

    def test_missing_phase_restores_none(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest(), resume=True)
        assert state.restore("dvfs") is None
        assert state.telemetry.quarantined == 0

    def test_corrupt_checkpoint_is_quarantined(self, tmp_path):
        directory = str(tmp_path / "run")
        writer = RunState(directory, _manifest())
        writer.checkpoint("dataset", {"answer": 42})
        path = writer.checkpoint_path("dataset")
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        atomic_write_bytes(path, bytes(blob))
        reader = RunState(directory, _manifest(), resume=True)
        assert reader.restore("dataset") is None
        assert reader.telemetry.quarantined == 1
        assert not os.path.exists(path)
        assert os.path.exists(
            os.path.join(reader.quarantine_dir, "dataset.ckpt")
        )
        events = [r["event"] for r in reader.read_journal()]
        assert "quarantined" in events

    def test_truncated_checkpoint_is_quarantined(self, tmp_path):
        directory = str(tmp_path / "run")
        writer = RunState(directory, _manifest())
        writer.checkpoint("dataset", list(range(100)))
        path = writer.checkpoint_path("dataset")
        blob = open(path, "rb").read()
        atomic_write_bytes(path, blob[: len(blob) // 2])
        reader = RunState(directory, _manifest(), resume=True)
        assert reader.restore("dataset") is None
        assert reader.telemetry.quarantined == 1

    def test_completed_phases_are_in_pipeline_order(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        state.checkpoint("dvfs", 1)
        state.checkpoint("dataset", 2)
        assert state.completed_phases() == ["dataset", "dvfs"]
        assert set(state.completed_phases()) <= set(PHASES)


class TestPhaseKeys:
    def test_unknown_phase_falls_back_to_the_fingerprint(self):
        manifest = _manifest()
        assert manifest.phase_key("not-a-phase") == manifest.fingerprint

    def test_bare_manifest_keeps_all_or_nothing_invalidation(self):
        # Hand-built manifests (no config description) keep the original
        # semantics: every phase key follows the fingerprint, so a
        # fingerprint change still invalidates every phase.
        a, b = _manifest("a"), _manifest("b")
        for phase in PHASES:
            assert a.phase_key(phase) != b.phase_key(phase)
        # Phases with description fields fall back to the fingerprint
        # itself; derived phases hash their parents' fallbacks.
        assert a.phase_key("dataset") == a.fingerprint

    def test_phase_keys_are_stable_and_ignore_execution_knobs(self):
        base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
        again = RunManifest.from_config(
            GemStoneConfig(trace_instructions=9000, jobs=4, resume=True)
        )
        for phase in PHASES:
            assert base.phase_key(phase) == again.phase_key(phase)
            assert base.phase_key(phase) != base.fingerprint

    def test_clustering_change_invalidates_only_its_subgraph(self):
        base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
        changed = RunManifest.from_config(
            GemStoneConfig(trace_instructions=9000, n_workload_clusters=3)
        )
        stale = {
            p for p in PHASES
            if base.phase_key(p) != changed.phase_key(p)
        }
        assert stale == {
            "workload-clusters", "event-comparison", "power-energy",
            "dvfs", "report",
        }

    def test_trace_length_change_invalidates_everything(self):
        base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
        changed = RunManifest.from_config(
            GemStoneConfig(trace_instructions=9001)
        )
        for phase in PHASES:
            assert base.phase_key(phase) != changed.phase_key(phase)

    def test_runstate_splices_shared_phases(self, tmp_path):
        directory = str(tmp_path / "run")
        old = RunState(
            directory,
            RunManifest.from_config(GemStoneConfig(trace_instructions=9000)),
        )
        old.checkpoint("dataset", {"rows": 1})
        old.checkpoint("workload-clusters", {"clusters": 2})
        fresh = RunState(
            directory,
            RunManifest.from_config(
                GemStoneConfig(trace_instructions=9000, n_workload_clusters=3)
            ),
            resume=True,
        )
        assert fresh.restore("dataset") == {"rows": 1}
        assert fresh.restore("workload-clusters") is None
        assert fresh.telemetry.spliced == 1
        quarantined = os.listdir(fresh.quarantine_dir)
        assert "workload-clusters.ckpt" in quarantined
        assert "dataset.ckpt" not in quarantined
        events = [r["event"] for r in fresh.read_journal()]
        assert "phases-spliced" in events


class TestStaleDirectory:
    def test_mismatched_fingerprint_quarantines_everything(self, tmp_path):
        directory = str(tmp_path / "run")
        old = RunState(directory, _manifest("old"))
        old.checkpoint("dataset", 1)
        fresh = RunState(directory, _manifest("new"), resume=True)
        assert fresh.restore("dataset") is None
        assert fresh.telemetry.restored == 0
        quarantined = sorted(os.listdir(fresh.quarantine_dir))
        assert quarantined == ["dataset.ckpt", "journal.jsonl", "manifest.json"]
        manifest = json.load(open(fresh.manifest_path))
        assert manifest["fingerprint"] == "fp-new"

    def test_corrupt_manifest_counts_as_stale(self, tmp_path):
        directory = str(tmp_path / "run")
        old = RunState(directory, _manifest())
        old.checkpoint("dataset", 1)
        atomic_write_text(old.manifest_path, "{not json")
        fresh = RunState(directory, _manifest(), resume=True)
        assert fresh.restore("dataset") is None
        assert "dataset.ckpt" in os.listdir(fresh.quarantine_dir)


class TestDegradation:
    def test_unusable_directory_degrades_to_inert(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should go")
        with pytest.warns(RuntimeWarning, match="continuing without"):
            state = RunState(str(blocker / "run"), _manifest())
        assert state.inert
        assert not state.checkpoint("dataset", 1)
        assert state.restore("dataset") is None
        state.journal("ignored")  # must not raise
        assert state.read_journal() == []


class TestInterruptible:
    def test_sigterm_exits_resumable(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        with pytest.raises(SystemExit) as excinfo:
            with state.interruptible():
                os.kill(os.getpid(), signal.SIGTERM)
        assert excinfo.value.code == 128 + signal.SIGTERM
        records = state.read_journal()
        assert records[-1]["event"] == "interrupted"
        assert records[-1]["signal"] == int(signal.SIGTERM)

    def test_handlers_are_restored_on_exit(self, tmp_path):
        state = RunState(str(tmp_path / "run"), _manifest())
        before = signal.getsignal(signal.SIGTERM)
        with state.interruptible():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_inert_state_is_a_no_op(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("x")
        with pytest.warns(RuntimeWarning):
            state = RunState(str(blocker / "run"), _manifest())
        before = signal.getsignal(signal.SIGTERM)
        with state.interruptible():
            assert signal.getsignal(signal.SIGTERM) is before


def test_fault_plan_participates_in_the_fingerprint():
    from repro.sim.faults import FaultPlan

    base = RunManifest.from_config(GemStoneConfig(trace_instructions=9000))
    faulty = RunManifest.from_config(
        GemStoneConfig(
            trace_instructions=9000, faults=FaultPlan.crash_job(0)
        )
    )
    assert base.fingerprint != faulty.fingerprint
