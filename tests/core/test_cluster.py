"""Tests for the from-scratch hierarchical clustering."""

import numpy as np
import pytest

from repro.core.stats.cluster import (
    Dendrogram,
    hierarchical_clustering,
    linkage_average,
)


def blobs(seed=0):
    """Three well-separated 2-D blobs of 5 points each."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.concatenate(
        [center + rng.normal(0, 0.5, size=(5, 2)) for center in centers]
    )
    names = [f"p{i}" for i in range(15)]
    return points, names


class TestLinkage:
    def test_merge_count(self):
        distance = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        dendrogram = linkage_average(distance)
        assert dendrogram.n_leaves == 3
        assert len(dendrogram.merges) == 2

    def test_closest_pair_merges_first(self):
        distance = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        first = linkage_average(distance).merges[0]
        assert {first.a, first.b} == {0, 1}
        assert first.height == 1.0

    def test_average_linkage_height(self):
        distance = np.array([[0.0, 1.0, 4.0], [1.0, 0.0, 6.0], [4.0, 6.0, 0.0]])
        second = linkage_average(distance).merges[1]
        assert second.height == pytest.approx(5.0)  # mean of 4 and 6

    def test_heights_monotone_for_metric_data(self):
        points, names = blobs()
        diff = points[:, None, :] - points[None, :, :]
        distance = np.sqrt((diff**2).sum(axis=2))
        heights = [m.height for m in linkage_average(distance).merges]
        assert heights == sorted(heights)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            linkage_average(np.ones((2, 3)))


class TestCut:
    def test_cut_recovers_blobs(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3,
                                         standardise=False)
        assert result.n_clusters == 3
        # Each blob of five points lands in one cluster.
        for start in (0, 5, 10):
            labels = {result.labels[i] for i in range(start, start + 5)}
            assert len(labels) == 1

    def test_cut_one_cluster(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=1)
        assert set(result.labels) == {1}

    def test_cut_n_equals_items(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=15)
        assert result.n_clusters == 15

    def test_invalid_cut(self):
        dendrogram = Dendrogram(3, ())
        with pytest.raises(ValueError):
            dendrogram.cut(0)

    def test_cut_height(self):
        points, names = blobs()
        diff = points[:, None, :] - points[None, :, :]
        distance = np.sqrt((diff**2).sum(axis=2))
        dendrogram = linkage_average(distance)
        labels = dendrogram.cut_height(5.0)  # inside-blob merges only
        assert len(set(labels)) == 3


class TestClusterResult:
    def test_labels_numbered_by_first_appearance(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3,
                                         standardise=False)
        assert result.labels[0] == 1
        seen = []
        for label in result.labels:
            if label not in seen:
                seen.append(label)
        assert seen == sorted(seen)

    def test_members_partition_items(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3)
        all_members = [m for c in range(1, 4) for m in result.members(c)]
        assert sorted(all_members) == sorted(names)

    def test_cluster_of(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3)
        assert result.cluster_of("p0") == result.labels[0]
        with pytest.raises(KeyError):
            result.cluster_of("nope")

    def test_sizes(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3,
                                         standardise=False)
        assert sorted(result.sizes().values()) == [5, 5, 5]

    def test_as_dict(self):
        points, names = blobs()
        result = hierarchical_clustering(points, names, n_clusters=3)
        assert set(result.as_dict()) == {1, 2, 3}


class TestCorrelationMetric:
    def test_correlated_series_cluster_together(self):
        rng = np.random.default_rng(2)
        base_a = rng.normal(size=40)
        base_b = rng.normal(size=40)
        data = np.vstack([
            base_a, base_a * 3 + 0.01 * rng.normal(size=40),
            base_b, 2 * base_b + 0.01 * rng.normal(size=40),
        ])
        result = hierarchical_clustering(
            data, ["a1", "a2", "b1", "b2"], n_clusters=2, metric="correlation"
        )
        assert result.cluster_of("a1") == result.cluster_of("a2")
        assert result.cluster_of("a1") != result.cluster_of("b1")

    def test_anticorrelated_far_apart(self):
        # distance 1 - r: anti-correlated pairs are the farthest.
        rng = np.random.default_rng(4)
        base = rng.normal(size=40)
        data = np.vstack([base, -base, base + 0.01 * rng.normal(size=40)])
        result = hierarchical_clustering(
            data, ["x", "anti", "near"], n_clusters=2, metric="correlation"
        )
        assert result.cluster_of("x") == result.cluster_of("near")
        assert result.cluster_of("anti") != result.cluster_of("x")

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            hierarchical_clustering(np.ones((3, 2)), ["a", "b", "c"], 2,
                                    metric="cosine")


class TestInputValidation:
    def test_name_count_mismatch(self):
        with pytest.raises(ValueError):
            hierarchical_clustering(np.ones((3, 2)), ["a", "b"], 2)

    def test_1d_data_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_clustering(np.ones(3), ["a", "b", "c"], 2)


class TestTrivialClustering:
    def test_single_item_is_one_cluster(self):
        from repro.core.stats.cluster import trivial_clustering

        result = trivial_clustering(["only"])
        assert result.item_names == ("only",)
        assert result.labels == (1,)
        assert result.dendrogram.merges == ()

    def test_empty_input_is_tolerated(self):
        from repro.core.stats.cluster import trivial_clustering

        result = trivial_clustering([])
        assert result.item_names == ()
        assert result.labels == ()
