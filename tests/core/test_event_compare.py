"""Tests for the matched-event comparison (Fig. 6)."""

import pytest

from repro.core.error_id import cluster_workloads
from repro.core.event_compare import compare_events

from tests.conftest import SMALL_FREQS

FREQ = SMALL_FREQS[1]


@pytest.fixture(scope="module")
def comparison(small_dataset):
    clusters = cluster_workloads(small_dataset, FREQ, n_clusters=5)
    return compare_events(small_dataset, FREQ, clusters)


class TestRatios:
    def test_instructions_ratio_near_one(self, comparison):
        """'a negligible difference in the total number of instructions
        committed (0x08)'."""
        assert comparison.ratio(0x08) == pytest.approx(1.0, abs=0.05)

    def test_itlb_misses_underestimated(self, comparison):
        """Fig. 6: significantly fewer ITLB refills in the model (0.06x)."""
        assert comparison.ratio(0x02) < 0.5

    def test_mispredicts_massively_overestimated(self, comparison):
        """Fig. 6: 21x mean branch mispredictions."""
        assert comparison.ratio(0x10) > 5.0

    def test_predicted_branches_close(self, comparison):
        """'The model has 1.1x predicted branches ... relatively
        consistent between clusters'."""
        assert 0.8 < comparison.ratio(0x12) < 1.6

    def test_l1i_accesses_overestimated(self, comparison):
        """'over 2x more L1I accesses in the model' (per-instr counting)."""
        assert comparison.ratio(0x14) > 1.5

    def test_writebacks_overestimated(self, comparison):
        """Fig. 6: 19x L1D_WB (no write-streaming in the model); the
        streaming-store workload drives the per-workload maximum."""
        assert max(comparison.ratios[0x15].per_workload.values()) > 1.5

    def test_vfp_misclassified_to_near_zero(self, comparison):
        """Section V: VFP counted as SIMD -> 0x75 ratio collapses."""
        assert comparison.ratio(0x75) < 0.2

    def test_ratio_unknown_event(self, comparison):
        with pytest.raises(KeyError):
            comparison.ratio(0xEE)

    def test_cluster_breakdown_present(self, comparison):
        ratio = comparison.ratios[0x10]
        assert ratio.cluster_ratios
        assert ratio.per_workload

    def test_mispredict_ratio_workload_dependent(self, comparison):
        """Cluster 16's 1402x vs low single digits elsewhere."""
        values = list(comparison.ratios[0x10].per_workload.values())
        assert max(values) > 10 * min(values)

    def test_mean_excludes_extreme_cluster(self, comparison):
        assert comparison.excluded_cluster is not None


class TestBpAccuracy:
    def test_hw_much_better_than_model(self, comparison):
        hw, gem5 = comparison.mean_bp_accuracy()
        assert hw > 0.85
        assert gem5 < hw - 0.15

    def test_extreme_inversion(self, comparison):
        """The workload with the lowest model accuracy has near-perfect
        hardware accuracy (the paper's par-basicmath-rad2deg)."""
        row = comparison.extreme_bp_workload()
        assert row.gem5_accuracy < 0.3
        assert row.hw_accuracy > 0.95

    def test_row_per_workload(self, comparison, small_dataset):
        assert len(comparison.bp_accuracy) == len(small_dataset.workloads)


class TestValidationErrors:
    def test_mismatched_clustering_rejected(self, small_dataset):
        clusters = cluster_workloads(small_dataset, FREQ, n_clusters=5)
        import dataclasses
        broken = dataclasses.replace(
            clusters,
            clusters=dataclasses.replace(
                clusters.clusters, item_names=("x",) * len(small_dataset.workloads)
            ),
        )
        with pytest.raises(ValueError):
            compare_events(small_dataset, FREQ, broken)
