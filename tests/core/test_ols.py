"""Tests for the from-scratch OLS implementation."""

import numpy as np
import pytest

from repro.core.stats.ols import fit_ols, variance_inflation_factors


@pytest.fixture
def linear_data():
    rng = np.random.default_rng(7)
    x = rng.uniform(0, 10, size=(60, 2))
    y = 3.0 + 2.0 * x[:, 0] - 0.5 * x[:, 1] + rng.normal(0, 0.1, 60)
    return x, y


class TestCoefficients:
    def test_recovers_known_model(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y, names=("a", "b"))
        assert model.intercept == pytest.approx(3.0, abs=0.1)
        assert model.coefficient("a") == pytest.approx(2.0, abs=0.05)
        assert model.coefficient("b") == pytest.approx(-0.5, abs=0.05)

    def test_r2_high_for_clean_data(self, linear_data):
        x, y = linear_data
        assert fit_ols(x, y).r2 > 0.99

    def test_predict_matches_fit(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        residual = y - model.predict(x)
        assert float(np.abs(residual).mean()) < 0.2

    def test_predict_single_row(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        single = model.predict(x[0])
        assert single.shape == (1,)

    def test_unknown_coefficient_name(self, linear_data):
        x, y = linear_data
        with pytest.raises(KeyError):
            fit_ols(x, y, names=("a", "b")).coefficient("c")

    def test_extreme_scale_regressors(self):
        """The power-model regime: rates ~1e9 against an O(1) intercept."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0.5e9, 2e9, size=(50, 2))
        y = 0.4 + 3e-10 * x[:, 0] + 1e-9 * x[:, 1] + rng.normal(0, 1e-3, 50)
        model = fit_ols(x, y)
        assert model.intercept == pytest.approx(0.4, abs=0.02)
        assert model.coefficients[0] == pytest.approx(3e-10, rel=0.05)


class TestInference:
    def test_significant_term_low_p(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        assert model.p_values[1] < 1e-6

    def test_noise_term_high_p(self):
        rng = np.random.default_rng(5)
        x = np.column_stack([rng.uniform(0, 10, 80), rng.normal(size=80)])
        y = 1.0 + 2.0 * x[:, 0] + rng.normal(0, 1.0, 80)
        model = fit_ols(x, y, names=("signal", "noise"))
        assert model.p_values[2] > 0.05
        assert model.max_p_value() > 0.05

    def test_t_equals_beta_over_se(self, linear_data):
        x, y = linear_data
        model = fit_ols(x, y)
        expected = model.coefficients[0] / model.std_errors[1]
        assert model.t_values[1] == pytest.approx(expected)

    def test_summary_renders(self, linear_data):
        x, y = linear_data
        text = fit_ols(x, y, names=("a", "b")).summary()
        assert "R^2" in text and "(intercept)" in text and "a" in text


class TestWeighted:
    def test_weights_shift_fit_toward_heavy_points(self):
        x = np.array([[1.0], [2.0], [3.0], [4.0], [5.0], [6.0]])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 20.0])  # outlier at the end
        plain = fit_ols(x, y)
        down_weighted = fit_ols(
            x, y, weights=np.array([1.0] * 5 + [1e-6])
        )
        assert abs(down_weighted.coefficients[0] - 1.0) < abs(
            plain.coefficients[0] - 1.0
        )

    def test_relative_weighting_improves_small_value_fit(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(1, 100, size=(100, 1))
        y = 0.1 + 0.05 * x[:, 0]
        y *= 1 + rng.normal(0, 0.05, 100)  # multiplicative noise
        weighted = fit_ols(x, y, weights=1.0 / y)
        plain = fit_ols(x, y)
        def small_ape(model):
            mask = x[:, 0] < 10
            predicted = model.predict(x)
            return np.abs((y[mask] - predicted[mask]) / y[mask]).mean()
        assert small_ape(weighted) <= small_ape(plain) * 1.05

    def test_nonpositive_weights_rejected(self):
        x = np.ones((5, 1))
        with pytest.raises(ValueError):
            fit_ols(x, np.ones(5), weights=np.zeros(5))


class TestValidation:
    def test_too_few_observations_degrades(self):
        # Constant columns + n <= p + 1 used to raise; now the fit shrinks
        # to an intercept-only model and records what it dropped.
        result = fit_ols(np.ones((3, 3)), np.ones(3))
        assert result.names == ()
        assert result.intercept == pytest.approx(1.0)
        assert any("constant" in note for note in result.degraded)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_ols(np.ones((10, 2)), np.ones(9))

    def test_name_count_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            fit_ols(np.ones((10, 2)), np.ones(10), names=("only-one",))


class TestVif:
    def test_independent_regressors_vif_near_one(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(200, 3))
        assert variance_inflation_factors(x).max() < 1.2

    def test_collinear_regressors_high_vif(self):
        rng = np.random.default_rng(9)
        base = rng.normal(size=200)
        x = np.column_stack([base, base + rng.normal(0, 0.01, 200)])
        assert variance_inflation_factors(x).min() > 100

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            variance_inflation_factors(np.ones((10, 1)))


class TestDegradedDesigns:
    """Field-data hardening: singular/NaN designs degrade, never raise."""

    def test_all_nan_column_is_dropped_with_a_note(self, linear_data):
        x, y = linear_data
        x = np.column_stack([x, np.full(len(y), np.nan)])
        model = fit_ols(x, y, names=("a", "b", "bad"))
        assert model.names == ("a", "b")
        assert model.coefficient("a") == pytest.approx(2.0, abs=0.05)
        assert any("'bad'" in note and "finite" in note for note in model.degraded)

    def test_duplicate_column_keeps_the_earlier_one(self, linear_data):
        x, y = linear_data
        x = np.column_stack([x, x[:, 0]])
        model = fit_ols(x, y, names=("a", "b", "a_again"))
        assert model.names == ("a", "b")
        assert any(
            "collinear" in note and "'a_again'" in note
            for note in model.degraded
        )

    def test_rows_with_nan_observations_are_dropped(self, linear_data):
        x, y = linear_data
        y = y.copy()
        y[3] = np.nan
        model = fit_ols(x, y, names=("a", "b"))
        assert model.names == ("a", "b")
        assert model.coefficient("a") == pytest.approx(2.0, abs=0.05)
        assert any("observation" in note for note in model.degraded)

    def test_clean_designs_carry_no_notes_and_identical_numbers(
        self, linear_data
    ):
        x, y = linear_data
        model = fit_ols(x, y, names=("a", "b"))
        assert model.degraded == ()
        # Bit-identical to a from-scratch fit: hardening must not perturb
        # the historical numeric path for well-posed designs.
        again = fit_ols(x.copy(), y.copy(), names=("a", "b"))
        assert model.coefficients.tolist() == again.coefficients.tolist()
