"""A7-cluster pipeline tests (the ex5_LITTLE validation path)."""

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.workloads.suites import workload_by_name

from tests.conftest import SMALL_WORKLOADS

A7_FREQS = (600e6, 1000e6)


@pytest.fixture(scope="module")
def gs_a7_small():
    profiles = tuple(workload_by_name(n) for n in SMALL_WORKLOADS)
    return GemStone(
        GemStoneConfig(
            core="A7",
            workloads=profiles,
            power_workloads=profiles,
            frequencies=A7_FREQS,
            analysis_freq_hz=1000e6,
            trace_instructions=12_000,
            n_workload_clusters=5,
            power_model_terms=5,
        )
    )


class TestA7Pipeline:
    def test_uses_little_model(self, gs_a7_small):
        assert gs_a7_small.gem5.machine.name == "gem5-ex5-little"
        assert gs_a7_small.platform.machine.name == "hw-a7"

    def test_errors_much_smaller_than_a15(self, gs_a7_small, small_gemstone):
        """The A7 model is far more accurate (simple in-order CPU, no BP
        bug) — the paper's consistent finding."""
        a7_mape = gs_a7_small.dataset.time_mape(1000e6)
        a15_mape = small_gemstone.dataset.time_mape(1000e6)
        assert a7_mape < a15_mape / 2

    def test_a7_mpe_not_strongly_negative(self, gs_a7_small):
        """The A7 model tends to *underestimate* execution time."""
        assert gs_a7_small.dataset.time_mpe(1000e6) > -10.0

    def test_a7_power_model_quality(self, gs_a7_small):
        quality = gs_a7_small.power_model.quality
        assert quality.mape < 8.0
        assert quality.ser < 0.05  # sub-watt cluster, small residual

    def test_a7_power_model_events_are_a7_events(self, gs_a7_small):
        """A7 models cannot use A15 implementation-defined events."""
        from repro.events.armv7_pmu import events_for_core

        available = {e.number for e in events_for_core("A7")}
        for event in gs_a7_small.power_model.required_events():
            assert event in available

    def test_a7_bp_accuracy_comparable(self, gs_a7_small):
        """No BP bug in ex5_LITTLE: model accuracy tracks hardware."""
        hw_acc, gem5_acc = gs_a7_small.event_comparison.mean_bp_accuracy()
        assert abs(hw_acc - gem5_acc) < 0.08

    def test_a7_energy_error_moderate(self, gs_a7_small):
        comparison = gs_a7_small.power_energy
        assert comparison.energy_mape() < 35.0

    def test_a7_report_renders(self, gs_a7_small):
        report = gs_a7_small.report()
        assert "gem5-ex5-little vs hw-a7" in report
