"""Tests for the figure-level report renderers."""

import pytest

from repro.core.report import (
    render_dendrogram,
    render_dvfs_figure,
    render_event_ratio_table,
    render_pmc_correlation_figure,
    render_power_energy_figure,
    render_workload_characterisation,
    render_workload_mpe_figure,
)
from repro.core.stats.cluster import hierarchical_clustering

from tests.conftest import SMALL_FREQS


class TestDendrogram:
    @pytest.fixture
    def clustering(self):
        import numpy as np
        rng = np.random.default_rng(0)
        data = np.concatenate([
            rng.normal(0, 0.1, size=(3, 2)),
            rng.normal(5, 0.1, size=(3, 2)),
        ])
        names = [f"item{i}" for i in range(6)]
        return hierarchical_clustering(data, names, n_clusters=2,
                                       standardise=False)

    def test_every_leaf_appears(self, clustering):
        text = render_dendrogram(clustering.dendrogram, clustering.item_names)
        for name in clustering.item_names:
            assert name in text

    def test_merge_heights_shown(self, clustering):
        text = render_dendrogram(clustering.dendrogram, clustering.item_names)
        assert "(h=" in text

    def test_deeper_nodes_indented(self, clustering):
        lines = render_dendrogram(
            clustering.dendrogram, clustering.item_names
        ).splitlines()
        assert lines[0].startswith("+")      # root flush left
        assert any(line.startswith("  ") for line in lines[1:])

    def test_single_leaf(self):
        from repro.core.stats.cluster import Dendrogram
        text = render_dendrogram(Dendrogram(1, ()), ["only"])
        assert "only" in text


class TestWorkloadCharacterisation:
    def test_renders_all_workloads(self, small_dataset):
        text = render_workload_characterisation(small_dataset, SMALL_FREQS[1])
        for workload in small_dataset.workloads:
            assert workload in text

    def test_columns_present(self, small_dataset):
        header = render_workload_characterisation(
            small_dataset, SMALL_FREQS[1]
        ).splitlines()[1]
        for column in ("IPC", "branch rate", "L1D miss", "BP acc"):
            assert column in header

    def test_values_in_range(self, small_dataset):
        text = render_workload_characterisation(small_dataset, SMALL_FREQS[1])
        # BP accuracy column values must parse and sit in [0, 1].
        for line in text.splitlines()[3:]:
            bp_acc = float(line.split()[-1])
            assert 0.0 <= bp_acc <= 1.0


class TestFigureRenderersOnRealData:
    def test_fig3_renderer(self, small_gemstone):
        text = render_workload_mpe_figure(small_gemstone.workload_clusters)
        assert "MPE per workload" in text
        assert "par-basicmath-rad2deg" in text

    def test_fig5_renderer(self, small_gemstone):
        text = render_pmc_correlation_figure(small_gemstone.pmc_correlation)
        assert "Correlation of HW PMC rates" in text
        assert "0x11 CPU_CYCLES" in text

    def test_fig6_renderer(self, small_gemstone):
        text = render_event_ratio_table(small_gemstone.event_comparison)
        assert "gem5 events / HW PMC equivalents" in text
        assert "0x10" in text

    def test_fig7_renderer(self, small_gemstone):
        text = render_power_energy_figure(small_gemstone.power_energy)
        assert "power MAPE %" in text and "ALL" in text

    def test_fig8_renderer(self, small_gemstone):
        text = render_dvfs_figure(small_gemstone.dvfs)
        assert "HW speedup" in text and "model speedup" in text


class TestDegradedFitsSection:
    def test_notes_render_one_line_each(self):
        from repro.core.report import render_degraded_fits
        from repro.core.validation import DegradedFit

        text = render_degraded_fits(
            [
                DegradedFit("workload-clusters", "only 1 workload survives"),
                DegradedFit("power-model", "dropped constant regressor 'x'"),
            ]
        )
        assert "Degraded fits (2 note(s))" in text
        assert "[workload-clusters] only 1 workload survives" in text
        assert "[power-model] dropped constant regressor 'x'" in text

    def test_clean_run_report_has_no_degraded_section(self, small_gemstone):
        assert "Degraded fits" not in small_gemstone.report()

    def test_degraded_fits_never_trigger_computation(self):
        from repro.core.pipeline import GemStone, GemStoneConfig

        gs = GemStone(GemStoneConfig())
        assert gs.degraded_fits() == []
        assert gs._dataset is None  # collection was not kicked off
