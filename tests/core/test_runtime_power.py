"""Tests for the run-time (in-simulator) power analysis path."""

import pytest

from repro.core.runtime_power import (
    PowerSample,
    compile_equations,
    mean_power,
    runtime_power_trace,
    trace_energy,
)

from tests.conftest import SMALL_FREQS


@pytest.fixture(scope="module")
def equations(small_gemstone):
    return compile_equations(small_gemstone.power_model.gem5_equations())


class TestCompileEquations:
    def test_opps_match_model(self, small_gemstone, equations):
        assert set(equations.opps()) == set(small_gemstone.power_model.per_opp)

    def test_core_parsed_from_header(self, equations):
        assert equations.core == "A15"

    def test_runtime_matches_posthoc_application(self, small_gemstone, equations,
                                                 small_profiles):
        """Method 2 (runtime equations) must agree with method 1 (post-hoc
        application) — same model, same inputs."""
        for profile in small_profiles[:4]:
            stats = small_gemstone.gem5.run(profile, SMALL_FREQS[1])
            runtime = equations.evaluate_stats(stats)
            posthoc = small_gemstone.application.apply_to_gem5(stats).power_w
            # Agreement up to the 8-significant-digit coefficient printing.
            assert runtime == pytest.approx(posthoc, rel=1e-6)

    def test_unknown_opp_rejected(self, equations):
        with pytest.raises(KeyError, match="MHz"):
            equations.evaluate(123e6, {})

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            compile_equations("power at 600MHz is three watts")

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError, match="no power equations"):
            compile_equations("# just a comment\n")

    def test_missing_intercept_rejected(self):
        with pytest.raises(ValueError, match="intercept"):
            compile_equations("power[600MHz] = rate(cpu.numCycles)")

    def test_negative_weights_parse(self):
        eq = compile_equations(
            "power[600MHz] = 0.5 + 1e-10*rate(a.b) - 2e-10*rate(c.d)"
        )
        assert eq.evaluate(600e6, {"a.b": 1e10, "c.d": 1e9}) == pytest.approx(
            0.5 + 1.0 - 0.2
        )


class TestRuntimeTrace:
    @pytest.fixture(scope="class")
    def samples(self, small_gemstone, equations, small_profiles):
        return runtime_power_trace(
            small_gemstone.gem5, small_profiles[2], SMALL_FREQS[1], equations,
            n_windows=6,
        )

    def test_window_count(self, samples):
        assert len(samples) == 6

    def test_windows_contiguous(self, samples):
        clock = 0.0
        for sample in samples:
            assert sample.start_seconds == pytest.approx(clock)
            clock += sample.duration_seconds

    def test_power_positive_and_plausible(self, samples):
        for sample in samples:
            assert 0.05 < sample.power_w < 10.0

    def test_mean_power_near_whole_run(self, small_gemstone, equations,
                                       small_profiles, samples):
        stats = small_gemstone.gem5.run(small_profiles[2], SMALL_FREQS[1])
        whole = equations.evaluate_stats(stats)
        assert mean_power(samples) == pytest.approx(whole, rel=0.15)

    def test_energy_is_power_times_time(self, samples):
        expected = sum(s.power_w * s.duration_seconds for s in samples)
        assert trace_energy(samples) == pytest.approx(expected)

    def test_invalid_window_count(self, small_gemstone, equations, small_profiles):
        with pytest.raises(ValueError):
            runtime_power_trace(
                small_gemstone.gem5, small_profiles[0], SMALL_FREQS[0],
                equations, n_windows=0,
            )

    def test_mean_power_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_power([])

    def test_single_window_equals_whole_run_power(self, small_gemstone,
                                                  equations, small_profiles):
        samples = runtime_power_trace(
            small_gemstone.gem5, small_profiles[0], SMALL_FREQS[0], equations,
            n_windows=1,
        )
        stats = small_gemstone.gem5.run(small_profiles[0], SMALL_FREQS[0])
        whole = equations.evaluate_stats(stats)
        assert samples[0].power_w == pytest.approx(whole, rel=1e-6)
