"""Chaos suite: kill the pipeline after each phase, resume, compare bytes.

Each scenario runs a small checkpointed GemStone evaluation, abandons it
after phase *k* (exactly what a ``kill -9`` at that point leaves on disk:
the first ``k+1`` phase checkpoints, atomically written), then resumes in
a fresh facade and asserts the final report is byte-identical to the
uninterrupted reference — with every finished phase restored, not redone.

A shared simulation cache keeps the scenarios fast: the simulation layer's
own crash-safety is covered by ``tests/sim/test_faults.py``; what this
suite exercises is the *analysis* checkpoint layer above it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.runstate import PHASES
from repro.workloads.suites import workload_by_name

pytestmark = pytest.mark.chaos

N_INSTRS = 8_000
FREQS = (600e6, 1000e6)
WORKLOADS = (
    "mi-bitcount", "mi-qsort", "mi-sha", "dhrystone", "whetstone", "mi-fft",
)

#: (phase name, accessor that forces it) in canonical pipeline order.
ACCESSORS = (
    ("dataset", lambda gs: gs.dataset),
    ("power-dataset", lambda gs: gs.power_dataset),
    ("workload-clusters", lambda gs: gs.workload_clusters),
    ("pmc-correlation", lambda gs: gs.pmc_correlation),
    ("gem5-correlation", lambda gs: gs.gem5_correlation),
    ("regression-hw", lambda gs: gs.regression("hw")),
    ("regression-gem5", lambda gs: gs.regression("gem5")),
    ("event-comparison", lambda gs: gs.event_comparison),
    ("power-model", lambda gs: gs.power_model),
    ("power-energy", lambda gs: gs.power_energy),
    ("dvfs", lambda gs: gs.dvfs),
)


@pytest.fixture(scope="module")
def sim_cache_dir(tmp_path_factory):
    """One on-disk simulation cache shared by every scenario."""
    return str(tmp_path_factory.mktemp("sim-cache"))


def _config(sim_cache_dir, checkpoint_dir, resume=False, **overrides):
    profiles = tuple(workload_by_name(name) for name in WORKLOADS)
    defaults = dict(
        core="A15",
        workloads=profiles,
        power_workloads=profiles,
        frequencies=FREQS,
        trace_instructions=N_INSTRS,
        n_workload_clusters=4,
        power_model_terms=4,
        cache_dir=sim_cache_dir,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
    )
    defaults.update(overrides)
    return GemStoneConfig(**defaults)


@pytest.fixture(scope="module")
def reference_report(sim_cache_dir, tmp_path_factory):
    """The uninterrupted checkpointed run every scenario must reproduce."""
    directory = str(tmp_path_factory.mktemp("reference-ckpt"))
    gs = GemStone(_config(sim_cache_dir, directory))
    report = gs.report()
    assert gs.runstate.completed_phases() == list(PHASES)
    return report


@pytest.mark.parametrize(
    "kill_after", range(len(ACCESSORS)),
    ids=[name for name, _ in ACCESSORS],
)
def test_killed_after_each_phase_resumes_byte_identically(
    kill_after, sim_cache_dir, tmp_path, reference_report
):
    directory = str(tmp_path / "ckpt")

    # First run: complete phases 0..kill_after, then die (abandonment is
    # exactly what SIGKILL leaves behind — checkpoints land atomically at
    # phase completion, so there is no cleanup path to miss).
    victim = GemStone(_config(sim_cache_dir, directory))
    for _, accessor in ACCESSORS[: kill_after + 1]:
        accessor(victim)
    on_disk = victim.runstate.completed_phases()
    assert on_disk == [name for name, _ in ACCESSORS[: kill_after + 1]]
    del victim

    # Resume: finished phases restore, the rest compute, bytes match.
    resumed = GemStone(_config(sim_cache_dir, directory, resume=True))
    assert resumed.report() == reference_report
    assert resumed.runstate.telemetry.restored == kill_after + 1
    assert resumed.runstate.telemetry.quarantined == 0
    assert resumed.runstate.completed_phases() == list(PHASES)


def test_fully_completed_run_resumes_from_the_report_checkpoint(
    sim_cache_dir, tmp_path, reference_report
):
    directory = str(tmp_path / "ckpt")
    GemStone(_config(sim_cache_dir, directory)).report()

    resumed = GemStone(_config(sim_cache_dir, directory, resume=True))
    assert resumed.report() == reference_report
    # The report itself is a checkpointed phase: nothing is recomputed.
    assert resumed.runstate.telemetry.restored == 1
    assert resumed.runstate.telemetry.checkpointed == 0


def test_mismatched_config_splices_the_shared_subgraph(
    sim_cache_dir, tmp_path, reference_report
):
    directory = str(tmp_path / "ckpt")
    GemStone(_config(sim_cache_dir, directory)).report()

    # Same directory, different clustering: the fingerprint changes, but
    # only the phases downstream of ``n_workload_clusters`` are stale.
    # The phase graph splices the rest through instead of quarantining
    # the whole run.
    changed = GemStone(
        _config(sim_cache_dir, directory, resume=True, n_workload_clusters=3)
    )
    quarantined = os.listdir(changed.runstate.quarantine_dir)
    assert "manifest.json" in quarantined
    assert "report.ckpt" in quarantined
    assert "workload-clusters.ckpt" in quarantined
    assert "dataset.ckpt" not in quarantined
    assert "power-model.ckpt" not in quarantined
    assert changed.runstate.telemetry.spliced == 7

    report = changed.report()
    assert report != reference_report  # a different experiment, honestly run
    # Exactly the invalidated subgraph recomputed; everything whose
    # phase key survived the config change restored from its checkpoint.
    assert changed.runstate.telemetry.restored == 7
    assert changed.runstate.telemetry.checkpointed == 5
    assert changed.runstate.completed_phases() == list(PHASES)
    events = [r["event"] for r in changed.runstate.read_journal()]
    assert "phases-spliced" in events


def test_resumed_journal_tells_the_whole_story(
    sim_cache_dir, tmp_path, reference_report
):
    directory = str(tmp_path / "ckpt")
    victim = GemStone(_config(sim_cache_dir, directory))
    victim.dataset
    victim.workload_clusters
    del victim

    resumed = GemStone(_config(sim_cache_dir, directory, resume=True))
    assert resumed.report() == reference_report
    events = [r["event"] for r in resumed.runstate.read_journal()]
    assert events.count("run-start") == 2
    assert "restored" in events
    assert events[-1] == "run-complete"
