"""Tests for the error metrics and their paper sign conventions."""

import numpy as np
import pytest

from repro.core.stats.metrics import (
    adjusted_r_squared,
    mae,
    mape,
    mpe,
    percentage_errors,
    r_squared,
    standard_error_of_regression,
)


class TestPercentageErrors:
    def test_sign_convention(self):
        """Estimate above reference (time overestimated) => negative."""
        assert percentage_errors([10.0], [15.0])[0] == pytest.approx(-50.0)
        assert percentage_errors([10.0], [5.0])[0] == pytest.approx(50.0)

    def test_perfect_estimate(self):
        assert percentage_errors([3.0, 7.0], [3.0, 7.0]).tolist() == [0.0, 0.0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            percentage_errors([0.0], [1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            percentage_errors([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentage_errors([], [])


class TestMpeMape:
    def test_mpe_cancels_mape_does_not(self):
        reference = [10.0, 10.0]
        estimate = [5.0, 15.0]  # +50 and -50
        assert mpe(reference, estimate) == pytest.approx(0.0)
        assert mape(reference, estimate) == pytest.approx(50.0)

    def test_paper_headline_example(self):
        """gem5 time 2x hardware => MPE -100 %."""
        assert mpe([1.0], [2.0]) == pytest.approx(-100.0)

    def test_mape_nonnegative(self):
        rng = np.random.default_rng(0)
        reference = rng.uniform(1, 10, 50)
        estimate = rng.uniform(1, 10, 50)
        assert mape(reference, estimate) >= 0
        assert mape(reference, estimate) >= abs(mpe(reference, estimate))

    def test_mae_in_native_units(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.array([3.0, 2.0, 1.0])) < 0

    def test_constant_observations(self):
        assert r_squared([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r_squared([2.0, 2.0], [1.0, 3.0]) == 0.0

    def test_adjusted_penalises_predictors(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=30)
        predicted = y + rng.normal(scale=0.1, size=30)
        assert adjusted_r_squared(y, predicted, 5) < adjusted_r_squared(
            y, predicted, 1
        )

    def test_adjusted_needs_dof(self):
        with pytest.raises(ValueError):
            adjusted_r_squared([1.0, 2.0], [1.0, 2.0], 5)


class TestSer:
    def test_known_value(self):
        observed = np.array([1.0, 2.0, 3.0, 4.0])
        predicted = observed + np.array([0.1, -0.1, 0.1, -0.1])
        # SS_res = 4 * 0.01, dof = 4 - 1 - 1 = 2
        assert standard_error_of_regression(observed, predicted, 1) == (
            pytest.approx(np.sqrt(0.04 / 2))
        )

    def test_zero_dof_rejected(self):
        with pytest.raises(ValueError):
            standard_error_of_regression([1.0, 2.0], [1.0, 2.0], 1)
