"""Tests for the text rendering helpers."""

import pytest

from repro.core.report import _fmt, hbar_chart, text_table


class TestTextTable:
    def test_alignment(self):
        table = text_table(["name", "value"], [["a", 1.5], ["bbbb", 22.0]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len({line.index("1.50") for line in lines if "1.50" in line}) == 1

    def test_title(self):
        assert text_table(["x"], [["y"]], title="T").splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            text_table(["a", "b"], [["only-one"]])

    def test_number_formatting(self):
        assert _fmt(0.000123) == "0.000123"
        assert _fmt(1234567.0) == "1.23e+06"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0) == "0"
        assert _fmt("text") == "text"


class TestHbarChart:
    def test_positive_and_negative_bars(self):
        chart = hbar_chart(["pos", "neg"], [50.0, -25.0])
        lines = chart.splitlines()
        assert "#" in lines[0] and "#" in lines[1]
        # Positive bar extends right of the axis, negative left.
        pos_line, neg_line = lines
        assert pos_line.index("|") < pos_line.index("#")
        assert neg_line.index("#") < neg_line.index("|")

    def test_values_annotated(self):
        chart = hbar_chart(["a"], [12.3])
        assert "+12.3" in chart

    def test_annotations_appended(self):
        chart = hbar_chart(["a"], [1.0], annotations=["c7"])
        assert "c7" in chart

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1.0, 2.0])

    def test_zero_values_ok(self):
        chart = hbar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in chart
