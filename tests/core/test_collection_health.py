"""Chaos suite: dataset collection degrading gracefully under faults.

A permanently failed (workload, frequency) point must not abort the
campaign: the surviving rows stay bit-identical to a fault-free run and the
gaps are enumerated in :class:`~repro.core.validation.CollectionHealth`.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.core.power_model import collect_power_dataset
from repro.core.report import render_collection_health
from repro.core.validation import CollectionHealth, collect_validation_dataset
from repro.sim.executor import RetryPolicy
from repro.sim.faults import FaultPlan
from repro.sim.platform import HardwarePlatform
from repro.workloads.suites import workload_by_name

from tests.conftest import SMALL_FREQS, TRACE_INSTRUCTIONS

pytestmark = pytest.mark.chaos

WORKLOADS = ("mi-sha", "mi-qsort", "dhrystone", "whetstone")
POISONED = "mi-qsort"

NO_BACKOFF = RetryPolicy(max_attempts=2, base_seconds=0.0)


def _profiles():
    return tuple(workload_by_name(name) for name in WORKLOADS)


def _gemstone(faults=None) -> GemStone:
    return GemStone(
        GemStoneConfig(
            core="A15",
            workloads=_profiles(),
            power_workloads=_profiles(),
            frequencies=SMALL_FREQS,
            trace_instructions=TRACE_INSTRUCTIONS,
            retry=NO_BACKOFF,
            faults=faults,
        )
    )


@pytest.fixture(scope="module")
def reference():
    """The fault-free dataset the degraded runs are compared against."""
    return _gemstone().dataset


class TestValidationDegradation:
    @pytest.fixture(scope="class")
    def degraded(self):
        gs = _gemstone(faults=FaultPlan.crash_workload(POISONED, attempts=99))
        return gs, gs.dataset

    def test_failures_enumerated(self, degraded):
        gs, dataset = degraded
        assert dataset.health is gs.health
        assert dataset.health.degraded
        failed = {(f.workload, f.freq_hz) for f in dataset.health.failures}
        assert failed == {(POISONED, f) for f in SMALL_FREQS}
        assert all(f.stage == "hardware" for f in dataset.health.failures)
        assert dataset.health.attempted == len(WORKLOADS) * len(SMALL_FREQS)
        assert dataset.health.succeeded == dataset.health.attempted - len(
            SMALL_FREQS
        )

    def test_surviving_rows_bit_identical(self, degraded, reference):
        _, dataset = degraded
        for freq in SMALL_FREQS:
            survivors = dataset.runs_at(freq)
            assert [r.workload for r in survivors] == [
                w for w in WORKLOADS if w != POISONED
            ]
            for run in survivors:
                ref = reference.run(run.workload, freq)
                assert run.hw_time == ref.hw_time
                assert run.gem5_time == ref.gem5_time
                assert run.hw.pmc == ref.hw.pmc
                assert run.gem5.stats == ref.gem5.stats

    def test_lost_point_absent_not_none(self, degraded):
        _, dataset = degraded
        with pytest.raises(KeyError):
            dataset.run(POISONED, SMALL_FREQS[0])

    def test_analyses_run_on_survivors(self, degraded, reference):
        _, dataset = degraded
        # Error statistics still compute; they cover a narrower set, so they
        # generally differ from the full-campaign numbers.
        assert dataset.time_mape(SMALL_FREQS[0]) > 0

    def test_report_section_lists_gaps(self, degraded):
        gs, dataset = degraded
        text = render_collection_health(dataset.health)
        assert "Collection health" in text
        assert POISONED in text

    def test_all_points_failing_raises(self):
        plan = FaultPlan(
            tuple(
                spec
                for name in WORKLOADS
                for spec in FaultPlan.crash_workload(name, attempts=99).faults
            )
        )
        gs = _gemstone(faults=plan)
        with pytest.raises(RuntimeError, match="failed completely"):
            gs.dataset


class TestPowerSampleLoss:
    def test_lost_samples_accounted_timing_unchanged(self, reference):
        plan = FaultPlan.drop_power(fraction=0.2) | FaultPlan.nan_power(
            "mi-sha", fraction=0.3
        )
        gs = _gemstone(faults=plan)
        dataset = gs.dataset
        assert dataset.health.failed == 0
        assert dataset.health.power_samples_lost > 0
        for run in dataset.runs:
            ref = reference.run(run.workload, run.freq_hz)
            # Power degrades to a robust mean over the surviving samples;
            # timing and PMCs must be untouched by sensor faults.
            assert run.hw_time == ref.hw_time
            assert run.hw.pmc == ref.hw.pmc
            assert run.gem5_time == ref.gem5_time

    def test_all_power_samples_lost_fails_power_point(self):
        platform = HardwarePlatform(
            "A15",
            trace_instructions=TRACE_INSTRUCTIONS,
            faults=FaultPlan.nan_power(fraction=1.0),
        )
        health = CollectionHealth()
        with pytest.raises(RuntimeError, match="failed completely"):
            collect_power_dataset(
                platform, _profiles(), SMALL_FREQS, health=health
            )
        assert health.failed == health.attempted
        assert all("sample" in f.error for f in health.failures)


class TestHealthRecord:
    def test_summary_wording(self):
        health = CollectionHealth(attempted=10, succeeded=8)
        health.record_failure("mi-sha", 1.0e9, "gem5", TimeoutError("slow"))
        health.power_samples_lost = 3
        line = health.summary()
        assert "8/10" in line
        assert "1 failed" in line
        assert "3 power samples lost" in line
        assert health.degraded

    def test_clean_campaign_not_degraded(self):
        health = CollectionHealth(attempted=4, succeeded=4)
        assert not health.degraded
        assert health.failed == 0

    def test_guard_events_degrade_and_summarise(self):
        from repro.sim.guard import GuardEvent

        health = CollectionHealth(attempted=4, succeeded=4)
        health.record_guard_event(
            GuardEvent("divergence", "mi-sha", "A15", "fallback-scalar")
        )
        health.absorb_guard_events(
            [GuardEvent("decode-corrupt", "mi-fft", "A15", "requarantine-decode")]
        )
        assert health.degraded
        assert len(health.guard_events) == 2
        assert "2 guard intervention(s)" in health.summary()
        # Checkpoint snapshots carry the guard record forward.
        assert health.clone().guard_events == health.guard_events

    def test_spans_validation_and_power(self):
        gs = _gemstone(faults=FaultPlan.crash_workload(POISONED, attempts=99))
        gs.dataset
        validation_failures = gs.health.failed
        assert validation_failures == len(SMALL_FREQS)
        gs.power_dataset
        # The poisoned workload fails again during power collection and the
        # same record accumulates both campaigns.
        assert gs.health.failed == validation_failures + len(SMALL_FREQS)
