"""Tests for the forward-selection stepwise regression."""

import numpy as np
import pytest

from repro.core.stats.stepwise import forward_stepwise


@pytest.fixture
def candidates():
    """Two true drivers, one redundant copy, three noise regressors."""
    rng = np.random.default_rng(13)
    n = 80
    a = rng.uniform(0, 10, n)
    b = rng.uniform(0, 10, n)
    y = 5.0 + 3.0 * a - 2.0 * b + rng.normal(0, 0.2, n)
    pool = {
        "a": a,
        "b": b,
        "a_copy": a + rng.normal(0, 0.01, n),
        "noise1": rng.normal(size=n),
        "noise2": rng.normal(size=n),
        "noise3": rng.normal(size=n),
    }
    return pool, y


class TestSelection:
    def test_finds_true_drivers(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=4)
        assert result.selected[0] in ("a", "a_copy")
        assert "b" in result.selected

    def test_noise_rejected_by_p_rule(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=6, p_value_limit=0.05)
        for name in ("noise1", "noise2", "noise3"):
            assert name not in result.selected

    def test_r2_improves_monotonically(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=4)
        r2s = [step.r2 for step in result.steps]
        assert r2s == sorted(r2s)

    def test_max_terms_respected(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=1, p_value_limit=None)
        assert len(result.selected) == 1

    def test_vif_limit_blocks_redundant_copy(self, candidates):
        pool, y = candidates
        result = forward_stepwise(
            pool, y, max_terms=5, p_value_limit=None, vif_limit=5.0
        )
        # a and a_copy are nearly identical; the restraint admits only one.
        assert not ({"a", "a_copy"} <= set(result.selected))

    def test_adjusted_r2_mode(self, candidates):
        pool, y = candidates
        result = forward_stepwise(
            pool, y, max_terms=6, p_value_limit=None, use_adjusted_r2=True
        )
        assert {"b"} <= set(result.selected)
        assert result.model.adjusted_r2 > 0.99

    def test_mean_vif_reported(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=3, p_value_limit=None)
        if len(result.selected) >= 2:
            assert result.mean_vif >= 1.0

    def test_single_term_vif_is_nan(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 30)
        result = forward_stepwise({"x": x}, 2 * x, max_terms=1)
        assert np.isnan(result.mean_vif)


class TestValidation:
    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            forward_stepwise({}, np.ones(10))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            forward_stepwise({"x": np.ones(5)}, np.ones(6))

    def test_constant_candidates_skipped(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, 30)
        result = forward_stepwise(
            {"const": np.ones(30), "x": x}, 3 * x, max_terms=2
        )
        assert result.selected == ("x",)

    def test_all_constant_degrades_to_intercept_only(self):
        result = forward_stepwise({"c": np.ones(10)}, np.ones(10))
        assert result.selected == ()
        assert result.model.intercept == pytest.approx(1.0)
        assert any("intercept-only" in note for note in result.degraded)

    def test_audit_trail_matches_selection(self, candidates):
        pool, y = candidates
        result = forward_stepwise(pool, y, max_terms=3)
        assert tuple(s.added for s in result.steps) == result.selected


class TestDegradedCandidatePools:
    """Field-data hardening: NaN/constant candidates degrade, never raise."""

    def test_nan_candidate_is_skipped_with_a_note(self, candidates):
        pool, y = candidates
        pool = dict(pool)
        pool["broken"] = np.full(y.size, np.nan)
        result = forward_stepwise(pool, y, max_terms=4)
        assert "broken" not in result.selected
        assert "b" in result.selected
        assert any("'broken'" in note for note in result.degraded)

    def test_all_degenerate_pool_degrades_to_intercept_only(self):
        y = np.array([2.0, 4.0, 6.0])
        pool = {"broken": np.full(3, np.nan), "flat": np.ones(3)}
        result = forward_stepwise(pool, y, max_terms=4)
        assert result.selected == ()
        assert result.model.intercept == pytest.approx(4.0)
        assert result.degraded != ()

    def test_literally_empty_pool_is_a_programmer_error(self):
        with pytest.raises(ValueError, match="no candidate"):
            forward_stepwise({}, np.array([1.0, 2.0]))

    def test_clean_pools_carry_no_notes(self, candidates):
        pool, y = candidates
        assert forward_stepwise(pool, y, max_terms=4).degraded == ()
