"""Tests for the GemStone facade."""

import pytest

from repro.core.pipeline import GemStone, GemStoneConfig
from repro.sim.machine import gem5_ex5_big_fixed_bp, gem5_ex5_little

from tests.conftest import SMALL_FREQS, SMALL_WORKLOADS


class TestConfig:
    def test_defaults_resolve(self):
        config = GemStoneConfig()
        assert config.resolve_machine().name == "gem5-ex5-big"
        assert len(config.resolve_workloads()) == 45
        assert len(config.resolve_power_workloads()) == 65
        assert len(config.resolve_frequencies()) == 4

    def test_a7_default_machine(self):
        assert GemStoneConfig(core="A7").resolve_machine().name == "gem5-ex5-little"

    def test_machine_by_name(self):
        config = GemStoneConfig(gem5_machine="gem5-ex5-big-fixed")
        assert config.resolve_machine().predictor == "tournament"

    def test_machine_by_config(self):
        config = GemStoneConfig(gem5_machine=gem5_ex5_big_fixed_bp())
        assert config.resolve_machine().name == "gem5-ex5-big-fixed"

    def test_core_mismatch_rejected(self):
        with pytest.raises(ValueError, match="targets"):
            GemStone(GemStoneConfig(core="A15", gem5_machine=gem5_ex5_little()))

    def test_unknown_core_rejected_at_construction(self):
        # Eager: the ValueError fires from the config itself, before any
        # platform or simulation is built.
        with pytest.raises(ValueError, match="core must be 'A7' or 'A15'"):
            GemStoneConfig(core="A53")
        with pytest.raises(ValueError, match="got 'a15'"):
            GemStoneConfig(core="a15")


class TestLazyProducts:
    def test_dataset_cached(self, small_gemstone):
        assert small_gemstone.dataset is small_gemstone.dataset

    def test_headline_errors_available(self, small_gemstone):
        dataset = small_gemstone.dataset
        assert dataset.time_mpe(1000e6) < 0  # buggy model overestimates time
        assert dataset.time_mape(1000e6) > 20

    def test_workload_clusters(self, small_gemstone):
        clusters = small_gemstone.workload_clusters
        assert clusters.clusters.n_clusters == 6
        assert clusters is small_gemstone.workload_clusters

    def test_correlations(self, small_gemstone):
        assert len(small_gemstone.pmc_correlation.event_names) > 30
        assert len(small_gemstone.gem5_correlation.event_names) > 10

    def test_regressions_cached_per_source(self, small_gemstone):
        assert small_gemstone.regression("hw") is small_gemstone.regression("hw")
        assert small_gemstone.regression("hw") is not small_gemstone.regression("gem5")

    def test_event_comparison(self, small_gemstone):
        assert 0x10 in small_gemstone.event_comparison.ratios

    def test_power_model_cached(self, small_gemstone):
        assert small_gemstone.power_model is small_gemstone.power_model
        assert small_gemstone.power_model.quality.mape < 10

    def test_with_machine_produces_fresh_run(self, small_gemstone):
        fixed = small_gemstone.with_machine("gem5-ex5-big-fixed")
        assert fixed.gem5.machine.name == "gem5-ex5-big-fixed"
        assert fixed.config.workloads == small_gemstone.config.workloads

    def test_bp_fix_swings_mpe(self, small_gemstone):
        """Section VII on the small set: fixing the BP moves the MPE from
        strongly negative toward (or past) zero."""
        buggy_mpe = small_gemstone.dataset.time_mpe(1000e6)
        fixed = small_gemstone.with_machine("gem5-ex5-big-fixed")
        fixed_mpe = fixed.dataset.time_mpe(1000e6)
        assert fixed_mpe > buggy_mpe + 20

    def test_compare_with_little_type_check(self, small_gemstone):
        with pytest.raises(ValueError):
            small_gemstone.compare_with_little(small_gemstone)


class TestReport:
    def test_report_renders_every_section(self, small_gemstone):
        report = small_gemstone.report()
        for fragment in (
            "GemStone report",
            "Execution-time error",
            "MPE per workload",
            "Correlation of HW PMC rates",
            "gem5 statistics vs error",
            "Stepwise error regression",
            "gem5 events / HW PMC equivalents",
            "Branch predictor accuracy",
            "empirical power model",
            "power/energy error",
            "scaling normalised",
        ):
            assert fragment in report, fragment
