"""Tests for the event-vs-error correlation analysis."""

import numpy as np
import pytest

from repro.core.stats.correlate import correlate_with_error, pearson


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson(np.ones(1), np.ones(1))


@pytest.fixture
def synthetic_rates():
    """30 workloads, 5 events: two co-varying drivers of the error, one
    anti-driver, two noise events."""
    rng = np.random.default_rng(6)
    driver = rng.uniform(0, 1, 30)
    rates = np.column_stack([
        driver * 100,                               # ev_pos_a
        driver * 55 + rng.normal(0, 0.5, 30),       # ev_pos_b (same cluster)
        (1 - driver) * 80,                          # ev_neg
        rng.uniform(0, 1, 30),                      # ev_noise1
        rng.uniform(0, 1, 30),                      # ev_noise2
    ])
    errors = driver * 50 - 25
    names = ["ev_pos_a", "ev_pos_b", "ev_neg", "ev_noise1", "ev_noise2"]
    return rates, errors, names


class TestCorrelateWithError:
    def test_signs_identified(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        result = correlate_with_error(rates, errors, names, n_event_clusters=3)
        assert result.correlation_of("ev_pos_a") > 0.95
        assert result.correlation_of("ev_neg") < -0.95
        assert abs(result.correlation_of("ev_noise1")) < 0.5

    def test_covarying_events_share_cluster(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        result = correlate_with_error(rates, errors, names, n_event_clusters=3)
        clusters = result.clusters
        assert clusters.cluster_of("ev_pos_a") == clusters.cluster_of("ev_pos_b")

    def test_min_abs_filter(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        result = correlate_with_error(
            rates, errors, names, min_abs_correlation=0.8
        )
        assert set(result.event_names) == {"ev_pos_a", "ev_pos_b", "ev_neg"}

    def test_filter_leaving_nothing_raises(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        with pytest.raises(ValueError):
            correlate_with_error(rates, errors, names, min_abs_correlation=1.1)

    def test_sorted_events(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        result = correlate_with_error(rates, errors, names)
        values = [corr for _, corr, _ in result.sorted_events()]
        assert values == sorted(values, reverse=True)

    def test_strongest(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        strongest = correlate_with_error(rates, errors, names).strongest(2)
        top_names = {name for name, _, _ in strongest}
        assert "ev_noise1" not in top_names

    def test_cluster_summary(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        result = correlate_with_error(rates, errors, names, n_event_clusters=3)
        summary = result.cluster_summary()
        assert sum(int(v["size"]) for v in summary.values()) == len(names)
        for v in summary.values():
            assert v["min"] <= v["mean"] <= v["max"]

    def test_unknown_event(self, synthetic_rates):
        rates, errors, names = synthetic_rates
        with pytest.raises(KeyError):
            correlate_with_error(rates, errors, names).correlation_of("ev_x")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            correlate_with_error(np.ones((4, 2)), np.ones(3), ["a", "b"])
        with pytest.raises(ValueError):
            correlate_with_error(np.ones((4, 2)), np.ones(4), ["a"])
