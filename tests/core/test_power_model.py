"""Tests for the Powmon-style power modelling (Section V)."""

import numpy as np
import pytest

from repro.core.power_model import (
    EventTerm,
    PowerModelApplication,
    PowerModelBuilder,
    collect_power_dataset,
    restraint_pool_gem5,
    validate_power_model,
)
from repro.events.matching import UNAVAILABLE_IN_GEM5

from tests.conftest import SMALL_FREQS


@pytest.fixture(scope="module")
def observations(platform_a15, small_profiles):
    return collect_power_dataset(platform_a15, small_profiles, SMALL_FREQS)


@pytest.fixture(scope="module")
def model(observations):
    builder = PowerModelBuilder(
        "A15", excluded_events=restraint_pool_gem5("A15"), max_terms=5
    )
    return builder.fit(observations)


class TestEventTerm:
    def test_single_event(self):
        term = EventTerm(0x11)
        assert term.name == "0x11"
        assert term.rate({0x11: 5.0}) == 5.0
        assert term.events() == (0x11,)

    def test_difference(self):
        term = EventTerm(0x1B, 0x73)
        assert term.name == "0x1B-0x73"
        assert term.rate({0x1B: 10.0, 0x73: 4.0}) == 6.0
        assert term.events() == (0x1B, 0x73)

    def test_missing_event_raises(self):
        with pytest.raises(KeyError):
            EventTerm(0x11).rate({})

    def test_pretty_name(self):
        assert "INST_SPEC" in EventTerm(0x1B, 0x73).pretty_name


class TestDataset:
    def test_observation_count(self, observations, small_profiles):
        assert len(observations) == len(small_profiles) * len(SMALL_FREQS)

    def test_rates_positive_power_plausible(self, observations):
        for obs in observations:
            assert obs.power_w > 0.05
            assert obs.rates[0x08] > 0

    def test_voltage_from_opp_table(self, observations):
        volts = {round(o.freq_hz): o.voltage for o in observations}
        assert volts[600_000_000] < volts[1_000_000_000]


class TestSelection:
    def test_cycle_counter_selected_first(self, model):
        """Pooled across OPPs, 0x11 dominates — the paper's Fig. 7 shows it
        as the biggest non-intercept component."""
        assert model.terms[0].positive == 0x11

    def test_restrained_selection_avoids_gem5_incompatible(self, model):
        pool = restraint_pool_gem5("A15")
        for term in model.terms:
            for event in term.events():
                assert event not in pool or event == 0x73  # difference arm

    def test_unrestricted_may_use_more_events(self, observations):
        builder = PowerModelBuilder("A15", max_terms=5)
        unrestricted = builder.fit(observations)
        assert unrestricted.quality.adjusted_r2 > 0.98


class TestModelQuality:
    def test_accuracy_in_paper_range(self, model):
        quality = model.quality
        assert quality.mape < 8.0
        assert quality.adjusted_r2 > 0.98
        assert quality.ser < 0.2

    def test_vif_acceptable(self, model):
        assert model.quality.mean_vif < 15.0

    def test_validate_matches_stored_quality(self, model, observations):
        fresh = validate_power_model(model, observations)
        assert fresh.mape == pytest.approx(model.quality.mape)

    def test_max_ape_recorded(self, model):
        assert model.quality.max_ape >= model.quality.mape
        assert "@" in model.quality.worst_observation


class TestPrediction:
    def test_predict_at_fitted_opp(self, model, observations):
        obs = observations[0]
        predicted = model.predict(obs.rates, obs.freq_hz)
        assert predicted == pytest.approx(obs.power_w, rel=0.25)

    def test_unfitted_opp_raises(self, model, observations):
        with pytest.raises(KeyError, match="MHz"):
            model.predict(observations[0].rates, 123e6)

    def test_components_sum_to_prediction(self, model, observations):
        obs = observations[0]
        estimate = model.predict_components(obs.rates, obs.freq_hz)
        assert sum(estimate.components.values()) == pytest.approx(
            estimate.power_w
        )
        assert "intercept" in estimate.components

    def test_required_events_deduplicated(self, model):
        events = model.required_events()
        assert len(events) == len(set(events))


class TestApplication:
    @pytest.fixture(scope="class")
    def application(self, model, platform_a15):
        return PowerModelApplication(model, platform_a15.opps)

    def test_apply_to_hw(self, application, platform_a15, small_profiles):
        measurement = platform_a15.characterize(small_profiles[2], SMALL_FREQS[1])
        estimate = application.apply_to_hw(measurement)
        assert estimate.power_w == pytest.approx(measurement.power_w, rel=0.3)

    def test_apply_to_gem5(self, application, gem5_sim_a15, small_profiles):
        stats = gem5_sim_a15.run(small_profiles[2], SMALL_FREQS[1])
        estimate = application.apply_to_gem5(stats)
        assert 0.05 < estimate.power_w < 10.0

    def test_gem5_rates_cover_model_events(self, application, gem5_sim_a15,
                                           small_profiles):
        stats = gem5_sim_a15.run(small_profiles[0], SMALL_FREQS[0])
        rates = application.gem5_rates(stats)
        assert set(rates) == set(application.model.required_events())

    def test_unmatchable_model_rejected(self, observations, platform_a15):
        builder = PowerModelBuilder("A15", max_terms=2)
        bad = builder.fit(observations, terms=(EventTerm(0x11), EventTerm(0x6A)))
        assert 0x6A in UNAVAILABLE_IN_GEM5
        with pytest.raises(ValueError, match="without gem5 matches"):
            PowerModelApplication(bad, platform_a15.opps)


class TestGem5Equations:
    def test_equations_render(self, model):
        text = model.gem5_equations()
        assert "power[" in text
        assert "rate(" in text
        for key in model.per_opp:
            assert f"{key / 1e6:.0f}MHz" in text
