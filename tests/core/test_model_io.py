"""Tests for power-model and dataset serialisation."""

import numpy as np
import pytest

from repro.core.model_io import (
    ModelIoError,
    load_power_model,
    power_dataset_from_csv,
    power_dataset_to_csv,
    power_model_from_dict,
    power_model_to_dict,
    save_power_model,
    validation_to_csv,
)
from repro.core.power_model import (
    PowerModelApplication,
    PowerModelBuilder,
    collect_power_dataset,
    restraint_pool_gem5,
)

from tests.conftest import SMALL_FREQS


@pytest.fixture(scope="module")
def observations(platform_a15, small_profiles):
    return collect_power_dataset(platform_a15, small_profiles, SMALL_FREQS)


@pytest.fixture(scope="module")
def model(observations):
    builder = PowerModelBuilder(
        "A15", excluded_events=restraint_pool_gem5("A15"), max_terms=4
    )
    return builder.fit(observations)


class TestModelRoundTrip:
    def test_dict_round_trip_preserves_structure(self, model):
        restored = power_model_from_dict(power_model_to_dict(model))
        assert restored.core == model.core
        assert restored.terms == model.terms
        assert set(restored.per_opp) == set(model.per_opp)

    def test_round_trip_predictions_identical(self, model, observations):
        restored = power_model_from_dict(power_model_to_dict(model))
        for obs in observations[:8]:
            assert restored.predict(obs.rates, obs.freq_hz) == pytest.approx(
                model.predict(obs.rates, obs.freq_hz)
            )

    def test_quality_preserved(self, model):
        restored = power_model_from_dict(power_model_to_dict(model))
        assert restored.quality.mape == pytest.approx(model.quality.mape)
        assert restored.quality.worst_observation == model.quality.worst_observation

    def test_file_round_trip(self, model, tmp_path):
        path = str(tmp_path / "model.json")
        save_power_model(model, path)
        restored = load_power_model(path)
        assert restored.terms == model.terms

    def test_restored_model_usable_by_application(self, model, tmp_path,
                                                  platform_a15, gem5_sim_a15,
                                                  small_profiles):
        path = str(tmp_path / "model.json")
        save_power_model(model, path)
        application = PowerModelApplication(load_power_model(path), platform_a15.opps)
        stats = gem5_sim_a15.run(small_profiles[1], SMALL_FREQS[0])
        assert application.apply_to_gem5(stats).power_w > 0

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            power_model_from_dict({"kind": "something-else"})

    def test_wrong_version_rejected(self, model):
        payload = power_model_to_dict(model)
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="version"):
            power_model_from_dict(payload)

    def test_legacy_format_rejected(self, model):
        payload = power_model_to_dict(model)
        del payload["schema_version"]
        with pytest.raises(ModelIoError, match="legacy"):
            power_model_from_dict(payload)

    def test_missing_key_raises_model_io_error(self, model):
        payload = power_model_to_dict(model)
        del payload["per_opp"]
        with pytest.raises(ModelIoError, match="corrupt"):
            power_model_from_dict(payload)

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"kind": "gemstone-power-model", truncated')
        with pytest.raises(ModelIoError, match="corrupt"):
            load_power_model(str(path))

    def test_degraded_notes_round_trip(self, model):
        payload = power_model_to_dict(model)
        payload["degraded"] = ["OPP 600 MHz: dropped constant regressor '0x11'"]
        restored = power_model_from_dict(payload)
        assert restored.degraded == (
            "OPP 600 MHz: dropped constant regressor '0x11'",
        )


class TestPowerDatasetCsv:
    def test_round_trip(self, observations):
        text = power_dataset_to_csv(observations)
        restored = power_dataset_from_csv(text)
        assert len(restored) == len(observations)
        first, orig = restored[0], observations[0]
        assert first.workload == orig.workload
        assert first.power_w == pytest.approx(orig.power_w, rel=1e-4)
        assert first.rates[0x08] == pytest.approx(orig.rates[0x08], rel=1e-4)
        assert first.threads == orig.threads

    def test_header_includes_events(self, observations):
        header = power_dataset_to_csv(observations).splitlines()[0]
        assert "event_0x08" in header and "event_0x11" in header

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            power_dataset_to_csv([])

    def test_bad_csv_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            power_dataset_from_csv("a,b\n1,2\n")

    def test_nan_power_round_trips_bit_identically(self, observations):
        import dataclasses

        nan = float("nan")
        degraded = [
            dataclasses.replace(
                observations[0],
                power_w=nan,
                rates={**observations[0].rates, 0x08: nan},
            )
        ] + list(observations[1:])
        restored = power_dataset_from_csv(power_dataset_to_csv(degraded))
        import struct

        def bits(value):
            return struct.pack("<d", value)

        assert bits(restored[0].power_w) == bits(nan)
        assert bits(restored[0].rates[0x08]) == bits(nan)
        # Infinities take the same canonical-token path.
        inf_obs = dataclasses.replace(observations[0], power_w=float("inf"))
        restored_inf = power_dataset_from_csv(
            power_dataset_to_csv([inf_obs])
        )
        assert restored_inf[0].power_w == float("inf")


class TestValidationCsv:
    def test_rows_and_columns(self, small_dataset):
        text = validation_to_csv(small_dataset)
        lines = text.strip().splitlines()
        assert len(lines) == len(small_dataset.runs) + 1
        assert lines[0].startswith("workload,suite,threads,freq_hz")

    def test_percentage_errors_match(self, small_dataset):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(validation_to_csv(small_dataset))))
        run = small_dataset.runs[0]
        assert float(rows[0]["time_percentage_error"]) == pytest.approx(
            run.time_percentage_error, abs=0.01
        )
