"""Tests for experiment collation and execution-time error analysis."""

import numpy as np
import pytest

from repro.core.validation import collect_validation_dataset
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import gem5_ex5_little
from repro.workloads.suites import workload_by_name

from tests.conftest import SMALL_FREQS, SMALL_WORKLOADS


class TestDatasetShape:
    def test_run_count(self, small_dataset):
        assert len(small_dataset.runs) == len(SMALL_WORKLOADS) * len(SMALL_FREQS)

    def test_workloads_in_order(self, small_dataset):
        assert small_dataset.workloads == SMALL_WORKLOADS

    def test_lookup(self, small_dataset):
        run = small_dataset.run("mi-qsort", SMALL_FREQS[0])
        assert run.workload == "mi-qsort"
        assert run.freq_hz == SMALL_FREQS[0]

    def test_lookup_missing(self, small_dataset):
        with pytest.raises(KeyError):
            small_dataset.run("mi-qsort", 123.0)

    def test_runs_at_frequency(self, small_dataset):
        runs = small_dataset.runs_at(SMALL_FREQS[1])
        assert [r.workload for r in runs] == list(SMALL_WORKLOADS)

    def test_core_mismatch_rejected(self, platform_a15):
        little = Gem5Simulation(gem5_ex5_little(), trace_instructions=8_000)
        with pytest.raises(ValueError, match="core"):
            collect_validation_dataset(
                platform_a15, little, [workload_by_name("mi-sha")], SMALL_FREQS
            )

    def test_empty_workloads_rejected(self, platform_a15, gem5_sim_a15):
        with pytest.raises(ValueError, match="no workloads"):
            collect_validation_dataset(platform_a15, gem5_sim_a15, [], SMALL_FREQS)

    def test_progress_callback(self, platform_a15, gem5_sim_a15):
        calls = []
        collect_validation_dataset(
            platform_a15,
            gem5_sim_a15,
            [workload_by_name("mi-sha")],
            SMALL_FREQS,
            progress=lambda w, f, i, n: calls.append((w, i, n)),
        )
        assert len(calls) == 2
        assert calls[-1][1] == calls[-1][2] == 2


class TestErrorStatistics:
    def test_sign_convention(self, small_dataset):
        run = small_dataset.run("par-basicmath-rad2deg", SMALL_FREQS[1])
        # The buggy model overestimates this workload's time => negative.
        assert run.time_percentage_error < -100

    def test_mpe_le_mape_in_magnitude(self, small_dataset):
        for freq in SMALL_FREQS:
            assert abs(small_dataset.time_mpe(freq)) <= small_dataset.time_mape(freq)

    def test_whole_sweep_aggregation(self, small_dataset):
        per_freq = [small_dataset.time_mape(f) for f in SMALL_FREQS]
        overall = small_dataset.time_mape()
        assert min(per_freq) <= overall <= max(per_freq)

    def test_errors_at_ordering(self, small_dataset):
        errors = small_dataset.errors_at(SMALL_FREQS[0])
        assert len(errors) == len(SMALL_WORKLOADS)
        index = list(SMALL_WORKLOADS).index("par-basicmath-rad2deg")
        run = small_dataset.run("par-basicmath-rad2deg", SMALL_FREQS[0])
        assert errors[index] == pytest.approx(run.time_percentage_error)

    def test_mpe_more_positive_at_higher_frequency(self, small_dataset):
        """The paper: 'the MPE ... becomes gradually more positive with
        frequency' (the model's too-low DRAM latency matters more)."""
        assert small_dataset.time_mpe(SMALL_FREQS[1]) > small_dataset.time_mpe(
            SMALL_FREQS[0]
        )

    def test_suite_stats(self, small_dataset):
        mape, mpe = small_dataset.suite_time_stats(["parsec"])
        assert mape >= abs(mpe)
        with pytest.raises(ValueError):
            small_dataset.suite_time_stats(["spec"])


class TestMatrices:
    def test_pmc_rate_matrix_shape(self, small_dataset):
        matrix, events = small_dataset.pmc_rate_matrix(SMALL_FREQS[0])
        assert matrix.shape == (len(SMALL_WORKLOADS), len(events))
        assert 0x08 in events

    def test_pmc_rates_are_totals_over_time(self, small_dataset):
        matrix, events = small_dataset.pmc_rate_matrix(SMALL_FREQS[0], [0x08])
        run = small_dataset.runs_at(SMALL_FREQS[0])[0]
        assert matrix[0, 0] == pytest.approx(run.hw.pmc[0x08] / run.hw_time)

    def test_total_matrix(self, small_dataset):
        totals, events = small_dataset.pmc_total_matrix(SMALL_FREQS[0], [0x08, 0x11])
        assert totals.shape == (len(SMALL_WORKLOADS), 2)
        assert (totals > 0).all()

    def test_gem5_rate_matrix(self, small_dataset):
        matrix, stats = small_dataset.gem5_rate_matrix(SMALL_FREQS[0])
        assert matrix.shape[0] == len(SMALL_WORKLOADS)
        assert "commit.committedInsts" in stats
        assert np.isfinite(matrix).all()
