"""Tests for the power/energy evaluation and DVFS scaling (Section VI)."""

import pytest

from repro.core.energy import big_little_scaling, compare_power_energy, dvfs_scaling
from repro.core.error_id import cluster_workloads
from repro.core.power_model import PowerModelApplication

from tests.conftest import SMALL_FREQS

FREQ = SMALL_FREQS[1]


@pytest.fixture(scope="module")
def clusters(small_gemstone):
    return small_gemstone.workload_clusters


@pytest.fixture(scope="module")
def application(small_gemstone):
    return small_gemstone.application


@pytest.fixture(scope="module")
def comparison(small_gemstone):
    return small_gemstone.power_energy


class TestPowerEnergyComparison:
    def test_row_count(self, comparison, small_gemstone):
        dataset = small_gemstone.dataset
        assert len(comparison.rows) == len(dataset.workloads) * len(
            dataset.frequencies
        )

    def test_power_error_much_smaller_than_energy_error(self, comparison):
        """Section VI's central finding: the power error is small despite
        large event errors, but energy inherits the time error."""
        assert comparison.power_mape() < 25.0
        assert comparison.energy_mape() > 2.0 * comparison.power_mape()

    def test_energy_mpe_negative(self, comparison):
        """The buggy model overestimates time => overestimates energy."""
        assert comparison.energy_mpe() < -15.0

    def test_cluster_table_structure(self, comparison):
        table = comparison.cluster_table()
        assert table
        for row in table.values():
            assert row["power_mape"] >= 0
            assert row["energy_mape"] >= 0

    def test_energy_error_varies_across_clusters(self, comparison):
        """'The energy MAPE of each cluster varies significantly'."""
        table = comparison.cluster_table()
        energies = [row["energy_mape"] for row in table.values()]
        assert max(energies) > 3 * min(energies)

    def test_component_breakdown(self, comparison):
        hw = comparison.mean_components("hw")
        gem5 = comparison.mean_components("gem5")
        assert set(hw) == set(gem5)
        assert "intercept" in hw
        assert hw["intercept"] > 0

    def test_component_breakdown_unknown_source(self, comparison):
        with pytest.raises(ValueError):
            comparison.mean_components("sensor")

    def test_row_ape_definitions(self, comparison):
        row = comparison.rows[0]
        assert row.power_ape == pytest.approx(
            abs((row.hw_power_w - row.gem5_power_w) / row.hw_power_w) * 100
        )


class TestDvfsScaling:
    @pytest.fixture(scope="class")
    def scaling(self, small_gemstone):
        return small_gemstone.dvfs

    def test_base_frequency_rows_are_unity(self, scaling):
        for row in scaling.at(scaling.base_freq_hz):
            assert row.hw_speedup == pytest.approx(1.0)
            assert row.hw_energy_ratio == pytest.approx(1.0)
            assert row.gem5_speedup == pytest.approx(1.0)

    def test_speedup_between_one_and_clock_ratio(self, scaling):
        stats = scaling.speedup_stats(SMALL_FREQS[1], "hw")
        clock_ratio = SMALL_FREQS[1] / SMALL_FREQS[0]
        assert 1.0 < stats["mean"] <= clock_ratio + 1e-6
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_model_speedup_range_narrower(self, scaling):
        """Fig. 8: 'the model does not capture the workload diversity'."""
        hw = scaling.speedup_stats(SMALL_FREQS[1], "hw")
        gem5 = scaling.speedup_stats(SMALL_FREQS[1], "gem5")
        assert (gem5["max"] - gem5["min"]) < (hw["max"] - hw["min"]) * 1.05

    def test_energy_increases_with_frequency(self, scaling):
        stats = scaling.energy_stats(SMALL_FREQS[1], "hw")
        assert stats["mean"] > 1.0

    def test_unknown_source(self, scaling):
        with pytest.raises(ValueError):
            scaling.speedup_stats(SMALL_FREQS[1], "sensor")

    def test_missing_frequency(self, scaling):
        with pytest.raises(ValueError):
            scaling.speedup_stats(123.0, "hw")


class TestBigLittle:
    def test_requires_matching_workloads(self, small_dataset):
        import dataclasses
        other = dataclasses.replace(
            small_dataset, workloads=("different",), runs=small_dataset.runs
        )
        with pytest.raises(ValueError):
            big_little_scaling(other, small_dataset)
