"""Tests for the iterative model-improvement loop."""

import pytest

from repro.core.improvement import (
    iterative_improvement,
    standard_fixes,
)
from repro.sim.machine import gem5_ex5_big, hardware_a15
from repro.workloads.suites import workload_by_name

WORKLOADS = tuple(
    workload_by_name(name)
    for name in (
        "par-basicmath-rad2deg", "mi-bitcount", "mi-sha", "mi-qsort",
        "parsec-canneal-1", "dhrystone", "whetstone", "mi-fft",
    )
)


@pytest.fixture(scope="module")
def result():
    hw = hardware_a15()
    return iterative_improvement(
        hw,
        gem5_ex5_big(),
        WORKLOADS,
        standard_fixes(hw),
        trace_instructions=10_000,
    )


class TestLoop:
    def test_mape_monotonically_decreases(self, result):
        mapes = [result.initial_mape] + [s.mape for s in result.steps]
        assert all(b < a for a, b in zip(mapes, mapes[1:]))

    def test_bp_fixed_first(self, result):
        """The dominant error must be repaired first (Section IV-F)."""
        assert result.steps
        assert result.steps[0].applied == "branch predictor"

    def test_substantial_overall_improvement(self, result):
        assert result.final_mape < result.initial_mape * 0.5

    def test_final_machine_differs_from_start(self, result):
        assert result.final_machine.predictor == "tournament"

    def test_audit_trail_renders(self, result):
        text = result.summary()
        assert "initial:" in text
        assert "branch predictor" in text

    def test_steps_unique(self, result):
        names = [s.applied for s in result.steps]
        assert len(names) == len(set(names))

    def test_remaining_disjoint_from_applied(self, result):
        applied = {s.applied for s in result.steps}
        assert not applied & set(result.remaining)


class TestValidation:
    def test_empty_workloads_rejected(self):
        hw = hardware_a15()
        with pytest.raises(ValueError):
            iterative_improvement(hw, gem5_ex5_big(), [], standard_fixes(hw))

    def test_empty_fixes_rejected(self):
        hw = hardware_a15()
        with pytest.raises(ValueError):
            iterative_improvement(hw, gem5_ex5_big(), WORKLOADS, {})

    def test_max_rounds_respected(self):
        hw = hardware_a15()
        result = iterative_improvement(
            hw, gem5_ex5_big(), WORKLOADS[:4], standard_fixes(hw),
            trace_instructions=6_000, max_rounds=1,
        )
        assert len(result.steps) <= 1

    def test_useless_fix_never_accepted(self):
        hw = hardware_a15()
        result = iterative_improvement(
            hw,
            gem5_ex5_big(),
            WORKLOADS[:4],
            {"no-op": lambda m: m},
            trace_instructions=6_000,
        )
        assert not result.steps
        assert result.remaining == ("no-op",)
        assert result.final_mape == result.initial_mape
