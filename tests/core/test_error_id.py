"""Tests for the source-of-error identification analyses (Section IV)."""

import numpy as np
import pytest

from repro.core.error_id import (
    cluster_workloads,
    error_regression,
    gem5_error_correlation,
    pmc_error_correlation,
)
from repro.events.armv7_pmu import event_name

from tests.conftest import SMALL_FREQS, SMALL_WORKLOADS

FREQ = SMALL_FREQS[1]


@pytest.fixture(scope="module")
def workload_clusters(small_dataset):
    return cluster_workloads(small_dataset, FREQ, n_clusters=5)


class TestWorkloadClustering:
    def test_cluster_count(self, workload_clusters):
        assert workload_clusters.clusters.n_clusters == 5

    def test_errors_aligned_with_names(self, workload_clusters, small_dataset):
        assert len(workload_clusters.errors) == len(SMALL_WORKLOADS)
        np.testing.assert_allclose(
            workload_clusters.errors, small_dataset.errors_at(FREQ)
        )

    def test_cluster_mpe_covers_all_clusters(self, workload_clusters):
        table = workload_clusters.cluster_mpe()
        assert set(table) == set(range(1, 6))

    def test_cluster_mape_ge_abs_mpe(self, workload_clusters):
        mpes = workload_clusters.cluster_mpe()
        mapes = workload_clusters.cluster_mape()
        for cluster in mpes:
            assert mapes[cluster] >= abs(mpes[cluster]) - 1e-9

    def test_extreme_workload_is_pathological(self, workload_clusters):
        name, cluster, error = workload_clusters.extreme_workload()
        assert name == "par-basicmath-rad2deg"
        assert error < -100

    def test_extreme_workload_cluster_carries_extreme_error(self, workload_clusters):
        """Paper observation 3 at small scale: the extreme workload's
        cluster has a markedly more negative mean error than the overall
        mean (full isolation is asserted by the full-scale Fig. 3 bench)."""
        _, cluster, _ = workload_clusters.extreme_workload()
        cluster_mpe = workload_clusters.cluster_mpe()[cluster]
        overall = float(np.mean(workload_clusters.errors))
        assert cluster_mpe < overall

    def test_ordered_rows_sorted_by_cluster(self, workload_clusters):
        rows = workload_clusters.ordered_rows()
        labels = [cluster for _, cluster, _ in rows]
        assert labels == sorted(labels)
        assert len(rows) == len(SMALL_WORKLOADS)


class TestPmcCorrelation:
    @pytest.fixture(scope="class")
    def correlation(self, small_dataset):
        return pmc_error_correlation(small_dataset, FREQ, n_event_clusters=8)

    def test_all_events_have_correlations(self, correlation):
        assert len(correlation.event_names) == len(correlation.correlations)
        for value in correlation.correlations:
            assert -1.0 <= value <= 1.0

    def test_branch_rate_negatively_correlated(self, correlation):
        """Section IV-B: branch/control-flow events have the largest
        negative correlation with the error."""
        assert correlation.correlation_of(event_name(0x76)) < -0.3

    def test_sync_events_positively_correlated(self, correlation):
        """Section IV-B Cluster 1: barriers/exclusives correlate positively
        (the model's sync costs are too low)."""
        assert correlation.correlation_of(event_name(0x7E)) > 0.1

    def test_mispredict_correlation_smaller_than_branch_rate(self, correlation):
        """'the rate of branch mispredictions (0x10) has a negative but
        notably smaller (in magnitude) correlation'."""
        mispredict = correlation.correlation_of(event_name(0x10))
        branch_rate = correlation.correlation_of(event_name(0x76))
        assert abs(mispredict) < abs(branch_rate)


class TestGem5Correlation:
    @pytest.fixture(scope="class")
    def correlation(self, small_dataset):
        return gem5_error_correlation(small_dataset, FREQ, min_abs_correlation=0.3)

    def test_only_strong_correlations_kept(self, correlation):
        for value in correlation.correlations:
            assert abs(value) >= 0.3

    def test_walker_cache_events_negative(self, correlation):
        """Section IV-C Cluster A: itb walker-cache events are strongly
        negatively correlated with the error."""
        walker = [
            corr
            for name, corr in zip(correlation.event_names, correlation.correlations)
            if "itb_walker_cache" in name and name.endswith("_accesses")
        ]
        assert walker, "walker-cache events missing from strong correlations"
        assert max(walker) < -0.3

    def test_walker_and_mispredicts_share_cluster(self, correlation):
        """The BP->ITLB causal chain: walker traffic and branch mispredicts
        co-vary, landing in the same event cluster."""
        clusters = correlation.clusters
        names = correlation.event_names
        walker = next(n for n in names if "itb_walker_cache.ReadReq_accesses" in n)
        mispredicts = next(n for n in names if "branchPred.condIncorrect" in n)
        assert clusters.cluster_of(walker) == clusters.cluster_of(mispredicts)


class TestErrorRegression:
    def test_hw_regression_explains_error(self, small_dataset):
        """Section IV-D: HW PMCs alone predict the gem5 error (R^2 0.97)."""
        regression = error_regression(small_dataset, FREQ, source="hw")
        assert regression.r2 > 0.85
        assert 1 <= len(regression.selected) <= 10

    def test_gem5_regression_explains_error(self, small_dataset):
        regression = error_regression(small_dataset, FREQ, source="gem5")
        assert regression.r2 > 0.9

    def test_selection_trace_consistent(self, small_dataset):
        regression = error_regression(small_dataset, FREQ, source="hw")
        assert regression.best_predictor == regression.selected[0]
        assert regression.adjusted_r2 <= regression.r2 + 1e-12

    def test_unknown_source(self, small_dataset):
        with pytest.raises(ValueError):
            error_regression(small_dataset, FREQ, source="mcpat")


class TestDegradedClustering:
    """Field-data hardening: sparse datasets degrade, never raise."""

    def _subset(self, small_dataset, keep):
        from repro.core.validation import ValidationDataset

        return ValidationDataset(
            core=small_dataset.core,
            gem5_model=small_dataset.gem5_model,
            runs=[r for r in small_dataset.runs if r.workload in keep],
            workloads=small_dataset.workloads,
            frequencies=small_dataset.frequencies,
        )

    def test_single_workload_degrades_to_one_cluster(self, small_dataset):
        sparse = self._subset(small_dataset, {SMALL_WORKLOADS[0]})
        analysis = cluster_workloads(sparse, FREQ, n_clusters=5)
        assert analysis.clusters.labels == (1,)
        assert any("single-cluster" in note for note in analysis.degraded)

    def test_missing_workloads_are_noted(self, small_dataset):
        keep = set(SMALL_WORKLOADS[:4])
        sparse = self._subset(small_dataset, keep)
        analysis = cluster_workloads(sparse, FREQ, n_clusters=3)
        assert analysis.clusters.n_clusters == 3
        assert any("uncollected" in note for note in analysis.degraded)

    def test_full_dataset_carries_no_notes(self, workload_clusters):
        assert workload_clusters.degraded == ()
