"""Cross-module integration tests: the paper's claims end-to-end.

These run on the shared small fixture (13 workloads, two OPPs) and assert
the *relationships* between pipeline products that the paper's argument
rests on — the things no single-module unit test can check.
"""

import numpy as np
import pytest

from tests.conftest import SMALL_FREQS

FREQ = SMALL_FREQS[1]


class TestEndToEndConsistency:
    def test_dataset_times_match_simulators(self, small_gemstone):
        """The collated dataset must agree with direct simulator queries."""
        run = small_gemstone.dataset.run("mi-sha", FREQ)
        from repro.workloads.suites import workload_by_name

        profile = workload_by_name("mi-sha")
        stats = small_gemstone.gem5.run(profile, FREQ)
        assert run.gem5_time == pytest.approx(stats.sim_seconds)
        measurement = small_gemstone.platform.characterize(profile, FREQ)
        assert run.hw_time == pytest.approx(measurement.time_seconds)

    def test_same_work_on_both_machines(self, small_gemstone):
        """HW and gem5 must execute the identical amount of work — the
        precondition for every comparison in the paper."""
        for run in small_gemstone.dataset.runs_at(FREQ):
            hw_insts = run.hw.pmc[0x08]
            gem5_insts = run.gem5.value("commit.committedInsts")
            assert gem5_insts == pytest.approx(hw_insts, rel=0.02), run.workload

    def test_power_model_events_all_available_in_both_sources(self, small_gemstone):
        """The Section V design constraint: every model event must be
        measurable on HW and derivable from gem5 stats."""
        model = small_gemstone.power_model
        run = small_gemstone.dataset.runs_at(FREQ)[0]
        for event in model.required_events():
            assert event in run.hw.pmc
        rates = small_gemstone.application.gem5_rates(run.gem5)
        assert set(rates) == set(model.required_events())

    def test_energy_equals_power_times_time(self, small_gemstone):
        comparison = small_gemstone.power_energy
        for row in comparison.rows[:10]:
            run = small_gemstone.dataset.run(row.workload, row.freq_hz)
            assert row.hw_energy_j == pytest.approx(
                row.hw_power_w * run.hw_time
            )
            assert row.gem5_energy_j == pytest.approx(
                row.gem5_power_w * run.gem5_time
            )

    def test_error_chain_bp_to_time(self, small_gemstone):
        """Per workload: worse model BP accuracy (relative to HW) must
        coincide with more-negative time error, the causal chain of
        Section IV."""
        comparison = small_gemstone.event_comparison
        errors = {
            r.workload: r.time_percentage_error
            for r in small_gemstone.dataset.runs_at(FREQ)
        }
        accuracy_gap = {
            row.workload: row.hw_accuracy - row.gem5_accuracy
            for row in comparison.bp_accuracy
        }
        workloads = sorted(errors)
        gap = np.array([accuracy_gap[w] for w in workloads])
        err = np.array([errors[w] for w in workloads])
        correlation = np.corrcoef(gap, err)[0, 1]
        assert correlation < -0.6, (
            f"BP damage must drive the time error (r={correlation:.2f})"
        )

    def test_report_numbers_match_dataset(self, small_gemstone):
        """The rendered report quotes the same MAPE the dataset computes."""
        report = small_gemstone.report()
        mape = small_gemstone.dataset.time_mape(FREQ)
        assert f"{mape:.2f}" in report

    def test_determinism_across_pipeline_rebuild(self, small_profiles):
        from repro.core.pipeline import GemStone, GemStoneConfig

        def build():
            gs = GemStone(
                GemStoneConfig(
                    core="A15",
                    workloads=small_profiles[:6],
                    power_workloads=small_profiles[:6],
                    frequencies=SMALL_FREQS,
                    trace_instructions=6_000,
                    n_workload_clusters=3,
                    power_model_terms=2,
                )
            )
            return gs.dataset.time_mpe(FREQ), gs.power_model.quality.mape

        assert build() == build()


class TestSectionViiWorkflow:
    def test_fixed_model_beats_buggy_on_every_loopy_workload(self, small_gemstone):
        fixed = small_gemstone.with_machine("gem5-ex5-big-fixed")
        buggy_errors = {
            r.workload: abs(r.time_percentage_error)
            for r in small_gemstone.dataset.runs_at(FREQ)
        }
        fixed_errors = {
            r.workload: abs(r.time_percentage_error)
            for r in fixed.dataset.runs_at(FREQ)
        }
        loopy = ("par-basicmath-rad2deg", "mi-bitcount")
        for workload in loopy:
            assert fixed_errors[workload] < buggy_errors[workload] / 2, workload

    def test_hardware_side_unchanged_by_model_swap(self, small_gemstone):
        """Swapping the gem5 model must not perturb the HW reference."""
        fixed = small_gemstone.with_machine("gem5-ex5-big-fixed")
        for run_a, run_b in zip(
            small_gemstone.dataset.runs_at(FREQ), fixed.dataset.runs_at(FREQ)
        ):
            assert run_a.hw_time == run_b.hw_time
            assert run_a.hw.pmc == run_b.hw.pmc
