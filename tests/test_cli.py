"""Tests for the gemstone CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("report", "headline", "lmbench", "power-model", "bp-fix"):
            args = parser.parse_args(
                [command] if command == "lmbench" else [command, "--instructions", "8000"]
            )
            assert args.command == command

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_core_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["headline", "--core", "M4"])


class TestExecution:
    def test_lmbench_prints_table(self, capsys):
        assert main(["lmbench", "--machine", "gem5-ex5-big"]) == 0
        out = capsys.readouterr().out
        assert "ns / access" in out
        assert "gem5-ex5-big" in out

    def test_lmbench_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "lat.txt"
        assert main(["lmbench", "--out", str(out_file)]) == 0
        assert "ns / access" in out_file.read_text()

    def test_headline_small(self, capsys):
        assert main(["headline", "--instructions", "4000"]) == 0
        out = capsys.readouterr().out
        assert "time MAPE %" in out
        assert "ALL" in out
