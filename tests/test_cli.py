"""Tests for the gemstone CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("report", "headline", "lmbench", "power-model", "bp-fix"):
            args = parser.parse_args(
                [command] if command == "lmbench" else [command, "--instructions", "8000"]
            )
            assert args.command == command

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_core_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["headline", "--core", "M4"])


class TestExecution:
    def test_lmbench_prints_table(self, capsys):
        assert main(["lmbench", "--machine", "gem5-ex5-big"]) == 0
        out = capsys.readouterr().out
        assert "ns / access" in out
        assert "gem5-ex5-big" in out

    def test_lmbench_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "lat.txt"
        assert main(["lmbench", "--out", str(out_file)]) == 0
        assert "ns / access" in out_file.read_text()

    def test_headline_small(self, capsys):
        assert main(["headline", "--instructions", "4000"]) == 0
        out = capsys.readouterr().out
        assert "time MAPE %" in out
        assert "ALL" in out


class TestJobsFlag:
    def test_jobs_default_is_serial(self):
        args = build_parser().parse_args(["headline"])
        assert args.jobs == 1

    def test_jobs_parsed(self):
        args = build_parser().parse_args(["report", "--jobs", "4"])
        assert args.jobs == 4

    def test_jobs_zero_means_all_cores(self, capsys):
        # 0 maps to GemStoneConfig(jobs=None) = one worker per CPU core.
        assert main(["headline", "--instructions", "4000", "--jobs", "0"]) == 0
        assert "time MAPE %" in capsys.readouterr().out

    def test_headline_parallel_matches_serial(self, capsys):
        assert main(["headline", "--instructions", "4000", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["headline", "--instructions", "4000", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial
