"""Tests for the McPAT-like analytical baseline."""

import pytest

from repro.power_baselines.mcpat_like import McPatLikeModel


@pytest.fixture
def model():
    return McPatLikeModel("A15")


def busy_rates(freq=1e9):
    return {
        "cycles": freq,
        "instructions": 1.5e9,
        "l1_accesses": 0.6e9,
        "l2_accesses": 0.02e9,
        "dram_accesses": 0.003e9,
        "fp_ops": 0.1e9,
    }


class TestEstimate:
    def test_positive_and_plausible(self, model):
        power = model.estimate(busy_rates(), 1.0125, 1e9)
        assert 0.3 < power < 5.0

    def test_scales_with_voltage_squared_dynamic(self, model):
        low = model.estimate(busy_rates(), 0.9, 1e9)
        high = model.estimate(busy_rates(), 1.2, 1e9)
        assert high > low * 1.5

    def test_active_cores_increase_power(self, model):
        assert model.estimate(busy_rates(), 1.0, 1e9, 4) > 2.5 * model.estimate(
            busy_rates(), 1.0, 1e9, 1
        )

    def test_missing_rates_default_zero(self, model):
        assert model.estimate({}, 1.0, 1e9) > 0  # leakage + idle clock tree

    def test_invalid_core_count(self, model):
        with pytest.raises(ValueError):
            model.estimate(busy_rates(), 1.0, 1e9, 5)

    def test_unknown_core(self):
        with pytest.raises(ValueError):
            McPatLikeModel("R5")

    def test_a7_cheaper_than_a15(self):
        a7 = McPatLikeModel("A7").estimate(busy_rates(), 1.0, 1e9)
        a15 = McPatLikeModel("A15").estimate(busy_rates(), 1.0, 1e9)
        assert a7 < a15 / 2


class TestRateAdapter:
    def test_adapts_neutral_counts(self):
        counts = {
            "instructions": 100.0,
            "l1d_rd_accesses": 30.0,
            "l1d_wr_accesses": 10.0,
            "l1i_fetch_accesses": 20.0,
            "l2_rd_accesses": 5.0,
            "l2_wr_accesses": 1.0,
            "dram_reads": 2.0,
            "dram_writes": 1.0,
            "inst_fp": 8.0,
            "inst_simd": 2.0,
        }
        rates = McPatLikeModel.rates_from_counts(counts, 2.0, cycles=400.0)
        assert rates["cycles"] == 200.0
        assert rates["instructions"] == 50.0
        assert rates["l1_accesses"] == 30.0
        assert rates["fp_ops"] == 5.0

    def test_invalid_time(self):
        with pytest.raises(ValueError):
            McPatLikeModel.rates_from_counts({}, 0.0, cycles=1.0)


class TestAgainstGroundTruth:
    def test_less_accurate_than_empirical_model(self, small_gemstone):
        """The paper's core claim: empirical PMC models beat analytical
        ones.  The unfitted McPAT-like baseline must show a clearly larger
        MAPE against the silicon than the fitted Powmon-style model."""
        import numpy as np
        from repro.power_baselines.mcpat_like import McPatLikeModel

        platform = small_gemstone.platform
        model = McPatLikeModel("A15")
        apes = []
        for obs in small_gemstone.power_dataset:
            rates = {
                "cycles": obs.rates[0x11],
                "instructions": obs.rates[0x08],
                "l1_accesses": obs.rates[0x04] + obs.rates[0x14],
                "l2_accesses": obs.rates[0x16],
                "dram_accesses": obs.rates[0x19],
                "fp_ops": obs.rates[0x75] + obs.rates[0x74],
            }
            predicted = model.estimate(rates, obs.voltage, obs.freq_hz, obs.threads)
            apes.append(abs(obs.power_w - predicted) / obs.power_w * 100)
        mcpat_mape = float(np.mean(apes))
        empirical_mape = small_gemstone.power_model.quality.mape
        assert mcpat_mape > 2.0 * empirical_mape
