"""PERF001: per-element Python loops over numpy arrays in hot modules."""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig
from tests.analysis import lint_snippet, rule_ids

PERF = LintConfig(select=frozenset({"PERF001"}))


class TestPerf001Flags:
    @pytest.mark.parametrize(
        "snippet",
        [
            # Direct iteration over a numpy call.
            "import numpy as np\n"
            "def f(mask):\n"
            "    for i in np.flatnonzero(mask):\n"
            "        use(i)\n",
            # Iteration over a name bound to a numpy call.
            "import numpy as np\n"
            "def f(xs):\n"
            "    keys = np.asarray(xs)\n"
            "    for key in keys:\n"
            "        use(key)\n",
            # Through enumerate.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.sort(xs)\n"
            "    for i, x in enumerate(arr):\n"
            "        use(i, x)\n",
            # Through zip, second position.
            "import numpy as np\n"
            "def f(xs, ys):\n"
            "    arr = np.asarray(ys)\n"
            "    for x, y in zip(xs, arr):\n"
            "        use(x, y)\n",
            # The range(len(arr)) index-loop idiom.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    for i in range(len(arr)):\n"
            "        use(arr[i])\n",
            # range(len(arr) - 1) arithmetic still counts.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.cumsum(xs)\n"
            "    for i in range(len(arr) - 1):\n"
            "        use(arr[i])\n",
            # Slices of arrays are arrays.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    tail = arr[1:]\n"
            "    for x in tail:\n"
            "        use(x)\n",
            # Comprehensions are per-element loops too.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    return [x + 1 for x in arr]\n",
        ],
        ids=[
            "direct-call", "bound-name", "enumerate", "zip",
            "range-len", "range-len-arith", "subscript", "comprehension",
        ],
    )
    def test_flags_in_hot_modules(self, snippet):
        assert rule_ids(lint_snippet(snippet, config=PERF)) == ["PERF001"]

    def test_applies_to_uarch_modules(self):
        snippet = (
            "import numpy as np\n"
            "def f(mask):\n"
            "    for i in np.flatnonzero(mask):\n"
            "        use(i)\n"
        )
        findings = lint_snippet(
            snippet, module="repro.uarch.cache", config=PERF
        )
        assert rule_ids(findings) == ["PERF001"]

    def test_severity_is_warning(self):
        snippet = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    for x in np.asarray(xs):\n"
            "        use(x)\n"
        )
        (finding,) = lint_snippet(snippet, config=PERF)
        assert finding.severity.value == "warning"


class TestPerf001Allows:
    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned sequential-residue shape: iterate a list copy.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    for x in arr.tolist():\n"
            "        use(x)\n",
            # Rebinding to .tolist() clears the name.
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    arr = arr.tolist()\n"
            "    for x in arr:\n"
            "        use(x)\n",
            # Plain Python containers are fine.
            "def f(xs):\n"
            "    pairs = [(x, x + 1) for x in xs]\n"
            "    for a, b in pairs:\n"
            "        use(a, b)\n",
            # range over a plain int is fine.
            "def f(n):\n"
            "    for i in range(n):\n"
            "        use(i)\n",
            # len() of a non-numpy value is fine.
            "def f(xs):\n"
            "    for i in range(len(xs)):\n"
            "        use(xs[i])\n",
        ],
        ids=["tolist", "rebind-tolist", "python-list", "range-int",
             "range-len-list"],
    )
    def test_allows_listified_and_plain_loops(self, snippet):
        assert lint_snippet(snippet, config=PERF) == []

    def test_out_of_scope_modules_are_ignored(self):
        snippet = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    for x in np.asarray(xs):\n"
            "        use(x)\n"
        )
        for module in ("repro.core.report", "repro.analysis.engine",
                       "tests.helpers"):
            assert lint_snippet(snippet, module=module, config=PERF) == []

    def test_suppressible_inline(self):
        snippet = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    for x in arr:  # repro: noqa[PERF001]\n"
            "        use(x)\n"
        )
        assert lint_snippet(snippet, config=PERF) == []
