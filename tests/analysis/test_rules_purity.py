"""Per-rule fixture tests for PURE001 / PURE002."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint


class TestPure001SubmittedCallables:
    def test_flags_worker_reading_module_global(self):
        snippet = """
            _cache = {}

            def worker(x):
                return _cache.get(x)

            def run(pool):
                return pool.submit(worker, 1)
        """
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["PURE001"]
        assert "reads module-level mutable state '_cache'" in findings[0].message

    def test_flags_worker_writing_module_global(self):
        snippet = """
            _results = []

            def worker(x):
                _results.append(x)

            def run(pool):
                return pool.submit(worker, 1)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_flags_worker_with_global_statement(self):
        snippet = """
            counter = 0

            def worker(x):
                global counter
                counter += x
                return counter

            def run(pool):
                return pool.submit(worker, 1)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_flags_subscript_write_to_module_global(self):
        snippet = """
            state = {}

            def worker(x):
                state[x] = 1

            def run(pool):
                return pool.submit(worker, 1)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_flags_impure_callee_one_level_deep(self):
        snippet = """
            _seen = []

            def helper(x):
                _seen.append(x)

            def worker(x):
                helper(x)
                return x

            def run(pool):
                return pool.submit(worker, 1)
        """
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["PURE001"]
        assert "calls 'helper'" in findings[0].message

    def test_flags_lambda_submission(self):
        snippet = """
            def run(pool):
                return pool.submit(lambda: 3)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_flags_nested_function_submission(self):
        snippet = """
            def run(pool):
                y = 2

                def closure():
                    return y

                return pool.submit(closure)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_flags_lambda_bound_name_submission(self):
        snippet = """
            def run(pool):
                fn = lambda: 3
                return pool.submit(fn)
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_unwraps_functools_partial(self):
        snippet = """
            import functools

            def run(pool):
                return pool.submit(functools.partial(lambda x: x, 1))
        """
        assert rule_ids(lint_snippet(snippet)) == ["PURE001"]

    def test_allows_pure_module_function(self):
        snippet = """
            SCALE = 2.5

            def worker(x):
                local = [x]
                local.append(SCALE * x)
                return sum(local)

            def run(pool):
                return pool.submit(worker, 1)
        """
        assert lint_snippet(snippet) == []

    def test_allows_parameter_shadowing_global_name(self):
        snippet = """
            _cache = {}

            def worker(_cache):
                return _cache.get(1)

            def run(pool):
                return pool.submit(worker, {})
        """
        assert lint_snippet(snippet) == []

    def test_skips_imported_callables(self):
        # Cross-module callables are out of reach for a single-file pass.
        snippet = """
            from repro.sim.cpu import simulate

            def run(pool, job):
                return pool.submit(simulate, job)
        """
        assert lint_snippet(snippet) == []


class TestPure002MutableDefaults:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(acc=[]):\n    return acc\n",
            "def f(mapping={}):\n    return mapping\n",
            "def f(seen=set()):\n    return seen\n",
            "def f(items=list()):\n    return items\n",
            "def f(*, acc=[]):\n    return acc\n",
            "from collections import defaultdict\ndef f(d=defaultdict(list)):\n    return d\n",
            "g = lambda acc=[]: acc\n",
        ],
        ids=["list", "dict", "set", "list-call", "kwonly", "defaultdict", "lambda"],
    )
    def test_flags_mutable_defaults(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["PURE002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(acc=None):\n    return acc or []\n",
            "def f(items=()):\n    return items\n",
            "def f(n=3, name='x', flag=True):\n    return n\n",
            "def f(pool=frozenset()):\n    return pool\n",
        ],
        ids=["none", "tuple", "scalars", "frozenset"],
    )
    def test_allows_immutable_defaults(self, snippet):
        assert lint_snippet(snippet) == []

    def test_counts_each_default_separately(self):
        snippet = "def f(a=[], b={}):\n    return a, b\n"
        assert rule_ids(lint_snippet(snippet)) == ["PURE002", "PURE002"]
