"""Known-bad fixture for the suppression paths.

One correctly suppressed DET002 (no finding), one stale suppression
(SUP001), and one blanket suppression (SUP002).  Linted with
``--assume-module repro.sim._fixture``; never imported.
"""

import time


def suppressed_wall_clock():
    return time.time()  # repro: noqa[DET002]


def stale_suppression():
    return 1  # repro: noqa[DET001]


def blanket_suppression():
    return 2  # repro: noqa
