"""Known-bad multi-file project for interprocedural rule tests.

The ``xproj`` directory has no ``__init__.py``, so module derivation
stops there and these files lint as ``repro.sim.guard``,
``repro.jobs.submitter`` etc. — i.e. under the real rule scopes, without
``--assume-module``.  Each file seeds exactly the findings its docstring
names; the tests assert exact counts, so keep them minimal.
"""
