"""In-scope consumer of a clock-tainted helper: exactly one DET004."""

from repro.clockutil import stamp


def annotate(result):
    started = stamp()  # DET004: wall-clock value crosses into scope
    return (result, started)
