"""Known-bad watchdog: exactly one THR001, one THR002, one THR003."""

import threading


class Watchdog:
    def __init__(self):
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._stalled = 0
        self._flagged = False
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._supervise)
        self._thread.start()

    def _supervise(self):
        while not self._stop.is_set():
            self._stalled = self._stalled + 1  # THR001: unlocked shared write
            with self._lock:
                self._flagged = True

    def flagged(self):
        return self._flagged  # THR003: unlocked read across the boundary

    def reset(self):
        self._lock.acquire()  # THR002: no with / try-finally
        self._stalled = 0
        self._lock.release()
