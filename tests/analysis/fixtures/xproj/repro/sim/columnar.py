"""Known-bad columnar helpers: exactly one NUM001, NUM002, NUM003."""

import numpy as np


def mixed_upcast(n):
    base = np.zeros(n, dtype=np.float32)
    scale = np.ones(n, dtype=np.float64)
    return base * scale  # NUM001: silent upcast to float64


def count_hits(events):
    hits = events.astype(np.int32)
    return hits.cumsum()  # NUM002: platform-dependent accumulator


def select_rows(values, mask):
    return values[mask]  # NUM003: shapes never asserted
