"""Out-of-scope helper returning wall-clock values (DET004 taint source).

This module is *not* under the deterministic scope, so DET002 stays quiet
here — the leak only becomes a finding at the in-scope call site that
consumes the returned value (``repro.sim.timing``).
"""

import time


def stamp():
    return time.time()
