"""Submit site whose impurity is two cross-module hops away.

Exactly one PURE001 finding — and only from the *project* pass: linted as
a single file, ``job`` looks perfectly pure (the old one-level,
same-module check provably misses this).
"""

from repro.jobs.middle import relay


def job(payload):
    return relay(payload)


def launch(pool, payloads):
    return [pool.submit(job, p) for p in payloads]
