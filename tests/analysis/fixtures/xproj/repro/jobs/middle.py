"""Middle hop: pure itself, but calls the impure leaf."""

from repro.jobs.leaf import remember


def relay(payload):
    return remember(payload["k"], payload["v"])
