"""Leaf module with module-level mutable state (the impurity)."""

_cache = {}


def remember(key, value):
    _cache[key] = value
    return value
