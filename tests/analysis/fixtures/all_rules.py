"""Known-bad fixture: exactly one finding for each core repro-lint rule.

Linted with ``--assume-module repro.sim._fixture`` so the scoped
determinism and performance rules apply; tests assert the reported rule
ids are exactly {DET001, DET002, DET003, OBS001, OBS002 (x2), PERF001,
PURE001, PURE002, ROB001, ROB002, ROB003, ROB004}.  This file is never
imported and is excluded from every self-clean run.
"""

import fcntl
import random
import time

import numpy as np
from concurrent.futures import ProcessPoolExecutor

_tally = {"calls": 0}


def det001():
    return random.random()


def det002():
    return time.time()


def det003(names):
    return [name for name in set(names)]


def pure001_worker(x):
    return _tally["calls"] + x


def pure001():
    with ProcessPoolExecutor() as pool:
        return pool.submit(pure001_worker, 1).result()


def pure002(acc=[]):
    acc.append(1)
    return acc


def rob001():
    try:
        return 1
    except:
        return 0


def rob002(path, payload):
    with open(path, "w") as handle:
        handle.write(payload)


def obs001(value):
    print(value)


def perf001(values):
    keys = np.asarray(values)
    return [key + 1 for key in keys]


def rob003(path):
    try:
        return open(path).read()
    except OSError:
        return None


def rob004(handle):
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    handle.write(b"unsafe between acquire and unlock")
    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def obs002_span(tracer):
    tracer.span("leaked")


def obs002_metric(registry):
    return registry.counter("Bad-Name")
