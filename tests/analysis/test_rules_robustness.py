"""Per-rule fixture tests for ROB001, ROB002, ROB003 and ROB004."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint


class TestRob001SwallowedBaseException:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f():\n    try:\n        return 1\n    except:\n        return 0\n",
            "def f():\n    try:\n        return 1\n    except BaseException:\n        return 0\n",
            "def f():\n    try:\n        return 1\n"
            "    except (ValueError, BaseException):\n        return 0\n",
            "def f():\n    try:\n        return 1\n"
            "    except BaseException as exc:\n        return str(exc)\n",
        ],
        ids=["bare", "base-exception", "tuple", "named"],
    )
    def test_flags_swallowing_handlers(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["ROB001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Catching Exception is policy (graceful degradation), not
            # ROB001 — recorded here so ROB003 stays quiet too.
            "def f(log):\n    try:\n        return 1\n"
            "    except Exception:\n        log.warning('fell back')\n        return 0\n",
            "def f(log):\n    try:\n        return 1\n"
            "    except OSError:\n        log.debug('fell back')\n        return 0\n",
            # Re-raising handlers do not swallow.
            "def f():\n    try:\n        return 1\n"
            "    except BaseException:\n        raise\n",
            "def f():\n    try:\n        return 1\n"
            "    except:\n        log()\n        raise\n",
            "def f():\n    try:\n        return 1\n    finally:\n        pass\n",
        ],
        ids=["exception", "oserror", "reraise", "log-reraise", "finally"],
    )
    def test_allows_narrow_or_reraising_handlers(self, snippet):
        assert lint_snippet(snippet) == []

    def test_flags_each_bad_handler(self):
        snippet = (
            "def f(log):\n"
            "    try:\n"
            "        return 1\n"
            "    except ValueError:\n"
            "        log.debug('fell back')\n"
            "        return 2\n"
            "    except BaseException:\n"
            "        return 0\n"
        )
        assert rule_ids(lint_snippet(snippet)) == ["ROB001"]


class TestRob003SilentDegradation:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(path):\n    try:\n        return open(path).read()\n"
            "    except OSError:\n        return None\n",
            "def f(x):\n    try:\n        return 1 / x\n"
            "    except (ZeroDivisionError, OverflowError):\n        return 0.0\n",
            "def f(x):\n    try:\n        return int(x)\n"
            "    except ValueError as exc:\n        pass\n",
        ],
        ids=["return-default", "tuple", "pass"],
    )
    def test_flags_silent_handlers(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["ROB003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # A log line is the minimum acceptable trace.
            "def f(log, path):\n    try:\n        return open(path).read()\n"
            "    except OSError:\n        log.debug('unreadable')\n        return None\n",
            # Bumping a telemetry counter records the degradation.
            "def f(self, x):\n    try:\n        return int(x)\n"
            "    except ValueError:\n        self.telemetry.rejected += 1\n"
            "        return 0\n",
            # Constructing a GuardEvent is the guard layer's record.
            "def f(events, x):\n    try:\n        return int(x)\n"
            "    except ValueError:\n"
            "        events.append(GuardEvent(kind='bad'))\n        return 0\n",
            # Raising a transformed error propagates, nothing is hidden.
            "def f(x):\n    try:\n        return int(x)\n"
            "    except ValueError as exc:\n        raise RuntimeError(x) from exc\n",
            # Tracer events count as emission.
            "def f(tracer, x):\n    try:\n        return int(x)\n"
            "    except ValueError:\n        tracer.event('guard')\n        return 0\n",
        ],
        ids=["log", "counter", "guard-event", "transform-raise", "tracer"],
    )
    def test_allows_recording_handlers(self, snippet):
        assert lint_snippet(snippet) == []

    def test_bare_handlers_are_rob001s_domain(self):
        # One bad handler never double-reports across the two rules.
        snippet = "def f():\n    try:\n        return 1\n    except:\n        return 0\n"
        assert rule_ids(lint_snippet(snippet)) == ["ROB001"]

    def test_out_of_scope_modules_are_not_checked(self):
        snippet = (
            "def f(x):\n    try:\n        return int(x)\n"
            "    except ValueError:\n        return 0\n"
        )
        assert lint_snippet(snippet, module="repro.core._snippet") == []


class TestRob002NonAtomicWrite:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(path):\n    with open(path, 'w') as h:\n        h.write('x')\n",
            "def f(path):\n    with open(path, 'wb') as h:\n        h.write(b'x')\n",
            "def f(path):\n    with open(path, 'x') as h:\n        h.write('x')\n",
            "def f(path):\n    with open(path, mode='w') as h:\n        h.write('x')\n",
            "import io\n\ndef f(path):\n    return io.open(path, 'w')\n",
            "import os\n\ndef f(a, b):\n    os.rename(a, b)\n",
            "from os import rename\n\ndef f(a, b):\n    rename(a, b)\n",
        ],
        ids=[
            "write", "write-binary", "exclusive", "mode-kw",
            "io-open", "os-rename", "from-import-rename",
        ],
    )
    def test_flags_in_place_writes(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["ROB002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Reads are fine, with or without an explicit mode.
            "def f(path):\n    with open(path) as h:\n        return h.read()\n",
            "def f(path):\n    with open(path, 'rb') as h:\n        return h.read()\n",
            # Append-only journals are the sanctioned non-atomic pattern.
            "def f(path):\n    with open(path, 'a') as h:\n        h.write('x')\n",
            # A dynamic mode expression gets the benefit of the doubt.
            "def f(path, mode):\n    return open(path, mode)\n",
            # os.replace is the atomic spelling ROB002 asks for.
            "import os\n\ndef f(a, b):\n    os.replace(a, b)\n",
        ],
        ids=["read", "read-binary", "append", "dynamic-mode", "os-replace"],
    )
    def test_allows_reads_appends_and_replace(self, snippet):
        assert lint_snippet(snippet) == []

    def test_out_of_scope_modules_are_not_checked(self):
        snippet = "def f(path):\n    return open(path, 'w')\n"
        assert lint_snippet(snippet, module="repro.workloads._snippet") == []
        assert rule_ids(
            lint_snippet(snippet, module="repro.core._snippet")
        ) == ["ROB002"]


class TestRob004FileLockRelease:
    SAFE = (
        "import fcntl\n"
        "def f(handle):\n"
        "    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)\n"
        "    try:\n"
        "        return handle.read()\n"
        "    finally:\n"
        "        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)\n"
    )
    UNSAFE = (
        "import fcntl\n"
        "def f(handle):\n"
        "    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)\n"
        "    data = handle.read()\n"
        "    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)\n"
        "    return data\n"
    )

    def test_acquire_with_immediate_try_finally_unlock_is_clean(self):
        assert lint_snippet(self.SAFE) == []

    def test_unprotected_statements_after_acquire_are_flagged(self):
        assert rule_ids(lint_snippet(self.UNSAFE)) == ["ROB004"]

    def test_close_in_finally_counts_as_release(self):
        snippet = (
            "import fcntl\n"
            "def f(handle):\n"
            "    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)\n"
            "    try:\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        assert lint_snippet(snippet) == []

    def test_lockf_and_from_import_and_composed_flags_are_seen(self):
        snippet = (
            "from fcntl import lockf, LOCK_EX, LOCK_NB\n"
            "def f(handle):\n"
            "    lockf(handle, LOCK_EX | LOCK_NB)\n"
            "    return handle.read()\n"
        )
        assert rule_ids(lint_snippet(snippet)) == ["ROB004"]

    def test_unlock_and_shared_reads_outside_scope_stay_quiet(self):
        # LOCK_UN alone is not an acquisition, and outside repro.sim the
        # rule does not apply at all.
        unlock_only = (
            "import fcntl\n"
            "def f(handle):\n"
            "    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)\n"
        )
        assert lint_snippet(unlock_only) == []
        assert lint_snippet(self.UNSAFE, module="repro.core._snippet") == []
