"""Per-rule fixture tests for ROB001."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint


class TestRob001SwallowedBaseException:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f():\n    try:\n        return 1\n    except:\n        return 0\n",
            "def f():\n    try:\n        return 1\n    except BaseException:\n        return 0\n",
            "def f():\n    try:\n        return 1\n"
            "    except (ValueError, BaseException):\n        return 0\n",
            "def f():\n    try:\n        return 1\n"
            "    except BaseException as exc:\n        return str(exc)\n",
        ],
        ids=["bare", "base-exception", "tuple", "named"],
    )
    def test_flags_swallowing_handlers(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["ROB001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Catching Exception is policy (graceful degradation), not ROB001.
            "def f():\n    try:\n        return 1\n    except Exception:\n        return 0\n",
            "def f():\n    try:\n        return 1\n    except OSError:\n        return 0\n",
            # Re-raising handlers do not swallow.
            "def f():\n    try:\n        return 1\n"
            "    except BaseException:\n        raise\n",
            "def f():\n    try:\n        return 1\n"
            "    except:\n        log()\n        raise\n",
            "def f():\n    try:\n        return 1\n    finally:\n        pass\n",
        ],
        ids=["exception", "oserror", "reraise", "log-reraise", "finally"],
    )
    def test_allows_narrow_or_reraising_handlers(self, snippet):
        assert lint_snippet(snippet) == []

    def test_flags_each_bad_handler(self):
        snippet = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except ValueError:\n"
            "        return 2\n"
            "    except BaseException:\n"
            "        return 0\n"
        )
        assert rule_ids(lint_snippet(snippet)) == ["ROB001"]
