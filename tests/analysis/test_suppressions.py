"""Suppression (`# repro: noqa[RULE]`) and suppression-hygiene tests."""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig
from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint


class TestSuppression:
    def test_same_line_suppression_consumes_finding(self):
        snippet = (
            "import time\n"
            "t = time.time()  # repro: noqa[DET002]\n"
        )
        assert lint_snippet(snippet) == []

    def test_suppression_is_rule_specific(self):
        snippet = (
            "import time\n"
            "t = time.time()  # repro: noqa[DET001]\n"
        )
        # The DET002 finding survives, and the DET001 escape is stale.
        assert rule_ids(lint_snippet(snippet)) == ["DET002", "SUP001"]

    def test_multiple_rules_in_one_comment(self):
        snippet = (
            "import time\n"
            "import random\n"
            "t = time.time() + random.random()  # repro: noqa[DET001, DET002]\n"
        )
        assert lint_snippet(snippet) == []

    def test_suppression_only_covers_its_own_line(self):
        snippet = (
            "import time\n"
            "a = time.time()  # repro: noqa[DET002]\n"
            "b = time.time()\n"
        )
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["DET002"]
        assert findings[0].line == 3


class TestSuppressionHygiene:
    def test_unused_suppression_is_sup001(self):
        snippet = "x = 1  # repro: noqa[DET002]\n"
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["SUP001"]
        assert "DET002" in findings[0].message

    def test_blanket_suppression_is_sup002(self):
        snippet = "x = 1  # repro: noqa\n"
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["SUP002"]
        assert "blanket" in findings[0].message

    def test_unknown_rule_id_is_sup002(self):
        snippet = "x = 1  # repro: noqa[DET999]\n"
        findings = lint_snippet(snippet)
        assert rule_ids(findings) == ["SUP002"]
        assert "DET999" in findings[0].message

    def test_empty_rule_list_is_sup002(self):
        snippet = "x = 1  # repro: noqa[]\n"
        assert rule_ids(lint_snippet(snippet)) == ["SUP002"]

    def test_unused_suppression_out_of_scope_still_flagged(self):
        # DET002 never runs for this module, so the escape can never fire.
        snippet = "import time\nt = time.time()  # repro: noqa[DET002]\n"
        findings = lint_snippet(snippet, module="repro.analysis.engine")
        assert rule_ids(findings) == ["SUP001"]

    def test_deselected_rules_do_not_report_unused(self):
        # A partial run (--select) must not call suppressions of the
        # excluded rules stale.
        config = LintConfig(select=frozenset({"DET002", "SUP001"}))
        snippet = (
            "import time\n"
            "x = 1  # repro: noqa[DET003]\n"
            "t = time.time()  # repro: noqa[DET002]\n"
            "y = 2  # repro: noqa[DET002]\n"
        )
        findings = lint_snippet(snippet, config=config)
        assert rule_ids(findings) == ["SUP001"]
        assert findings[0].line == 4
