"""THR rule family: thread-safety checks scoped to the watchdog/obs trees."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint

GUARD_MODULE = "repro.sim.guard"


def thr_ids(source: str, module: str = GUARD_MODULE) -> list[str]:
    findings = lint_snippet(source, module=module)
    return [f.rule for f in findings if f.rule.startswith("THR")]


WATCHDOG_TEMPLATE = """
    import threading

    class Watchdog:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def start(self):
            threading.Thread(target=self._run).start()

        def _run(self):
            {thread_body}

        def snapshot(self):
            {main_body}
"""


class TestTHR001SharedWrite:
    def test_unlocked_thread_write_to_shared_attr_fires(self):
        source = WATCHDOG_TEMPLATE.format(
            thread_body="self._count = self._count + 1",
            main_body="return self._count",
        )
        assert thr_ids(source) == ["THR001"]

    def test_locked_write_is_clean(self):
        source = WATCHDOG_TEMPLATE.format(
            thread_body=(
                "with self._lock:\n                self._count = 1"
            ),
            main_body="return self._count",
        )
        assert thr_ids(source) == []

    def test_thread_private_attr_is_clean(self):
        # _count is only ever touched on the thread side: not shared.
        source = """
            import threading

            class Watchdog:
                def __init__(self):
                    self._lock = threading.Lock()

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self._scratch = 1
        """
        assert thr_ids(source) == []

    def test_write_in_callee_of_thread_target_fires(self):
        # The race is one call-graph hop below the Thread target.
        source = """
            import threading

            class Watchdog:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self._bump()

                def _bump(self):
                    self._count = self._count + 1

                def snapshot(self):
                    return self._count
        """
        findings = lint_snippet(source, module=GUARD_MODULE)
        [thr] = [f for f in findings if f.rule == "THR001"]
        assert "'_bump'" in thr.message

    def test_no_thread_spawn_means_no_findings(self):
        source = """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    self._count = self._count + 1
        """
        assert thr_ids(source) == []

    def test_out_of_scope_module_is_clean(self):
        source = WATCHDOG_TEMPLATE.format(
            thread_body="self._count = self._count + 1",
            main_body="return self._count",
        )
        assert thr_ids(source, module="repro.sim.columnar") == []


class TestTHR002AcquireRelease:
    def test_bare_acquire_fires(self):
        source = """
            def touch(lock):
                lock.acquire()
                lock.release()
        """
        assert thr_ids(source) == ["THR002"]

    def test_try_finally_shape_is_clean(self):
        source = """
            def touch(lock):
                lock.acquire()
                try:
                    pass
                finally:
                    lock.release()
        """
        assert thr_ids(source) == []

    def test_finally_releasing_a_different_lock_fires(self):
        source = """
            def touch(lock, other_lock):
                lock.acquire()
                try:
                    pass
                finally:
                    other_lock.release()
        """
        assert thr_ids(source) == ["THR002"]

    def test_acquire_on_self_attribute_fires(self):
        source = """
            class Holder:
                def touch(self):
                    self._lock.acquire()
                    self._lock.release()
        """
        assert thr_ids(source) == ["THR002"]

    def test_non_lockish_receiver_is_ignored(self):
        source = """
            def touch(sem):
                sem.acquire()
        """
        assert thr_ids(source) == []


class TestTHR003FlagVisibility:
    def test_cross_boundary_flag_read_fires(self):
        # The thread side writes under the lock (so THR001 stays quiet);
        # the main-thread read without it is still a visibility race.
        source = WATCHDOG_TEMPLATE.format(
            thread_body=(
                "with self._lock:\n                self._tripped = True"
            ),
            main_body="return self._tripped",
        ).replace("self._count = 0", "self._tripped = False")
        findings = lint_snippet(source, module=GUARD_MODULE)
        rules = [f.rule for f in findings if f.rule.startswith("THR")]
        assert rules == ["THR003"]
        assert "'_tripped'" in findings[-1].message

    def test_locked_read_is_clean(self):
        source = WATCHDOG_TEMPLATE.format(
            thread_body="self._tripped = True",
            main_body=(
                "with self._lock:\n                return self._tripped"
            ),
        ).replace("self._count = 0", "self._tripped = False")
        # The unlocked thread-side *write* is THR001's business; the read
        # under the lock must not raise THR003.
        assert "THR003" not in thr_ids(source)

    def test_event_is_the_sanctioned_primitive(self):
        source = """
            import threading

            class Watchdog:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._stop = threading.Event()

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self._stop.set()

                def stopped(self):
                    return self._stop.is_set()
        """
        assert thr_ids(source) == []

    def test_same_side_writes_do_not_fire(self):
        # Flag written and read only on the main-thread side.
        source = """
            import threading

            class Watchdog:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._armed = False

                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    pass

                def arm(self):
                    self._armed = True

                def is_armed(self):
                    return self._armed
        """
        assert thr_ids(source) == []


class TestRuleMetadata:
    def test_thr_rules_registered_with_scope(self):
        from repro.analysis.rules import REGISTRY

        for rule_id in ("THR001", "THR002", "THR003"):
            rule_ = REGISTRY[rule_id]
            assert rule_.scope == ("repro.sim.guard", "repro.obs")
            assert rule_.rationale

    def test_ids_helper_sees_no_other_rules(self):
        # Sanity: the template itself is otherwise lint-clean in scope.
        source = WATCHDOG_TEMPLATE.format(
            thread_body="pass",
            main_body="return self._count",
        )
        assert rule_ids(lint_snippet(source, module=GUARD_MODULE)) == []
