"""Per-rule fixture tests for DET001 / DET002 / DET003."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet, rule_ids

pytestmark = pytest.mark.lint


class TestDet001UnseededRng:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng()\n",
            "import numpy\nrng = numpy.random.default_rng(None)\n",
            "from numpy import random\nrng = random.default_rng()\n",
            "import numpy as np\nnp.random.seed(42)\n",
            "import numpy as np\nx = np.random.rand(3)\n",
            "import numpy as np\nx = np.random.shuffle([1, 2])\n",
            "import random\nx = random.random()\n",
            "import random\nx = random.randint(0, 7)\n",
            "from random import choice\nx = choice([1, 2])\n",
            "import random\nr = random.Random()\n",
            "import random\nr = random.SystemRandom()\n",
        ],
        ids=lambda s: s.splitlines()[-1][:40],
    )
    def test_flags_unseeded_and_global_state(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["DET001"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng(1234)\n",
            "import numpy as np\ndef f(seed):\n    return np.random.default_rng(seed)\n",
            "import random\nr = random.Random(99)\n",
            # Method call on an object that merely *looks* like the module.
            "class T:\n    def random(self):\n        return 0.5\n"
            "def f(t):\n    return t.random()\n",
            # A generator instance drawing values is fine — it was seeded
            # at construction.
            "def f(rng):\n    return rng.random()\n",
        ],
        ids=["seeded", "seed-arg", "seeded-random", "method", "generator"],
    )
    def test_allows_seeded_construction(self, snippet):
        assert lint_snippet(snippet) == []

    def test_scope_excludes_non_deterministic_modules(self):
        snippet = "import random\nx = random.random()\n"
        assert lint_snippet(snippet, module="repro.analysis.engine") == []
        assert lint_snippet(snippet, module="tests.sim.test_cpu") == []
        assert rule_ids(lint_snippet(snippet, module="repro.core.stats.ols")) == [
            "DET001"
        ]


class TestDet002WallClock:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.time_ns()\n",
            "from time import time\nt = time()\n",
            "import datetime\nt = datetime.datetime.now()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "from datetime import datetime\nt = datetime.utcnow()\n",
            "import os\nb = os.urandom(16)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "import uuid\nu = uuid.uuid1()\n",
            "import secrets\nn = secrets.randbits(32)\n",
        ],
        ids=lambda s: s.splitlines()[-1][:40],
    )
    def test_flags_wall_clock_and_entropy(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["DET002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            # Duration telemetry is exempt: it never feeds back into results.
            "import time\nt = time.perf_counter()\n",
            "import time\nt = time.monotonic()\n",
            "import time\ntime.sleep(0.1)\n",
        ],
        ids=["perf_counter", "monotonic", "sleep"],
    )
    def test_allows_duration_telemetry(self, snippet):
        assert lint_snippet(snippet) == []

    def test_scope_excludes_cli_modules(self):
        snippet = "import time\nt = time.time()\n"
        assert lint_snippet(snippet, module="repro.cli") == []


class TestDet003SetIterationOrder:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(names):\n    out = []\n    for n in set(names):\n        out.append(n)\n    return out\n",
            "def f(names):\n    return [n for n in set(names)]\n",
            "def f(names):\n    return [n for n in {x.lower() for x in names}]\n",
            "def f(names):\n    return list(set(names))\n",
            "def f(names):\n    return tuple(frozenset(names))\n",
            "def f(names):\n    return ','.join({n for n in names})\n",
            "def f(a, b):\n    return [x for x in set(a) | set(b)]\n",
            "def f(names):\n    s = set(names)\n    return [n for n in s]\n",
            "def f():\n    return {k: 1 for k in set('ab')}\n",
            "import os\ndef f():\n    return list(os.environ)\n",
            "def f():\n    return list(globals())\n",
        ],
        ids=[
            "for-loop", "listcomp", "setcomp-source", "list()", "tuple()",
            "join", "union", "tracked-name", "dictcomp", "environ", "globals",
        ],
    )
    def test_flags_order_escape(self, snippet):
        assert rule_ids(lint_snippet(snippet)) == ["DET003"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(names):\n    return [n for n in sorted(set(names))]\n",
            "def f(names):\n    for n in sorted({x for x in names}):\n        n.strip()\n",
            "def f(names, s):\n    return [n for n in names if n in set(s)]\n",
            # Aggregations are order-insensitive.
            "def f(s):\n    return sum(set(s)) + len(set(s)) + max(set(s))\n",
            # Building another set: the order cannot escape.
            "def f(s):\n    return {x + 1 for x in set(s)}\n",
            # Reassignment to a sorted list clears the taint.
            "def f(names):\n    s = set(names)\n    s = sorted(s)\n    return [n for n in s]\n",
            # Dicts iterate in insertion order: deterministic, exempt.
            "def f(d):\n    return [k for k in d]\n",
            "def f(d):\n    return list(d.items())\n",
        ],
        ids=[
            "sorted", "sorted-comp", "membership", "aggregate",
            "set-to-set", "reassigned", "dict", "dict-items",
        ],
    )
    def test_allows_ordered_or_orderless_use(self, snippet):
        assert lint_snippet(snippet) == []

    def test_applies_outside_sim_scope_too(self):
        snippet = "def f(names):\n    return list(set(names))\n"
        assert rule_ids(lint_snippet(snippet, module="tests.helpers")) == ["DET003"]
