"""Project-phase tests: call graph, cross-module fixtures, subsumption."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.callgraph import CallGraph
from tests.analysis import rule_ids

pytestmark = pytest.mark.lint

XPROJ = Path(__file__).resolve().parent / "fixtures" / "xproj"


class TestCallGraph:
    def _diamond(self) -> CallGraph:
        graph = CallGraph()
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        graph.add_edge("b", "d")
        graph.add_edge("c", "d")
        graph.seal()
        return graph

    def test_reachable_is_deterministic_and_shortest_path(self):
        graph = self._diamond()
        reached = graph.reachable(("a",))
        assert set(reached) == {"a", "b", "c", "d"}
        # 'd' is discovered through 'b' (sorted adjacency), depth 2.
        assert reached["d"].depth == 2
        assert reached["d"].path == ("a", "b", "d")

    def test_cycles_terminate(self):
        graph = CallGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        graph.seal()
        reached = graph.reachable(("a",), max_depth=100)
        assert set(reached) == {"a", "b"}

    def test_max_depth_bounds_traversal(self):
        graph = CallGraph()
        for i in range(10):
            graph.add_edge(f"n{i}", f"n{i + 1}")
        graph.seal()
        reached = graph.reachable(("n0",), max_depth=3)
        assert set(reached) == {"n0", "n1", "n2", "n3"}

    def test_exclude_roots(self):
        graph = self._diamond()
        reached = graph.reachable(("a",), include_roots=False)
        assert "a" not in reached and "d" in reached

    def test_tainted_closure_respects_value_filter(self):
        graph = CallGraph()
        graph.add_edge("caller_used", "source")
        graph.add_edge("caller_unused", "source")
        graph.seal()
        tainted = graph.tainted_closure(
            {"source": "time.time"},
            edges_filter={("caller_used", "source"): True,
                          ("caller_unused", "source"): False},
        )
        assert "caller_used" in tainted
        assert "caller_unused" not in tainted
        assert tainted["caller_used"] == ("caller_used", "source")


class TestCrossModuleFixture:
    """The xproj fixture seeds exactly one finding per interprocedural rule."""

    @pytest.fixture(scope="class")
    def findings(self):
        return lint_paths([str(XPROJ)])

    def test_exactly_one_finding_per_new_rule(self, findings):
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        assert counts == {
            "PURE001": 1,
            "DET004": 1,
            "THR001": 1,
            "THR002": 1,
            "THR003": 1,
            "NUM001": 1,
            "NUM002": 1,
            "NUM003": 1,
        }

    def test_pure001_names_the_cross_module_chain(self, findings):
        [pure] = [f for f in findings if f.rule == "PURE001"]
        assert pure.path.endswith("submitter.py")
        assert "calls 'remember'" in pure.message
        assert "repro.jobs.middle.relay -> repro.jobs.leaf.remember" in (
            pure.message
        )

    def test_det004_reports_the_boundary_call_site(self, findings):
        [det] = [f for f in findings if f.rule == "DET004"]
        assert det.path.endswith("timing.py")
        assert "time.time()" in det.message

    def test_single_file_lint_provably_misses_the_impurity(self):
        # The exact cross-module case the one-level check cannot see: the
        # submitted function is pure and every impure callee lives in
        # another module, so a per-file lint of submitter.py is clean.
        submitter = XPROJ / "repro" / "jobs" / "submitter.py"
        findings = lint_source(
            submitter.read_text(),
            path=str(submitter),
            module="repro.jobs.submitter",
        )
        assert findings == []


class TestSubsumption:
    """Everything the old one-level PURE001 caught, the project pass still
    catches — single-file findings are strictly subsumed, never lost."""

    def test_same_module_direct_impurity_still_fires(self):
        source = (
            "_state = {}\n"
            "def worker(x):\n"
            "    _state[x] = 1\n"
            "    return x\n"
            "def run(pool, xs):\n"
            "    return [pool.submit(worker, x) for x in xs]\n"
        )
        findings = lint_source(source, module="repro.sim.mod")
        assert rule_ids(findings) == ["PURE001"]
        assert "submitted function 'worker' writes" in findings[0].message

    def test_same_module_one_level_callee_still_fires(self):
        source = (
            "_state = {}\n"
            "def helper(x):\n"
            "    _state[x] = 1\n"
            "    return x\n"
            "def worker(x):\n"
            "    return helper(x)\n"
            "def run(pool, xs):\n"
            "    return [pool.submit(worker, x) for x in xs]\n"
        )
        findings = lint_source(source, module="repro.sim.mod")
        assert rule_ids(findings) == ["PURE001"]
        # The depth-1 message format is unchanged from the one-level era.
        assert "calls 'helper', which writes module-level state" in (
            findings[0].message
        )
        assert "(via" not in findings[0].message

    def test_lambda_and_closure_findings_unchanged(self):
        source = (
            "def run(pool, xs):\n"
            "    def inner(x):\n"
            "        return x\n"
            "    a = pool.submit(lambda x: x, 1)\n"
            "    return pool.submit(inner, 2)\n"
        )
        findings = lint_source(source, module="repro.sim.mod")
        assert rule_ids(findings) == ["PURE001", "PURE001"]

    def test_deeper_same_module_chain_is_new_coverage(self):
        # Two hops inside one module: invisible to the old one-level scan,
        # reported (with a call chain) by the project pass.
        source = (
            "_state = {}\n"
            "def leaf(x):\n"
            "    _state[x] = 1\n"
            "    return x\n"
            "def mid(x):\n"
            "    return leaf(x)\n"
            "def worker(x):\n"
            "    return mid(x)\n"
            "def run(pool, xs):\n"
            "    return [pool.submit(worker, x) for x in xs]\n"
        )
        findings = lint_source(source, module="repro.sim.mod")
        assert rule_ids(findings) == ["PURE001"]
        assert "(via repro.sim.mod.worker -> repro.sim.mod.mid -> " in (
            findings[0].message
        )

    def test_suppression_covers_project_findings(self):
        source = (
            "_state = {}\n"
            "def helper(x):\n"
            "    _state[x] = 1\n"
            "    return x\n"
            "def worker(x):\n"
            "    return helper(x)\n"
            "def run(pool, xs):\n"
            "    return [pool.submit(worker, x) for x in xs]"
            "  # repro: noqa[PURE001]\n"
        )
        assert lint_source(source, module="repro.sim.mod") == []
