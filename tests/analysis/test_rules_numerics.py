"""NUM rule family: numpy numerical discipline in the columnar/uarch trees."""

from __future__ import annotations

import pytest

from tests.analysis import lint_snippet

pytestmark = pytest.mark.lint

COLUMNAR_MODULE = "repro.sim.columnar"


def num_ids(source: str, module: str = COLUMNAR_MODULE) -> list[str]:
    findings = lint_snippet(source, module=module)
    return [f.rule for f in findings if f.rule.startswith("NUM")]


class TestNUM001MixedFloat:
    def test_float32_times_float64_fires(self):
        source = """
            import numpy as np

            def blend(n):
                lo = np.zeros(n, dtype=np.float32)
                hi = np.ones(n, dtype=np.float64)
                return lo * hi
        """
        assert num_ids(source) == ["NUM001"]

    def test_matching_widths_are_clean(self):
        source = """
            import numpy as np

            def blend(n):
                a = np.zeros(n, dtype=np.float64)
                b = np.ones(n, dtype=np.float64)
                return a * b
        """
        assert num_ids(source) == []

    def test_astype_reconciles_the_widths(self):
        source = """
            import numpy as np

            def blend(n):
                lo = np.zeros(n, dtype=np.float32)
                hi = np.ones(n, dtype=np.float64)
                return lo.astype(np.float64) * hi
        """
        assert num_ids(source) == []

    def test_out_of_scope_module_is_clean(self):
        source = """
            import numpy as np

            def blend(n):
                lo = np.zeros(n, dtype=np.float32)
                hi = np.ones(n, dtype=np.float64)
                return lo * hi
        """
        assert num_ids(source, module="repro.obs.metrics") == []


class TestNUM002ReductionDtype:
    def test_bool_sum_without_dtype_fires(self):
        source = """
            import numpy as np

            def count(mask):
                hits = np.zeros(4, dtype=np.bool_)
                return hits.sum()
        """
        assert num_ids(source) == ["NUM002"]

    def test_int32_cumsum_without_dtype_fires(self):
        source = """
            import numpy as np

            def ramp(events):
                small = events.astype(np.int32)
                return small.cumsum()
        """
        assert num_ids(source) == ["NUM002"]

    def test_explicit_accumulator_dtype_is_clean(self):
        source = """
            import numpy as np

            def count(mask):
                hits = np.zeros(4, dtype=np.bool_)
                return hits.sum(dtype=np.int64)
        """
        assert num_ids(source) == []

    def test_wide_dtype_needs_no_annotation(self):
        source = """
            import numpy as np

            def total(xs):
                wide = np.zeros(4, dtype=np.int64)
                return wide.sum()
        """
        assert num_ids(source) == []

    def test_functional_form_is_covered(self):
        source = """
            import numpy as np

            def count(n):
                mask = np.zeros(n, dtype=np.bool_)
                return np.sum(mask)
        """
        assert num_ids(source) == ["NUM002"]


class TestNUM003MaskShape:
    def test_unchecked_parameter_mask_fires(self):
        source = """
            def pick(values, mask):
                return values[mask]
        """
        assert num_ids(source) == ["NUM003"]

    def test_shape_assert_silences_it(self):
        source = """
            def pick(values, mask):
                assert values.shape == mask.shape
                return values[mask]
        """
        assert num_ids(source) == []

    def test_locally_derived_mask_is_trusted(self):
        source = """
            def pick(values):
                mask = values > 0
                return values[mask]
        """
        assert num_ids(source) == []

    def test_self_indexing_is_clean(self):
        source = """
            def ident(values):
                return values[values]
        """
        assert num_ids(source) == []

    def test_bool_dtype_subscript_counts_as_mask(self):
        source = """
            import numpy as np

            def pick(values, keep):
                sel = keep.astype(np.bool_)
                return values[sel]
        """
        assert num_ids(source) == ["NUM003"]


class TestRuleMetadata:
    def test_num_rules_registered_with_scope(self):
        from repro.analysis.rules import REGISTRY

        for rule_id in ("NUM001", "NUM002", "NUM003"):
            rule_ = REGISTRY[rule_id]
            assert rule_.scope == ("repro.sim.columnar", "repro.uarch")
            assert rule_.rationale
