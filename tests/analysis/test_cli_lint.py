"""CLI tests: repro-lint flags/exit codes, fixture files, gemstone lint."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as gemstone_main

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "fixtures"
ALL_RULES = str(FIXTURES / "all_rules.py")
SUPPRESSED = str(FIXTURES / "suppressed.py")
AS_SIM = ["--assume-module", "repro.sim._fixture"]


class TestFixtureFiles:
    def test_all_rules_fixture_reports_exactly_the_expected_ids(self, capsys):
        exit_code = lint_main([ALL_RULES, *AS_SIM, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        reported = [finding["rule"] for finding in document["findings"]]
        assert exit_code == 1
        # One finding per core rule, nothing else.
        assert sorted(reported) == [
            "DET001", "DET002", "DET003", "OBS001", "OBS002", "OBS002",
            "PERF001",
            "PURE001", "PURE002", "ROB001", "ROB002", "ROB003", "ROB004",
        ]
        assert document["counts"] == {
            "DET001": 1, "DET002": 1, "DET003": 1, "OBS001": 1,
            "OBS002": 2,
            "PERF001": 1, "PURE001": 1, "PURE002": 1, "ROB001": 1,
            "ROB002": 1, "ROB003": 1, "ROB004": 1,
        }

    def test_suppressed_fixture_exercises_suppression_paths(self, capsys):
        exit_code = lint_main([SUPPRESSED, *AS_SIM, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        # The DET002 on the suppressed line is consumed; what remains is
        # the stale escape and the blanket escape.
        assert document["counts"] == {"SUP001": 1, "SUP002": 1}

    def test_without_assume_module_scoped_rules_stay_off(self, capsys):
        exit_code = lint_main([ALL_RULES, "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert sorted(document["counts"]) == [
            "DET003", "PURE001", "PURE002", "ROB001",
        ]


class TestExitCodesAndFlags:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x + 1\n")
        assert lint_main([str(clean)]) == 0
        assert capsys.readouterr().out.strip() == "no findings"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert lint_main([str(missing)]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main([ALL_RULES, "--select", "NOPE123"])
        assert excinfo.value.code == 2
        assert "unknown rule id(s): NOPE123" in capsys.readouterr().err

    def test_select_runs_only_named_rules(self, capsys):
        exit_code = lint_main(
            [ALL_RULES, *AS_SIM, "--select", "DET002", "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["counts"] == {"DET002": 1}

    def test_ignore_drops_named_rules(self, capsys):
        exit_code = lint_main(
            [ALL_RULES, *AS_SIM, "--ignore", "DET003,PURE001", "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert sorted(document["counts"]) == [
            "DET001", "DET002", "OBS001", "OBS002", "PERF001", "PURE002",
            "ROB001", "ROB002", "ROB003", "ROB004",
        ]

    def test_exclude_skips_the_fixture_tree(self, capsys):
        exit_code = lint_main(
            [str(FIXTURES), "--exclude", str(FIXTURES), "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert document["total"] == 0

    def test_list_rules_prints_the_catalogue(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "OBS001", "OBS002",
            "PERF001", "PURE001",
            "PURE002", "ROB001", "ROB002", "ROB003", "ROB004",
            "SUP001", "SUP002",
            "PARSE001",
        ):
            assert rule_id in out

    def test_text_format_has_location_prefixes(self, capsys):
        exit_code = lint_main([ALL_RULES, *AS_SIM])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "all_rules.py:21:12: DET001" in out
        assert out.strip().endswith("8 error(s), 5 warning(s)")


class TestGemstoneLintSubcommand:
    def test_gemstone_lint_delegates_to_repro_lint(self, capsys):
        exit_code = gemstone_main(
            ["lint", ALL_RULES, *AS_SIM, "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["total"] == 13

    def test_gemstone_lint_clean_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert gemstone_main(["lint", str(clean)]) == 0

    def test_gemstone_lint_accepts_leading_option(self, capsys):
        """Option-first invocations must reach repro-lint, not argparse."""
        assert gemstone_main(["lint", "--list-rules"]) == 0
        assert "DET001" in capsys.readouterr().out


XPROJ = str(FIXTURES / "xproj")


class TestProjectWideFlags:
    """--jobs / --cache-dir / --baseline: the PR-8 engine surface."""

    def test_jobs_and_cache_do_not_change_findings(self, tmp_path, capsys):
        lint_main([XPROJ, "--format", "json"])
        reference = json.loads(capsys.readouterr().out)["findings"]
        assert len(reference) == 8

        lint_main([XPROJ, "--format", "json", "--jobs", "2"])
        parallel = json.loads(capsys.readouterr().out)["findings"]
        cache_dir = str(tmp_path / "cache")
        lint_main([XPROJ, "--format", "json", "--cache-dir", cache_dir])
        cold = json.loads(capsys.readouterr().out)["findings"]
        lint_main([XPROJ, "--format", "json", "--cache-dir", cache_dir])
        warm = json.loads(capsys.readouterr().out)["findings"]
        assert parallel == reference
        assert cold == reference
        assert warm == reference

    def test_stats_flag_reports_cache_behaviour(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        lint_main([XPROJ, "--cache-dir", cache_dir, "--stats"])
        cold_err = capsys.readouterr().err
        assert "0 findings cached" in cold_err

        lint_main([XPROJ, "--cache-dir", cache_dir, "--stats"])
        warm_err = capsys.readouterr().err
        assert "0 analysed" in warm_err
        assert "0 re-merged" in warm_err

    def test_baseline_workflow_roundtrip(self, tmp_path, capsys):
        baseline = str(tmp_path / "lint-baseline.json")
        assert lint_main([XPROJ, "--write-baseline", baseline]) == 0
        capsys.readouterr()

        # With the baseline applied the same tree is clean: exit 0.
        exit_code = lint_main([XPROJ, "--baseline", baseline])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "absorbed 8 finding(s)" in captured.err
        assert "no findings" in captured.out

    def test_missing_baseline_is_a_usage_error(self, capsys):
        exit_code = lint_main(
            [XPROJ, "--baseline", "/nonexistent/baseline.json"]
        )
        assert exit_code == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("[]")
        assert lint_main([XPROJ, "--baseline", str(bad)]) == 2
        assert "bad baseline" in capsys.readouterr().err
