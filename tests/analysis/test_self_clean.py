"""The zero-findings gate: repro-lint over the repository's own code.

This is the test that makes every rule a *standing invariant* rather than
a one-off audit: any future PR that introduces an unseeded RNG, a wall
clock in a sim path, a set-order leak, an impure pool worker, a mutable
default, a swallowed BaseException, or a stale suppression fails tier-1.

Known-bad rule fixtures under ``tests/analysis/fixtures`` are excluded by
construction (they exist to be dirty).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths
from repro.analysis.reporters import render_text

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"


def _lint(*relative: str) -> str:
    config = LintConfig(exclude=(str(FIXTURES),))
    findings = lint_paths(
        [str(REPO_ROOT / rel) for rel in relative], config=config
    )
    return render_text(findings) if findings else ""


def test_src_repro_is_clean():
    """The package itself upholds every invariant it enforces."""
    report = _lint("src")
    assert report == "", f"repro-lint findings in src/:\n{report}"


def test_tests_are_clean():
    """Test code is held to the same unscoped rules (purity, robustness)."""
    report = _lint("tests")
    assert report == "", f"repro-lint findings in tests/:\n{report}"


def test_benchmarks_and_examples_are_clean():
    report = _lint("benchmarks", "examples")
    assert report == "", f"repro-lint findings in benchmarks/examples:\n{report}"
