"""Reporter tests: text rendering and the versioned JSON document."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Finding, Severity, render_json, render_text

pytestmark = pytest.mark.lint

FINDINGS = [
    Finding(
        path="src/a.py", line=3, col=5, rule="DET002",
        message="wall clock", severity=Severity.ERROR,
    ),
    Finding(
        path="src/a.py", line=9, col=1, rule="SUP001",
        message="unused suppression", severity=Severity.WARNING,
    ),
    Finding(
        path="src/b.py", line=1, col=1, rule="DET002",
        message="wall clock", severity=Severity.ERROR,
    ),
]


class TestTextReporter:
    def test_empty_is_no_findings(self):
        assert render_text([]) == "no findings"

    def test_one_line_per_finding_plus_summary(self):
        text = render_text(FINDINGS)
        lines = text.splitlines()
        assert lines[0] == "src/a.py:3:5: DET002 [error] wall clock"
        assert lines[1] == "src/a.py:9:1: SUP001 [warning] unused suppression"
        assert lines[-1] == "3 finding(s): 2 error(s), 1 warning(s)"
        assert len(lines) == len(FINDINGS) + 1


class TestJsonReporter:
    def test_document_schema(self):
        document = json.loads(render_json(FINDINGS))
        assert document["version"] == 1
        assert document["total"] == 3
        assert document["counts"] == {"DET002": 2, "SUP001": 1}
        first = document["findings"][0]
        assert first == {
            "path": "src/a.py",
            "line": 3,
            "col": 5,
            "rule": "DET002",
            "severity": "error",
            "message": "wall clock",
        }

    def test_empty_document(self):
        document = json.loads(render_json([]))
        assert document == {
            "version": 1, "findings": [], "counts": {}, "total": 0,
        }

    def test_round_trips_through_json(self):
        assert json.loads(render_json(FINDINGS)) == json.loads(
            render_json(FINDINGS)
        )
