"""Incremental cache, parallel fan-out, and baseline: determinism contracts.

The headline guarantees under test:

* findings are byte-identical across serial, parallel, and warm-cache runs;
* a warm run after editing one file re-finalizes only that file plus its
  reverse dependencies (the import graph is the invalidation frontier);
* corrupt cache entries are quarantined, never trusted;
* the baseline file absorbs known findings as a multiset keyed on
  (path, rule, message) — line numbers may drift freely.
"""

from __future__ import annotations

import pickle
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    RunStats,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import config_fingerprint, engine_fingerprint
from repro.analysis.engine import LintConfig

pytestmark = pytest.mark.lint

XPROJ = Path(__file__).resolve().parent / "fixtures" / "xproj"


def _materialize_xproj(tmp_path: Path) -> Path:
    root = tmp_path / "xproj"
    shutil.copytree(XPROJ, root)
    return root


def _key(finding):
    return (finding.path, finding.rule, finding.line, finding.col,
            finding.message)


class TestRunEquivalence:
    def test_serial_parallel_and_warm_runs_agree_exactly(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = str(tmp_path / "cache")
        serial = lint_paths([str(root)], jobs=1)
        parallel = lint_paths([str(root)], jobs=2)
        cold = lint_paths([str(root)], cache_dir=cache_dir)
        warm = lint_paths([str(root)], cache_dir=cache_dir)
        baseline = [_key(f) for f in serial]
        assert [_key(f) for f in parallel] == baseline
        assert [_key(f) for f in cold] == baseline
        assert [_key(f) for f in warm] == baseline
        # And the fixture still seeds its eight findings.
        assert len(baseline) == 8

    def test_warm_run_reads_everything_from_cache(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = str(tmp_path / "cache")
        cold_stats = RunStats()
        lint_paths([str(root)], cache_dir=cache_dir, stats=cold_stats)
        assert cold_stats.analysed == cold_stats.files > 0
        assert cold_stats.findings_cached == 0

        warm_stats = RunStats()
        lint_paths([str(root)], cache_dir=cache_dir, stats=warm_stats)
        assert warm_stats.analysed == 0
        assert warm_stats.summaries_cached == warm_stats.files
        assert warm_stats.findings_cached == warm_stats.files
        assert warm_stats.refinalized == ()


class TestIncrementalInvalidation:
    def test_edit_refinalizes_only_file_and_reverse_deps(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(root)], cache_dir=cache_dir)

        # Touch the leaf: its importers (middle, submitter) must be
        # re-finalized; unrelated modules must come straight from cache.
        leaf = root / "repro" / "jobs" / "leaf.py"
        leaf.write_text(leaf.read_text() + "\n# a trailing comment\n")

        stats = RunStats()
        findings = lint_paths([str(root)], cache_dir=cache_dir, stats=stats)
        assert stats.analysed == 1  # only leaf.py re-parsed
        redone = {Path(p).name for p in stats.refinalized}
        assert redone == {"leaf.py", "middle.py", "submitter.py"}
        # Untouched import chains (guard, columnar, timing...) stay cached.
        assert stats.findings_cached == stats.files - 3
        # The cross-module PURE001 is still reported after the edit.
        assert sum(1 for f in findings if f.rule == "PURE001") == 1

    def test_behavioural_edit_changes_downstream_findings(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = str(tmp_path / "cache")
        before = lint_paths([str(root)], cache_dir=cache_dir)
        assert any(f.rule == "PURE001" for f in before)

        # Make the leaf pure: the PURE001 two modules away must disappear
        # even though submitter.py itself was never edited.
        leaf = root / "repro" / "jobs" / "leaf.py"
        leaf.write_text(
            '"""Leaf module, now pure."""\n\n\n'
            "def remember(key, value):\n"
            "    return value\n"
        )
        after = lint_paths([str(root)], cache_dir=cache_dir)
        assert not any(f.rule == "PURE001" for f in after)

    def test_cache_dir_is_populated_lazily_and_reused(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = tmp_path / "cache"
        assert not cache_dir.exists()
        lint_paths([str(root)], cache_dir=str(cache_dir))
        entries = sorted(p.name for p in cache_dir.iterdir())
        assert entries and all(p.endswith(".pkl") for p in entries)


class TestQuarantine:
    def test_corrupt_entries_are_deleted_not_trusted(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = tmp_path / "cache"
        baseline = [_key(f) for f in
                    lint_paths([str(root)], cache_dir=str(cache_dir))]

        for entry in cache_dir.iterdir():
            entry.write_bytes(b"not a pickle")

        stats = RunStats()
        warm = lint_paths([str(root)], cache_dir=str(cache_dir),
                          stats=stats)
        assert [_key(f) for f in warm] == baseline
        assert stats.quarantined > 0
        assert stats.analysed == stats.files  # everything re-analysed

    def test_wrong_payload_type_is_rejected(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = tmp_path / "cache"
        lint_paths([str(root)], cache_dir=str(cache_dir))
        for entry in cache_dir.iterdir():
            entry.write_bytes(pickle.dumps({"sneaky": "dict"}))
        warm = lint_paths([str(root)], cache_dir=str(cache_dir))
        assert len(warm) == 8


class TestFingerprints:
    def test_engine_fingerprint_is_stable_within_a_process(self):
        assert engine_fingerprint() == engine_fingerprint()

    def test_config_fingerprint_tracks_rule_selection(self):
        base = config_fingerprint(LintConfig())
        narrowed = config_fingerprint(LintConfig(select=("DET001",)))
        assert base != narrowed
        assert config_fingerprint(LintConfig()) == base

    def test_cache_separates_configs(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        cache_dir = str(tmp_path / "cache")
        all_rules = lint_paths([str(root)], cache_dir=cache_dir)
        only_pure = lint_paths(
            [str(root)], LintConfig(select=("PURE001",)), cache_dir=cache_dir
        )
        assert len(all_rules) == 8
        assert [f.rule for f in only_pure] == ["PURE001"]

    def test_unwritable_cache_degrades_gracefully(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        blocker = tmp_path / "blocked"
        blocker.write_text("a file, not a directory")
        findings = lint_paths([str(root)], cache_dir=str(blocker))
        assert len(findings) == 8


class TestBaseline:
    def test_roundtrip_and_absorption(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        findings = lint_paths([str(root)])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_path))

        counts = load_baseline(str(baseline_path))
        new, matched, stale = apply_baseline(findings, counts)
        assert new == []
        assert matched == len(findings)
        assert stale == 0

    def test_line_drift_does_not_resurface_findings(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(lint_paths([str(root)]), str(baseline_path))

        # Shift every finding down two lines without changing semantics.
        timing = root / "repro" / "sim" / "timing.py"
        timing.write_text("# leading\n# comments\n" + timing.read_text())
        new, _, stale = apply_baseline(
            lint_paths([str(root)]), load_baseline(str(baseline_path))
        )
        assert new == []
        assert stale == 0

    def test_new_findings_surface_and_fixed_ones_go_stale(self, tmp_path):
        root = _materialize_xproj(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(lint_paths([str(root)]), str(baseline_path))

        # Fix the DET004 seed: one baseline entry goes stale.
        timing = root / "repro" / "sim" / "timing.py"
        timing.write_text(
            '"""Now takes the timestamp as an explicit input."""\n\n\n'
            "def annotate(result, started):\n"
            "    return (result, started)\n"
        )
        new, matched, stale = apply_baseline(
            lint_paths([str(root)]), load_baseline(str(baseline_path))
        )
        assert new == []
        assert stale == 1
        assert matched == 7

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 999}')
        with pytest.raises(ValueError):
            load_baseline(str(bad))
