"""Shared helpers for the static-analysis test suite."""

from __future__ import annotations

import textwrap

from repro.analysis import Finding, LintConfig, lint_source

#: Module name that puts snippets inside the determinism-rule scope.
SIM_MODULE = "repro.sim._snippet"


def lint_snippet(
    source: str,
    module: str = SIM_MODULE,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint a dedented source snippet as if it lived in ``module``."""
    return lint_source(
        textwrap.dedent(source), path="<snippet>", module=module, config=config
    )


def rule_ids(findings: list[Finding]) -> list[str]:
    """The rule ids of ``findings``, in report order."""
    return [finding.rule for finding in findings]
