"""Engine tests: discovery, module derivation, config, parse failures."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    REGISTRY,
    derive_module,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from tests.analysis import rule_ids

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestModuleDerivation:
    def test_package_files_get_dotted_names(self):
        assert (
            derive_module(str(REPO_ROOT / "src/repro/sim/executor.py"))
            == "repro.sim.executor"
        )
        assert (
            derive_module(str(REPO_ROOT / "tests/sim/test_executor.py"))
            == "tests.sim.test_executor"
        )

    def test_init_maps_to_package(self):
        assert (
            derive_module(str(REPO_ROOT / "src/repro/analysis/__init__.py"))
            == "repro.analysis"
        )

    def test_loose_file_is_its_stem(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text("x = 1\n")
        assert derive_module(str(loose)) == "scratch"

    def test_walk_stops_at_checkout_root_marker(self, tmp_path):
        # A stray __init__.py in a checkout root must not leak the checkout
        # directory name into module names (it would silently change rule
        # scoping for every file).
        proj = tmp_path / "proj"
        pkg = proj / "pkg"
        pkg.mkdir(parents=True)
        (proj / "pyproject.toml").write_text("[project]\nname = 'proj'\n")
        (proj / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert derive_module(str(pkg / "mod.py")) == "pkg.mod"

    def test_walk_stops_at_src_directory(self, tmp_path):
        src = tmp_path / "src"
        pkg = src / "repro"
        pkg.mkdir(parents=True)
        (src / "__init__.py").write_text("")  # stray marker above the root
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert derive_module(str(pkg / "mod.py")) == "repro.mod"

    def test_walk_stops_at_non_identifier_directory(self, tmp_path):
        checkout = tmp_path / "my-checkout"
        pkg = checkout / "repro"
        pkg.mkdir(parents=True)
        (checkout / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert derive_module(str(pkg / "mod.py")) == "repro.mod"


class TestDiscovery:
    def test_walk_collects_only_python_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "data.json").write_text("{}\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-312.pyc").write_text("")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "b.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_explicit_file_kept_regardless_of_extension(self, tmp_path):
        fixture = tmp_path / "bad.py.fixture"
        fixture.write_text("x = 1\n")
        assert iter_python_files([str(fixture)]) == [str(fixture)]

    def test_exclude_prefix_skips_subtree(self, tmp_path):
        keep = tmp_path / "keep.py"
        keep.write_text("x = 1\n")
        skipped = tmp_path / "fixtures"
        skipped.mkdir()
        (skipped / "bad.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)], exclude=(str(skipped),))
        assert files == [str(keep)]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files([str(REPO_ROOT / "no-such-dir")])

    def test_duplicate_inputs_deduplicate(self, tmp_path):
        file = tmp_path / "a.py"
        file.write_text("x = 1\n")
        assert iter_python_files([str(file), str(file), str(tmp_path)]) == [
            str(file)
        ]


class TestConfig:
    def test_select_restricts_rules(self):
        source = "import time\nt = time.time()\nx = [n for n in set('ab')]\n"
        config = LintConfig(select=frozenset({"DET003"}))
        findings = lint_source(source, module="repro.sim.mod", config=config)
        assert rule_ids(findings) == ["DET003"]

    def test_ignore_drops_rules(self):
        source = "import time\nt = time.time()\nx = [n for n in set('ab')]\n"
        config = LintConfig(ignore=frozenset({"DET003"}))
        findings = lint_source(source, module="repro.sim.mod", config=config)
        assert rule_ids(findings) == ["DET002"]

    def test_unknown_rule_ids_reported(self):
        config = LintConfig(select=frozenset({"DET001", "NOPE123"}))
        assert config.unknown_rule_ids() == ["NOPE123"]

    def test_assume_module_forces_scope(self):
        source = "import time\nt = time.time()\n"
        config = LintConfig(assume_module="repro.sim.fixture")
        assert rule_ids(lint_source(source, path="loose.py", config=config)) == [
            "DET002"
        ]
        assert lint_source(source, path="loose.py") == []


class TestParseFailures:
    def test_syntax_error_is_parse001(self):
        findings = lint_source("def f(:\n", path="broken.py")
        assert rule_ids(findings) == ["PARSE001"]
        assert findings[0].line == 1

    def test_unreadable_file_is_parse001(self, tmp_path):
        binary = tmp_path / "not_utf8.py"
        binary.write_bytes(b"\xff\xfe\x00bad")
        findings = lint_file(str(binary))
        assert rule_ids(findings) == ["PARSE001"]


class TestRegistry:
    def test_catalogue_is_complete(self):
        assert set(REGISTRY) == {
            "DET001", "DET002", "DET003", "DET004",
            "NUM001", "NUM002", "NUM003",
            "OBS001", "OBS002",
            "PERF001",
            "PURE001", "PURE002",
            "ROB001", "ROB002", "ROB003", "ROB004",
            "SUP001", "SUP002",
            "THR001", "THR002", "THR003",
            "PARSE001",
        }

    def test_interprocedural_rules_have_project_passes(self):
        assert REGISTRY["PURE001"].project_checker is not None
        assert REGISTRY["DET004"].project_checker is not None
        assert REGISTRY["THR001"].project_checker is not None
        assert REGISTRY["THR003"].project_checker is not None
        # Purely local rules stay local.
        assert REGISTRY["THR002"].checker is not None
        assert REGISTRY["THR002"].project_checker is None

    def test_findings_are_sorted_by_location(self):
        source = (
            "import time\n"
            "def f(acc=[]):\n"
            "    return time.time()\n"
        )
        findings = lint_source(source, module="repro.sim.mod")
        assert [(f.line, f.rule) for f in findings] == sorted(
            (f.line, f.rule) for f in findings
        )

    def test_lint_paths_over_directory(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("import time\nt = time.time()\n")
        findings = lint_paths([str(tmp_path)])
        assert rule_ids(findings) == ["DET002"]
        assert findings[0].path == str(pkg / "mod.py")
        assert os.path.basename(findings[0].path) == "mod.py"
