"""OBS001: print / root-logger diagnostics in library code."""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig
from tests.analysis import lint_snippet, rule_ids

OBS = LintConfig(select=frozenset({"OBS001"}))


class TestObs001Flags:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x):\n    print(x)\n",
            "import builtins\ndef f(x):\n    builtins.print(x)\n",
            "import logging\ndef f(x):\n    logging.warning('bad %s', x)\n",
            "import logging\ndef f(x):\n    logging.info(x)\n",
            "import logging\ndef f():\n    logging.basicConfig()\n",
            "import logging as lg\ndef f(x):\n    lg.error(x)\n",
        ],
        ids=[
            "print", "builtins-print", "root-warning", "root-info",
            "basicConfig", "aliased-root",
        ],
    )
    def test_flags_in_library_modules(self, snippet):
        assert rule_ids(lint_snippet(snippet, config=OBS)) == ["OBS001"]

    def test_severity_is_warning(self):
        (finding,) = lint_snippet("print(1)\n", config=OBS)
        assert finding.severity.value == "warning"


class TestObs001Allows:
    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned path.
            "from repro.obs.log import get_logger\n"
            "logger = get_logger(__name__)\n"
            "def f(x):\n    logger.warning('x=%s', x)\n",
            # getLogger with an explicit name is not the root logger.
            "import logging\nlog = logging.getLogger('repro.x')\n"
            "def f(x):\n    log.info(x)\n",
            # A local function called print-ish is not builtins.print.
            "def pprint(x):\n    return x\ndef f(x):\n    pprint(x)\n",
        ],
        ids=["get-logger", "named-logger", "local-helper"],
    )
    def test_allows_routed_logging(self, snippet):
        assert lint_snippet(snippet, config=OBS) == []

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cli",
            "repro.analysis.cli",
            "repro.analysis.reporters",
            "repro.core.report",
        ],
    )
    def test_exempts_user_facing_surfaces(self, module):
        snippet = "def f(x):\n    print(x)\n"
        assert lint_snippet(snippet, module=module, config=OBS) == []

    def test_out_of_scope_modules_are_ignored(self):
        snippet = "def f(x):\n    print(x)\n"
        assert lint_snippet(snippet, module="tests.helpers", config=OBS) == []

    def test_suppressible_inline(self):
        snippet = "def f(x):\n    print(x)  # repro: noqa[OBS001]\n"
        assert lint_snippet(snippet, config=OBS) == []
