"""OBS001: print / root-logger diagnostics in library code."""

from __future__ import annotations

import pytest

from repro.analysis import LintConfig
from tests.analysis import lint_snippet, rule_ids

OBS = LintConfig(select=frozenset({"OBS001"}))


class TestObs001Flags:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(x):\n    print(x)\n",
            "import builtins\ndef f(x):\n    builtins.print(x)\n",
            "import logging\ndef f(x):\n    logging.warning('bad %s', x)\n",
            "import logging\ndef f(x):\n    logging.info(x)\n",
            "import logging\ndef f():\n    logging.basicConfig()\n",
            "import logging as lg\ndef f(x):\n    lg.error(x)\n",
        ],
        ids=[
            "print", "builtins-print", "root-warning", "root-info",
            "basicConfig", "aliased-root",
        ],
    )
    def test_flags_in_library_modules(self, snippet):
        assert rule_ids(lint_snippet(snippet, config=OBS)) == ["OBS001"]

    def test_severity_is_warning(self):
        (finding,) = lint_snippet("print(1)\n", config=OBS)
        assert finding.severity.value == "warning"


class TestObs001Allows:
    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned path.
            "from repro.obs.log import get_logger\n"
            "logger = get_logger(__name__)\n"
            "def f(x):\n    logger.warning('x=%s', x)\n",
            # getLogger with an explicit name is not the root logger.
            "import logging\nlog = logging.getLogger('repro.x')\n"
            "def f(x):\n    log.info(x)\n",
            # A local function called print-ish is not builtins.print.
            "def pprint(x):\n    return x\ndef f(x):\n    pprint(x)\n",
        ],
        ids=["get-logger", "named-logger", "local-helper"],
    )
    def test_allows_routed_logging(self, snippet):
        assert lint_snippet(snippet, config=OBS) == []

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cli",
            "repro.analysis.cli",
            "repro.analysis.reporters",
            "repro.core.report",
        ],
    )
    def test_exempts_user_facing_surfaces(self, module):
        snippet = "def f(x):\n    print(x)\n"
        assert lint_snippet(snippet, module=module, config=OBS) == []

    def test_out_of_scope_modules_are_ignored(self):
        snippet = "def f(x):\n    print(x)\n"
        assert lint_snippet(snippet, module="tests.helpers", config=OBS) == []

    def test_suppressible_inline(self):
        snippet = "def f(x):\n    print(x)  # repro: noqa[OBS001]\n"
        assert lint_snippet(snippet, config=OBS) == []


OBS2 = LintConfig(select=frozenset({"OBS002"}))


class TestObs002Flags:
    @pytest.mark.parametrize(
        "snippet",
        [
            # A bare span call: the span never closes.
            "def f(tracer):\n    tracer.span('work')\n",
            # Assigned but never entered anywhere in the module.
            "def f(tracer):\n    s = tracer.span('work')\n    return s\n",
            # Attribute receivers leak just the same.
            "class C:\n"
            "    def f(self):\n"
            "        self.tracer.span('work')\n",
        ],
        ids=["bare-call", "assigned-never-entered", "self-attr"],
    )
    def test_flags_leaked_spans(self, snippet):
        assert rule_ids(lint_snippet(snippet, config=OBS2)) == ["OBS002"]

    @pytest.mark.parametrize(
        "name",
        ["Bad-Name", "UPPER", "1starts.with.digit", "has space", "dash-ed"],
    )
    def test_flags_malformed_metric_names(self, name):
        snippet = f"def f(registry):\n    registry.counter({name!r})\n"
        assert rule_ids(lint_snippet(snippet, config=OBS2)) == ["OBS002"]

    def test_severity_is_warning(self):
        (finding,) = lint_snippet(
            "def f(t):\n    t.span('x')\n", config=OBS2
        )
        assert finding.severity.value == "warning"


class TestObs002Allows:
    @pytest.mark.parametrize(
        "snippet",
        [
            # The sanctioned context-manager form.
            "def f(tracer):\n"
            "    with tracer.span('work'):\n"
            "        pass\n",
            # The executor's manual-enter idiom: assign, __enter__ later.
            "def f(tracer):\n"
            "    s = tracer.span('pool')\n"
            "    s.__enter__()\n"
            "    s.__exit__(None, None, None)\n",
            # Assigned, then used as a with-context elsewhere.
            "def f(tracer):\n"
            "    s = tracer.span('job')\n"
            "    with s:\n"
            "        pass\n",
            # Well-formed metric names pass.
            "def f(r):\n"
            "    r.counter('sim.campaign.jobs_done')\n"
            "    r.histogram('trace.span.seconds')\n"
            "    r.gauge('pipeline.l2_walk')\n",
            # Dynamic names are out of static reach: no finding.
            "def f(r, name):\n    r.counter(name)\n",
        ],
        ids=[
            "with-span", "manual-enter", "assigned-then-with",
            "clean-names", "dynamic-name",
        ],
    )
    def test_allows_hygienic_usage(self, snippet):
        assert lint_snippet(snippet, config=OBS2) == []

    def test_tracer_module_itself_is_exempt(self):
        snippet = "def f(t):\n    t.span('internal')\n"
        findings = lint_snippet(
            snippet, module="repro.obs.tracer", config=OBS2
        )
        assert findings == []

    def test_out_of_scope_modules_are_ignored(self):
        snippet = "def f(t):\n    t.span('x')\n"
        assert lint_snippet(snippet, module="tests.helpers", config=OBS2) == []

    def test_suppressible_inline(self):
        snippet = "def f(t):\n    t.span('x')  # repro: noqa[OBS002]\n"
        assert lint_snippet(snippet, config=OBS2) == []
