"""repro — a reproduction of "Hardware-Validated CPU Performance and Energy
Modelling" (Walker et al., ISPASS 2018): the GemStone methodology and tool.

Public API highlights:

* :class:`repro.GemStone` / :class:`repro.GemStoneConfig` — the end-to-end
  evaluation facade (characterise hardware, run the gem5 model, identify
  error sources, build power models, quantify power/energy error).
* :mod:`repro.sim` — the reference hardware platform and the gem5-style
  model simulations.
* :mod:`repro.workloads` — the 65-workload synthetic suite catalog.
* :mod:`repro.core` — the statistical methodology (HCA, correlation,
  stepwise regression, Powmon-style power modelling).

Quickstart::

    from repro import GemStone, GemStoneConfig

    gs = GemStone(GemStoneConfig(core="A15", trace_instructions=20_000))
    print(gs.dataset.time_mpe(1.0e9))   # headline MPE at 1 GHz
    print(gs.report())
"""

from repro.core.pipeline import GemStone, GemStoneConfig

__version__ = "1.0.0"

__all__ = ["GemStone", "GemStoneConfig", "__version__"]
