"""Finding reporters: human text and machine-readable JSON.

The JSON document is versioned and stable-keyed so CI annotation tooling
can consume it without scraping text output::

    {"version": 1,
     "findings": [{"path": ..., "line": ..., "col": ..., "rule": ...,
                   "severity": ..., "message": ...}],
     "counts": {"DET001": 2},
     "total": 2}
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analysis.findings import Finding, Severity


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a severity summary, ready to print."""
    if not findings:
        return "no findings"
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Versioned JSON report (see module docstring for the schema)."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    document = {
        "version": 1,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "severity": finding.severity.value,
                "message": finding.message,
            }
            for finding in findings
        ],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
    return json.dumps(document, indent=2, sort_keys=False)
