"""Baseline files: adopt new rules without blocking on existing findings.

A baseline is a JSON snapshot of known findings.  ``gemstone lint
--baseline FILE`` subtracts the snapshot from the current run (multiset
matching on *(path, rule, message)* — line numbers drift with unrelated
edits, so they are recorded for humans but ignored for matching) and
fails only on findings *not* in the baseline.  The intended workflow:

1. a new rule lands and fires on legacy code;
2. ``gemstone lint --write-baseline lint-baseline.json`` freezes the
   legacy findings;
3. CI runs ``gemstone lint --baseline lint-baseline.json`` — new
   violations fail, old ones are tracked debt;
4. fixing a legacy finding shrinks the baseline: the entry is reported as
   stale so the file can be re-written, never silently kept.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Sequence

from repro.analysis.findings import Finding
from repro.atomicio import atomic_write_text

BASELINE_VERSION = 1

_Key = tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.path, finding.rule, finding.message)


def write_baseline(findings: Sequence[Finding], path: str) -> None:
    """Snapshot ``findings`` to ``path`` (sorted, atomic, diff-friendly)."""
    entries = [
        {
            "path": finding.path,
            "line": finding.line,
            "rule": finding.rule,
            "message": finding.message,
        }
        for finding in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def load_baseline(path: str) -> Counter[_Key]:
    """Load a baseline into a multiset of finding keys.

    Raises:
        ValueError: If the file is not a recognisable baseline.
        OSError: If the file cannot be read.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(f"{path}: not a version-{BASELINE_VERSION} baseline")
    keys: Counter[_Key] = Counter()
    for entry in payload["entries"]:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        try:
            keys[(entry["path"], entry["rule"], entry["message"])] += 1
        except KeyError as exc:
            raise ValueError(
                f"{path}: baseline entry missing field {exc}"
            ) from None
    return keys


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter[_Key]
) -> tuple[list[Finding], int, int]:
    """Subtract the baseline from a findings list.

    Returns:
        ``(new_findings, matched, stale)``: findings not covered by the
        baseline, the number it absorbed, and the number of baseline
        entries that no longer fire (fixed code — rewrite the baseline).
    """
    remaining = Counter(baseline)
    new_findings: list[Finding] = []
    for finding in sorted(findings):
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new_findings.append(finding)
    stale = sum(remaining.values())
    matched = sum(baseline.values()) - stale
    return new_findings, matched, stale
