"""Static analysis for reproducibility invariants (``repro-lint``).

The paper's validation methodology only means anything if the same config
always yields the same dataset; PR 1/2 made that a runtime contract
(bit-identical parallel execution, checksummed caching, seeded fault
injection).  This subsystem enforces the *static* half: custom AST rules
that no off-the-shelf linter expresses —

======== ===================================================================
DET001   unseeded / global-state RNG construction in sim, uarch, workloads
DET002   wall-clock or entropy calls (``time.time``, ``datetime.now``,
         ``os.urandom``, ``uuid.uuid4``) in deterministic code paths
DET003   unordered-set iteration order escaping into ordered results
DET004   wall-clock/entropy values reaching deterministic code through the
         project call graph (interprocedural DET002)
PURE001  impure or unpicklable callables submitted to a worker pool —
         checked transitively over the cross-module call graph
PURE002  mutable default arguments
ROB001+  robustness family (swallowed ``BaseException`` & friends)
OBS001   print() in library code instead of the obs logging layer
PERF001  numpy anti-patterns that silently fall back to Python loops
THR001   shared attributes written from a thread without the owning lock
THR002   locks acquired without ``with`` / try-finally release
THR003   boolean flags read unsynchronised across the thread boundary
NUM001   mixed float32/float64 arithmetic (silent upcast)
NUM002   ``sum``/``cumsum`` on narrow int dtypes without explicit ``dtype=``
NUM003   boolean-mask indexing on arrays with unasserted shapes
SUP001   unused ``# repro: noqa[RULE]`` suppressions
SUP002   malformed or blanket suppressions
PARSE001 files that do not parse
======== ===================================================================

Analysis is project-wide: per-file passes fan out over a process pool and
feed a cross-module symbol table + call graph
(:mod:`repro.analysis.project`), which the THR rules, DET004 and the
interprocedural half of PURE001 traverse.  A content-hash incremental
cache (``--cache-dir``) keeps warm runs proportional to the edit, and
``--baseline`` adopts new rules without blocking on legacy findings.

Run it via ``repro-lint``, ``python -m repro.analysis`` or
``gemstone lint``; suppress a single line with ``# repro: noqa[RULE]``.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import (
    REGISTRY,
    FileAnalysis,
    LintConfig,
    RunStats,
    analyze_file,
    analyze_source,
    derive_module,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import ModuleSummary, ProjectIndex
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import LintContext, ProjectChecker, Rule

__all__ = [
    "FileAnalysis",
    "Finding",
    "LintConfig",
    "LintContext",
    "ModuleSummary",
    "ProjectChecker",
    "ProjectIndex",
    "REGISTRY",
    "Rule",
    "RunStats",
    "Severity",
    "analyze_file",
    "analyze_source",
    "apply_baseline",
    "derive_module",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "render_json",
    "render_text",
    "write_baseline",
]
