"""Static analysis for reproducibility invariants (``repro-lint``).

The paper's validation methodology only means anything if the same config
always yields the same dataset; PR 1/2 made that a runtime contract
(bit-identical parallel execution, checksummed caching, seeded fault
injection).  This subsystem enforces the *static* half: custom AST rules
that no off-the-shelf linter expresses —

====== =====================================================================
DET001 unseeded / global-state RNG construction in sim, uarch, workloads
DET002 wall-clock or entropy calls (``time.time``, ``datetime.now``,
       ``os.urandom``, ``uuid.uuid4``) in deterministic code paths
DET003 unordered-set iteration order escaping into ordered results
PURE001 impure or unpicklable callables submitted to a worker pool
PURE002 mutable default arguments
ROB001 handlers that swallow ``BaseException``
SUP001 unused ``# repro: noqa[RULE]`` suppressions
SUP002 malformed or blanket suppressions
PARSE001 files that do not parse
====== =====================================================================

Run it via ``repro-lint``, ``python -m repro.analysis`` or
``gemstone lint``; suppress a single line with ``# repro: noqa[RULE]``.
"""

from __future__ import annotations

from repro.analysis.cli import main
from repro.analysis.engine import (
    LintConfig,
    REGISTRY,
    derive_module,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import LintContext, Rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "REGISTRY",
    "Rule",
    "Severity",
    "derive_module",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]
