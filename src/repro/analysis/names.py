"""Import-aware dotted-name resolution for AST checkers.

Rules match *fully qualified* call targets (``numpy.random.default_rng``,
``time.time``) so they keep working across the idioms real code uses::

    import numpy as np;            np.random.default_rng()
    from numpy import random;      random.default_rng()
    from time import time;         time()

:class:`ImportMap` records what each local name was imported as;
:meth:`ImportMap.resolve` expands an attribute chain through that map into
the canonical dotted path (or ``None`` for non-name expressions).
"""

from __future__ import annotations

import ast


def absolutize(target: str, module: str, is_package: bool) -> str:
    """Resolve a possibly-relative dotted import target to an absolute one.

    ``target`` is the form :class:`ImportMap` records: zero or more leading
    dots (``from .. import x`` style) followed by a dotted path.  ``module``
    is the importing file's dotted module name and ``is_package`` whether
    that file is a package ``__init__``; together they give the anchor
    package the dots are relative to.  A relative import that escapes the
    top of the package tree resolves to the bare remainder (best effort —
    the real import would fail at runtime, which is not this layer's
    problem to report).
    """
    level = len(target) - len(target.lstrip("."))
    if level == 0:
        return target
    remainder = target[level:]
    package_parts = module.split(".") if is_package else module.split(".")[:-1]
    anchor = package_parts[: len(package_parts) - (level - 1)]
    if remainder:
        anchor = [*anchor, *remainder.split(".")]
    return ".".join(anchor)


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``, or None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ImportMap:
    """Maps local names to the dotted path they were imported as."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        """Collect every ``import`` / ``from ... import`` binding in a tree."""
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports._aliases[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds only ``os``.
                        head = alias.name.split(".", 1)[0]
                        imports._aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    imports._aliases[local] = target
        return imports

    def is_imported(self, name: str) -> bool:
        """Whether ``name`` was bound by an import statement."""
        return name in self._aliases

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a name/attribute chain, or None.

        The head of the chain is expanded through the import aliases; the
        rest is kept verbatim.  Expressions that are not pure name chains
        (subscripts, calls, literals) resolve to ``None``.
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        head = self._aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])
