"""The lint engine: discovery, the three-phase driver, suppressions.

A run has three phases:

* **Phase A — per-file analysis.**  Tokenize for ``# repro: noqa[...]``
  comments → parse once → run every in-scope per-file rule → extract a
  :class:`~repro.analysis.project.ModuleSummary`.  The result
  (:class:`FileAnalysis`) is a pure function of one file's bytes, which is
  what makes it safe to fan out over a process pool and to cache by
  content digest.
* **Phase B — project analysis.**  Assemble all summaries into a
  :class:`~repro.analysis.project.ProjectIndex` (symbol table + call
  graph) and run every :class:`~repro.analysis.rules.ProjectChecker`.
* **Phase C — merge.**  Per file: local + project findings → same-line
  suppressions → suppression-hygiene findings → sort.  Output order is
  (path, line, col, rule), so serial, parallel and warm-cache runs are
  byte-identical.

``lint_source``/``lint_file`` run the same pipeline over a single-file
project, so one-module call chains (a submitted function calling an
impure same-module helper) are still caught without any project setup.
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import repro.analysis.checkers  # noqa: F401  (registers the rule catalogue)
from repro.analysis.findings import Finding, Severity
from repro.analysis.names import ImportMap
from repro.analysis.project import ModuleSummary, ProjectIndex, summarize_module
from repro.analysis.rules import REGISTRY, LintContext, Rule
from repro.analysis.suppressions import SuppressionIndex

# Engine-emitted rules: not checker-backed, but part of the catalogue so
# --list-rules, --select/--ignore and the README table cover them.
for _engine_rule in (
    Rule(
        id="PARSE001",
        name="file does not parse",
        severity=Severity.ERROR,
        rationale="A file that fails ast.parse cannot be analysed; the "
        "syntax error is surfaced as a finding instead of a crash.",
    ),
    Rule(
        id="SUP001",
        name="unused suppression",
        severity=Severity.WARNING,
        rationale="A '# repro: noqa[RULE]' escape that no longer fires is "
        "a stale blind spot; delete it when the code is fixed.",
    ),
    Rule(
        id="SUP002",
        name="malformed or blanket suppression",
        severity=Severity.WARNING,
        rationale="Suppressions must name explicit, known rule ids so each "
        "escape stays auditable.",
    ),
):
    REGISTRY.setdefault(_engine_rule.id, _engine_rule)

#: Directory basenames never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hg", ".mypy_cache",
                           ".ruff_cache", ".pytest_cache", "build", "dist"})

#: Files marking a directory as a source/checkout root rather than a
#: package, even when a stray ``__init__.py`` sits next to them.
_ROOT_MARKERS = ("pyproject.toml", "setup.py", "setup.cfg", ".git")


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration shared by the CLI and the Python API.

    Attributes:
        select: Run only these rule ids (None = all registered).
        ignore: Rule ids excluded from the run.
        assume_module: Force this dotted module name for every file
            (fixture linting) instead of deriving it from the package tree.
        exclude: Path prefixes (files or directories) skipped during
            discovery; matched against normalised relative paths.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    assume_module: str | None = None
    exclude: tuple[str, ...] = ()

    def active_rules(self) -> list[Rule]:
        """The registered rules enabled by this configuration."""
        return [
            rule_
            for rule_id, rule_ in REGISTRY.items()
            if (self.select is None or rule_id in self.select)
            and rule_id not in self.ignore
        ]

    def filtered_out(self) -> frozenset[str]:
        """Rule ids excluded by select/ignore (for suppression hygiene)."""
        active = {rule_.id for rule_ in self.active_rules()}
        return frozenset(REGISTRY) - active

    def unknown_rule_ids(self) -> list[str]:
        """Ids named in select/ignore that are not in the catalogue."""
        named = set(self.select or ()) | set(self.ignore)
        return sorted(named - set(REGISTRY))


def derive_module(path: str) -> str:
    """Dotted module name from the file's package (``__init__.py``) chain.

    The walk stops at the source root even when a stray ``__init__.py``
    sits above it: a directory named ``src``, a directory whose name is
    not a valid identifier, or a directory carrying a checkout marker
    (``pyproject.toml``, ``setup.py``, ``setup.cfg``, ``.git``) never
    contributes a segment.  Without this, linting a checkout that happens
    to live inside a package leaks extra leading segments into every
    module name and silently changes rule scoping.
    """
    absolute = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(absolute))[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    parent = os.path.dirname(absolute)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        base = os.path.basename(parent)
        if base == "src" or not base.isidentifier():
            break
        if any(
            os.path.exists(os.path.join(parent, marker))
            for marker in _ROOT_MARKERS
        ):
            break
        parts.append(base)
        parent = os.path.dirname(parent)
    parts.reverse()
    return ".".join(parts) if parts else stem


def _is_excluded(path: str, exclude: tuple[str, ...]) -> bool:
    normalised = os.path.normpath(path)
    for prefix in exclude:
        clean = os.path.normpath(prefix)
        if normalised == clean or normalised.startswith(clean + os.sep):
            return True
    return False


def iter_python_files(
    paths: Sequence[str], exclude: tuple[str, ...] = ()
) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Explicit file arguments are honoured regardless of extension (so
    fixture files can be linted directly); directory walks collect ``*.py``
    only, skipping caches, VCS internals and hidden directories.

    Raises:
        FileNotFoundError: For a path that does not exist.
    """
    collected: list[str] = []
    for path in paths:
        if _is_excluded(path, exclude):
            continue
        if os.path.isfile(path):
            collected.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d
                for d in dirs
                if d not in _SKIPPED_DIRS
                and not d.startswith(".")
                and not _is_excluded(os.path.join(root, d), exclude)
            )
            for name in sorted(files):
                full = os.path.join(root, name)
                if name.endswith(".py") and not _is_excluded(full, exclude):
                    collected.append(full)
    return sorted(dict.fromkeys(collected))


# ---------------------------------------------------------------------------
# Phase A: per-file analysis (parallelisable, cacheable)
# ---------------------------------------------------------------------------

@dataclass
class FileAnalysis:
    """The complete, picklable result of analysing one file in isolation.

    Attributes:
        path: Report path.
        module: Dotted module name used for rule scoping.
        is_package: Whether the file is a package ``__init__``.
        digest: SHA-256 hex digest of the file bytes ('' when unknown,
            e.g. for in-memory sources — such analyses are never cached).
        findings: Per-file rule findings, *pre-suppression*.
        summary: Module summary for the project phase (None on parse error).
        suppressions: The file's ``# repro: noqa`` index.
    """

    path: str
    module: str
    is_package: bool
    digest: str
    findings: list[Finding]
    summary: ModuleSummary | None
    suppressions: SuppressionIndex


@dataclass
class RunStats:
    """Observability for one ``lint_paths`` run (cache behaviour, fan-out).

    Attributes:
        files: Files discovered.
        analysed: Files that went through a full Phase A parse this run.
        summaries_cached: Files whose Phase A result came from the cache.
        findings_cached: Files whose *final* findings came from the cache
            (neither the file nor anything it transitively imports changed).
        refinalized: Paths whose final findings were recomputed this run —
            on a warm run, the edited files plus their reverse dependencies.
        quarantined: Corrupt cache entries deleted during the run.
        jobs: Worker processes used for Phase A (1 = in-process serial).
    """

    files: int = 0
    analysed: int = 0
    summaries_cached: int = 0
    findings_cached: int = 0
    refinalized: tuple[str, ...] = ()
    quarantined: int = 0
    jobs: int = 1


def analyze_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
    is_package: bool = False,
    digest: str = "",
) -> FileAnalysis:
    """Phase A over one source string: local rules + module summary."""
    config = config or LintConfig()
    module = module or config.assume_module or derive_module(path)
    suppressions = SuppressionIndex.from_source(source)
    active = {rule_.id: rule_ for rule_ in config.active_rules()}

    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        if "PARSE001" in active:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 1
            findings.append(
                Finding(
                    path=path, line=line, col=col, rule="PARSE001",
                    message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                    severity=Severity.ERROR,
                )
            )
        return FileAnalysis(
            path=path, module=module, is_package=is_package, digest=digest,
            findings=findings, summary=None, suppressions=suppressions,
        )

    imports = ImportMap.from_tree(tree)
    ctx = LintContext(path=path, module=module, imports=imports)
    for rule_ in active.values():
        if rule_.checker is None or not rule_.applies_to(module):
            continue
        findings.extend(rule_.checker(rule_, ctx).run(tree))

    summary = summarize_module(
        tree, module=module, path=path, imports=imports, is_package=is_package
    )
    return FileAnalysis(
        path=path, module=module, is_package=is_package, digest=digest,
        findings=findings, summary=summary, suppressions=suppressions,
    )


def analyze_file(
    path: str, config: LintConfig | None = None, source: str | None = None
) -> FileAnalysis:
    """Phase A over one file (unreadable/undecodable → PARSE001)."""
    config = config or LintConfig()
    if source is None:
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
            source = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            module = config.assume_module or derive_module(path)
            return FileAnalysis(
                path=path, module=module,
                is_package=os.path.basename(path) == "__init__.py",
                digest="",
                findings=[
                    Finding(
                        path=path, line=1, col=1, rule="PARSE001",
                        message=f"file cannot be read: {exc}",
                        severity=Severity.ERROR,
                    )
                ],
                summary=None,
                suppressions=SuppressionIndex.from_source(""),
            )
        digest = hashlib.sha256(raw).hexdigest()
    else:
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return analyze_source(
        source,
        path=path,
        config=config,
        is_package=os.path.basename(path) == "__init__.py",
        digest=digest,
    )


def _pool_analyze(payload: tuple[str, LintConfig]) -> FileAnalysis:
    """Process-pool entry point for Phase A (module-level: picklable)."""
    path, config = payload
    return analyze_file(path, config)


# ---------------------------------------------------------------------------
# Phase B: project rules
# ---------------------------------------------------------------------------

def run_project_rules(
    analyses: Sequence[FileAnalysis], config: LintConfig
) -> list[Finding]:
    """Run every active project-phase rule over the assembled index."""
    summaries = [a.summary for a in analyses if a.summary is not None]
    if not summaries:
        return []
    index = ProjectIndex(summaries)
    findings: list[Finding] = []
    for rule_ in config.active_rules():
        if rule_.project_checker is None:
            continue
        findings.extend(rule_.project_checker(rule_).run(index))
    return findings


# ---------------------------------------------------------------------------
# Phase C: merge, suppress, hygiene
# ---------------------------------------------------------------------------

def finalize_file(
    analysis: FileAnalysis,
    project_findings: Sequence[Finding],
    config: LintConfig,
) -> list[Finding]:
    """Merge one file's local + project findings into its final list."""
    active = {rule_.id for rule_ in config.active_rules()}
    merged = sorted([*analysis.findings, *project_findings])
    kept = [
        finding
        for finding in merged
        if not analysis.suppressions.try_suppress(finding)
    ]
    hygiene = analysis.suppressions.hygiene_findings(
        path=analysis.path,
        known_rules=frozenset(REGISTRY),
        filtered_out=config.filtered_out(),
    )
    kept.extend(finding for finding in hygiene if finding.rule in active)
    return sorted(kept)


def _finalize_all(
    analyses: Sequence[FileAnalysis],
    project_findings: Sequence[Finding],
    config: LintConfig,
) -> dict[str, list[Finding]]:
    by_path: dict[str, list[Finding]] = {}
    for finding in project_findings:
        by_path.setdefault(finding.path, []).append(finding)
    return {
        analysis.path: finalize_file(
            analysis, by_path.get(analysis.path, ()), config
        )
        for analysis in analyses
    }


# ---------------------------------------------------------------------------
# Public single-file API (a one-file project)
# ---------------------------------------------------------------------------

def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string as a single-file project.

    Args:
        source: Python source text.
        path: Path findings are reported under.
        module: Dotted module name for rule scoping; defaults to
            ``config.assume_module`` or a name derived from ``path``.
        config: Engine configuration (defaults to everything enabled).
    """
    config = config or LintConfig()
    analysis = analyze_source(source, path=path, module=module, config=config)
    project = run_project_rules([analysis], config)
    return finalize_file(analysis, project, config)


def lint_file(path: str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file from disk as a single-file project."""
    config = config or LintConfig()
    analysis = analyze_file(path, config=config)
    project = run_project_rules([analysis], config)
    return finalize_file(analysis, project, config)


# ---------------------------------------------------------------------------
# The multi-file driver
# ---------------------------------------------------------------------------

def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None or jobs == 1:
        return 1
    if jobs == 0:
        return max(os.cpu_count() or 1, 1)
    return max(jobs, 1)


def _run_phase_a(
    pending: list[str],
    config: LintConfig,
    jobs: int,
) -> list[FileAnalysis]:
    """Analyse ``pending`` files, fanning out over a process pool if asked.

    Results come back in input order regardless of worker scheduling, so
    parallel runs are byte-identical to serial ones.
    """
    if jobs <= 1 or len(pending) < 2:
        return [analyze_file(path, config) for path in pending]
    payloads = [(path, config) for path in pending]
    chunksize = max(len(payloads) // (jobs * 4), 1)
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_pool_analyze, payloads, chunksize=chunksize))


def lint_paths(
    paths: Iterable[str],
    config: LintConfig | None = None,
    *,
    jobs: int | None = None,
    cache_dir: str | None = None,
    stats: RunStats | None = None,
) -> list[Finding]:
    """Lint files and directory trees; the CLI's workhorse.

    Args:
        paths: Files and/or directories to lint.
        config: Engine configuration.
        jobs: Phase A worker processes — None/1 = in-process serial,
            0 = one per CPU, N = exactly N.
        cache_dir: Enable the content-hash incremental cache rooted here;
            warm runs re-analyse only changed files, and re-merge only
            changed files plus their reverse import dependencies.
        stats: Optional :class:`RunStats` instance filled in-place.

    Returns:
        All findings sorted by (path, line, col, rule) — byte-identical
        across serial, parallel and warm-cache runs.
    """
    config = config or LintConfig()
    stats = stats if stats is not None else RunStats()
    jobs_resolved = _resolve_jobs(jobs)
    stats.jobs = jobs_resolved

    files = iter_python_files(list(paths), exclude=config.exclude)
    stats.files = len(files)

    cache = None
    if cache_dir is not None:
        from repro.analysis.cache import LintCache

        cache = LintCache(cache_dir, config)

    # Phase A, through the summary cache where possible.
    digests: dict[str, str] = {}
    analyses_by_path: dict[str, FileAnalysis] = {}
    pending: list[str] = []
    for path in files:
        digest = _digest_file(path)
        digests[path] = digest
        cached = (
            cache.load_analysis(path, digest, stats)
            if cache is not None and digest
            else None
        )
        if cached is not None:
            analyses_by_path[path] = cached
            stats.summaries_cached += 1
        else:
            pending.append(path)

    for analysis in _run_phase_a(pending, config, jobs_resolved):
        analyses_by_path[analysis.path] = analysis
        stats.analysed += 1
        if cache is not None and analysis.digest:
            cache.store_analysis(analysis)

    analyses = [analyses_by_path[path] for path in files]

    # Dependency fingerprints over the project import graph.
    dep_fps = _dependency_fingerprints(analyses) if cache is not None else {}

    # Final-findings cache: a file whose transitive import closure is
    # byte-identical to the cached run reuses its final findings outright.
    final: dict[str, list[Finding]] = {}
    stale: list[FileAnalysis] = []
    for analysis in analyses:
        cached_findings = (
            cache.load_findings(analysis.path, dep_fps[analysis.path], stats)
            if cache is not None and analysis.digest
            else None
        )
        if cached_findings is not None:
            final[analysis.path] = cached_findings
            stats.findings_cached += 1
        else:
            stale.append(analysis)

    if stale:
        project_findings = run_project_rules(analyses, config)
        refinalized = _finalize_all(stale, project_findings, config)
        for analysis in stale:
            findings = refinalized[analysis.path]
            final[analysis.path] = findings
            if cache is not None and analysis.digest:
                cache.store_findings(
                    analysis.path, dep_fps[analysis.path], findings
                )
    stats.refinalized = tuple(analysis.path for analysis in stale)

    merged: list[Finding] = []
    for path in files:
        merged.extend(final[path])
    return sorted(merged)


def _digest_file(path: str) -> str:
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return ""


def _dependency_fingerprints(
    analyses: Sequence[FileAnalysis],
) -> dict[str, str]:
    """Per-file fingerprint of the transitive *project* import closure.

    Import targets are mapped onto project modules by longest dotted-prefix
    match (``from repro.sim.guard import GuardRail`` depends on module
    ``repro.sim.guard``), then the closure is walked over the module graph.
    The fingerprint hashes the sorted (module, digest) pairs of the closure
    including the file itself — so any byte change in anything a file
    transitively imports changes the file's fingerprint and invalidates
    its cached findings (this is how reverse dependencies of an edit get
    re-merged).
    """
    by_module: dict[str, FileAnalysis] = {}
    for analysis in analyses:
        by_module.setdefault(analysis.module, analysis)

    known = sorted(by_module)
    known_set = set(known)

    def to_project_module(target: str) -> str | None:
        candidate = target
        while candidate:
            if candidate in known_set:
                return candidate
            candidate = candidate.rpartition(".")[0]
        return None

    edges: dict[str, tuple[str, ...]] = {}
    for module, analysis in by_module.items():
        imported = (
            analysis.summary.imported_modules
            if analysis.summary is not None
            else ()
        )
        deps = {
            resolved
            for resolved in (to_project_module(t) for t in imported)
            if resolved is not None and resolved != module
        }
        # A submodule implicitly depends on its package __init__ chain.
        parent = module.rpartition(".")[0]
        while parent:
            if parent in known_set:
                deps.add(parent)
            parent = parent.rpartition(".")[0]
        edges[module] = tuple(sorted(deps))

    closures: dict[str, frozenset[str]] = {}

    def closure_of(module: str) -> frozenset[str]:
        cached = closures.get(module)
        if cached is not None:
            return cached
        seen = {module}
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for dep in edges.get(current, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        result = frozenset(seen)
        closures[module] = result
        return result

    fingerprints: dict[str, str] = {}
    for analysis in analyses:
        closure = closure_of(analysis.module)
        hasher = hashlib.sha256()
        for module in sorted(closure):
            member = by_module[module]
            hasher.update(module.encode())
            hasher.update(b"\x00")
            hasher.update(member.digest.encode())
            hasher.update(b"\x00")
        # Files sharing a module name (assume_module) still hash their own
        # digest so they never alias each other's cache entries.
        hasher.update(analysis.digest.encode())
        fingerprints[analysis.path] = hasher.hexdigest()
    return fingerprints
