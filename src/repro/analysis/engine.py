"""The lint engine: file discovery, per-file orchestration, suppression
accounting.

One file is processed as: tokenize for ``# repro: noqa[...]`` comments →
parse once → resolve imports → run every in-scope, selected rule over the
shared AST → drop suppressed findings → append suppression-hygiene
findings (unused/malformed escapes).  Findings come back sorted by
location so output is stable across rule registration order.
"""

from __future__ import annotations

import ast
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import repro.analysis.checkers  # noqa: F401  (registers the rule catalogue)
from repro.analysis.findings import Finding, Severity
from repro.analysis.names import ImportMap
from repro.analysis.rules import REGISTRY, LintContext, Rule
from repro.analysis.suppressions import SuppressionIndex

# Engine-emitted rules: not checker-backed, but part of the catalogue so
# --list-rules, --select/--ignore and the README table cover them.
for _engine_rule in (
    Rule(
        id="PARSE001",
        name="file does not parse",
        severity=Severity.ERROR,
        rationale="A file that fails ast.parse cannot be analysed; the "
        "syntax error is surfaced as a finding instead of a crash.",
    ),
    Rule(
        id="SUP001",
        name="unused suppression",
        severity=Severity.WARNING,
        rationale="A '# repro: noqa[RULE]' escape that no longer fires is "
        "a stale blind spot; delete it when the code is fixed.",
    ),
    Rule(
        id="SUP002",
        name="malformed or blanket suppression",
        severity=Severity.WARNING,
        rationale="Suppressions must name explicit, known rule ids so each "
        "escape stays auditable.",
    ),
):
    REGISTRY.setdefault(_engine_rule.id, _engine_rule)

#: Directory basenames never descended into during discovery.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hg", ".mypy_cache",
                           ".ruff_cache", ".pytest_cache", "build", "dist"})


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration shared by the CLI and the Python API.

    Attributes:
        select: Run only these rule ids (None = all registered).
        ignore: Rule ids excluded from the run.
        assume_module: Force this dotted module name for every file
            (fixture linting) instead of deriving it from the package tree.
        exclude: Path prefixes (files or directories) skipped during
            discovery; matched against normalised relative paths.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    assume_module: str | None = None
    exclude: tuple[str, ...] = ()

    def active_rules(self) -> list[Rule]:
        """The registered rules enabled by this configuration."""
        return [
            rule_
            for rule_id, rule_ in REGISTRY.items()
            if (self.select is None or rule_id in self.select)
            and rule_id not in self.ignore
        ]

    def filtered_out(self) -> frozenset[str]:
        """Rule ids excluded by select/ignore (for suppression hygiene)."""
        active = {rule_.id for rule_ in self.active_rules()}
        return frozenset(REGISTRY) - active

    def unknown_rule_ids(self) -> list[str]:
        """Ids named in select/ignore that are not in the catalogue."""
        named = set(self.select or ()) | set(self.ignore)
        return sorted(named - set(REGISTRY))


def derive_module(path: str) -> str:
    """Dotted module name from the file's package (``__init__.py``) chain."""
    absolute = os.path.abspath(path)
    stem = os.path.splitext(os.path.basename(absolute))[0]
    parts: list[str] = [] if stem == "__init__" else [stem]
    parent = os.path.dirname(absolute)
    while os.path.isfile(os.path.join(parent, "__init__.py")):
        parts.append(os.path.basename(parent))
        parent = os.path.dirname(parent)
    parts.reverse()
    return ".".join(parts) if parts else stem


def _is_excluded(path: str, exclude: tuple[str, ...]) -> bool:
    normalised = os.path.normpath(path)
    for prefix in exclude:
        clean = os.path.normpath(prefix)
        if normalised == clean or normalised.startswith(clean + os.sep):
            return True
    return False


def iter_python_files(
    paths: Sequence[str], exclude: tuple[str, ...] = ()
) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Explicit file arguments are honoured regardless of extension (so
    fixture files can be linted directly); directory walks collect ``*.py``
    only, skipping caches, VCS internals and hidden directories.

    Raises:
        FileNotFoundError: For a path that does not exist.
    """
    collected: list[str] = []
    for path in paths:
        if _is_excluded(path, exclude):
            continue
        if os.path.isfile(path):
            collected.append(path)
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d
                for d in dirs
                if d not in _SKIPPED_DIRS
                and not d.startswith(".")
                and not _is_excluded(os.path.join(root, d), exclude)
            )
            for name in sorted(files):
                full = os.path.join(root, name)
                if name.endswith(".py") and not _is_excluded(full, exclude):
                    collected.append(full)
    return sorted(dict.fromkeys(collected))


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string; the core single-file pipeline.

    Args:
        source: Python source text.
        path: Path findings are reported under.
        module: Dotted module name for rule scoping; defaults to
            ``config.assume_module`` or a name derived from ``path``.
        config: Engine configuration (defaults to everything enabled).
    """
    config = config or LintConfig()
    module = module or config.assume_module or derive_module(path)
    suppressions = SuppressionIndex.from_source(source)
    active = {rule_.id: rule_ for rule_ in config.active_rules()}

    findings: list[Finding] = []
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        if "PARSE001" in active:
            line = getattr(exc, "lineno", None) or 1
            col = (getattr(exc, "offset", None) or 1)
            findings.append(
                Finding(
                    path=path, line=line, col=col, rule="PARSE001",
                    message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                    severity=Severity.ERROR,
                )
            )
        return sorted(findings)

    ctx = LintContext(path=path, module=module, imports=ImportMap.from_tree(tree))
    for rule_ in active.values():
        if rule_.checker is None or not rule_.applies_to(module):
            continue
        for finding in rule_.checker(rule_, ctx).run(tree):
            if not suppressions.try_suppress(finding):
                findings.append(finding)

    hygiene = suppressions.hygiene_findings(
        path=path,
        known_rules=frozenset(REGISTRY),
        filtered_out=config.filtered_out(),
    )
    findings.extend(
        finding for finding in hygiene if finding.rule in active
    )
    return sorted(findings)


def lint_file(path: str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file from disk (unreadable/undecodable → PARSE001)."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Finding(
                path=path, line=1, col=1, rule="PARSE001",
                message=f"file cannot be read: {exc}",
                severity=Severity.ERROR,
            )
        ]
    return lint_source(source, path=path, config=config)


def lint_paths(
    paths: Iterable[str], config: LintConfig | None = None
) -> list[Finding]:
    """Lint files and directory trees; the CLI's workhorse.

    Returns all findings sorted by (path, line, col, rule).
    """
    config = config or LintConfig()
    findings: list[Finding] = []
    for path in iter_python_files(list(paths), exclude=config.exclude):
        findings.extend(lint_file(path, config=config))
    return sorted(findings)
