"""Rule registry and the checker base class.

Every rule is a small :class:`ast.NodeVisitor` subclass registered with the
:func:`rule` decorator.  Registration carries the catalogue metadata — id,
one-line name, severity, rationale, and an optional *module scope* — so the
engine, the CLI's ``--list-rules`` table, and the README catalogue all share
one source of truth.

Scoped rules only run for modules whose dotted name falls under one of the
scope prefixes (``DET001`` cares about ``repro.sim`` but not about a report
renderer); unscoped rules run everywhere.
"""

from __future__ import annotations

import ast
import dataclasses
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Severity
from repro.analysis.names import ImportMap

if TYPE_CHECKING:
    from repro.analysis.project import ProjectIndex


@dataclass(frozen=True)
class LintContext:
    """Per-file facts shared by every checker run against the file.

    Attributes:
        path: The path findings are reported under.
        module: Dotted module name derived from the file's package location
            (or forced via ``--assume-module``); drives rule scoping.
        imports: Import-alias map for qualified-name resolution.
    """

    path: str
    module: str
    imports: ImportMap


@dataclass(frozen=True)
class Rule:
    """Catalogue entry for one registered rule.

    Attributes:
        id: Stable identifier (``DET001``); what suppressions name.
        name: One-line summary for reports and ``--list-rules``.
        severity: Default severity of the rule's findings.
        rationale: Why the rule exists, in one or two sentences.
        scope: Module-name prefixes the rule is restricted to (None = all).
        checker: Visitor class implementing the rule, or None for rules
            emitted by the engine itself (suppression hygiene, parse errors).
        project_checker: Optional project-phase pass run once over the
            assembled :class:`~repro.analysis.project.ProjectIndex` after
            all files are summarised; a rule may have a per-file checker,
            a project checker, or both (PURE001 has both).
    """

    id: str
    name: str
    severity: Severity
    rationale: str
    scope: tuple[str, ...] | None = None
    checker: type["BaseChecker"] | None = field(default=None, compare=False)
    project_checker: type["ProjectChecker"] | None = field(
        default=None, compare=False
    )

    def applies_to(self, module: str) -> bool:
        """Whether this rule runs for a module with the given dotted name."""
        if self.scope is None:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )


#: The global rule catalogue, keyed by rule id (insertion == registration
#: order; reports re-sort by location so this order is cosmetic only).
REGISTRY: dict[str, Rule] = {}


def register(rule_: Rule) -> None:
    """Add a rule to the catalogue, rejecting duplicate ids."""
    if rule_.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_.id!r}")
    REGISTRY[rule_.id] = rule_


def rule(
    rule_id: str,
    name: str,
    severity: Severity,
    rationale: str,
    scope: tuple[str, ...] | None = None,
) -> Callable[[type["BaseChecker"]], type["BaseChecker"]]:
    """Class decorator registering a checker under ``rule_id``."""

    def decorate(cls: type["BaseChecker"]) -> type["BaseChecker"]:
        register(
            Rule(
                id=rule_id,
                name=name,
                severity=severity,
                rationale=rationale,
                scope=scope,
                checker=cls,
            )
        )
        return cls

    return decorate


def project_rule(
    rule_id: str,
    name: str,
    severity: Severity,
    rationale: str,
    scope: tuple[str, ...] | None = None,
) -> Callable[[type["ProjectChecker"]], type["ProjectChecker"]]:
    """Class decorator registering a project-phase-only rule."""

    def decorate(cls: type["ProjectChecker"]) -> type["ProjectChecker"]:
        register(
            Rule(
                id=rule_id,
                name=name,
                severity=severity,
                rationale=rationale,
                scope=scope,
                project_checker=cls,
            )
        )
        return cls

    return decorate


def attach_project_pass(
    rule_id: str,
) -> Callable[[type["ProjectChecker"]], type["ProjectChecker"]]:
    """Attach a project-phase pass to an already-registered per-file rule."""

    def decorate(cls: type["ProjectChecker"]) -> type["ProjectChecker"]:
        existing = REGISTRY.get(rule_id)
        if existing is None:
            raise ValueError(f"cannot attach project pass: no rule {rule_id!r}")
        if existing.project_checker is None:
            REGISTRY[rule_id] = dataclasses.replace(
                existing, project_checker=cls
            )
        return cls

    return decorate


class BaseChecker(ast.NodeVisitor):
    """An AST pass that reports findings for exactly one rule.

    Subclasses implement ``visit_*`` methods and call :meth:`report`;
    the engine constructs one checker instance per (rule, file) pair.
    """

    def __init__(self, rule_: Rule, ctx: LintContext) -> None:
        self.rule = rule_
        self.ctx = ctx
        self.findings: list[Finding] = []

    def run(self, tree: ast.Module) -> list[Finding]:
        """Walk the tree and return the findings, in visit order."""
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at ``node``'s location."""
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule.id,
                message=message,
                severity=self.rule.severity,
            )
        )


class ProjectChecker:
    """A project-phase pass run once over the assembled index.

    Where :class:`BaseChecker` sees one file's AST, a project checker sees
    the cross-module :class:`~repro.analysis.project.ProjectIndex` (symbol
    table + call graph) and reports findings against any file in the run.
    Module scoping still applies, but at the *finding* site: subclasses
    call :meth:`applies` before reporting into a module.
    """

    def __init__(self, rule_: Rule) -> None:
        self.rule = rule_
        self.findings: list[Finding] = []

    def run(self, index: "ProjectIndex") -> list[Finding]:
        """Inspect the index and return findings (any file, any order)."""
        self.check(index)
        return self.findings

    def check(self, index: "ProjectIndex") -> None:
        """Subclass hook: traverse the index and call :meth:`report`."""
        raise NotImplementedError

    def applies(self, module: str) -> bool:
        """Whether this rule's scope covers ``module``."""
        return self.rule.applies_to(module)

    def report(self, path: str, line: int, col: int, message: str) -> None:
        """Record one violation at an explicit location."""
        self.findings.append(
            Finding(
                path=path,
                line=line,
                col=col,
                rule=self.rule.id,
                message=message,
                severity=self.rule.severity,
            )
        )
