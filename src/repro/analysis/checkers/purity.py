"""Worker-purity rules: PURE001 (impure/unpicklable submitted callables)
and PURE002 (mutable default arguments).

:class:`~repro.sim.executor.SimExecutor`'s bit-identical-recovery guarantee
holds only because every job is a pure function of its payload: a crashed
or timed-out pool job is *rerun serially in the parent* and must produce
the same bytes.  A submitted callable that reads or mutates module-level
state computes different answers in the worker and the parent; a closure
or lambda does not survive pickling at all and silently degrades every
batch to the serial path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import BaseChecker, rule

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft", "popleft", "sort", "reverse",
    }
)


def _is_constant_style(name: str) -> bool:
    """Module bindings that read as constants/classes, not mutable state."""
    stripped = name.strip("_")
    if not stripped:
        return True
    if name.startswith("__") and name.endswith("__"):
        return True
    return stripped[0].isupper()


@dataclass
class _ModuleInventory:
    """Module-level facts needed to judge a submitted callable."""

    top_functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    mutable_globals: set[str] = field(default_factory=set)
    nested_functions: set[str] = field(default_factory=set)
    lambda_bound: set[str] = field(default_factory=set)

    @classmethod
    def from_tree(cls, tree: ast.Module) -> "_ModuleInventory":
        inventory = cls()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inventory.top_functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not _is_constant_style(
                        target.id
                    ):
                        inventory.mutable_globals.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                target = stmt.target
                if isinstance(target, ast.Name) and not _is_constant_style(
                    target.id
                ):
                    inventory.mutable_globals.add(target.id)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inventory.nested_functions.add(inner.name)
                elif isinstance(inner, ast.Assign) and isinstance(
                    inner.value, ast.Lambda
                ):
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            inventory.lambda_bound.add(target.id)
        return inventory


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and locally-bound names that shadow module globals."""
    args = fn.args
    names = {
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def _impurity(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    inventory: _ModuleInventory,
) -> str | None:
    """First reason ``fn`` is not worker-pure, or None if it looks pure."""
    local = _local_names(fn)

    def is_global(name: str) -> bool:
        return name in inventory.mutable_globals and name not in local

    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            return f"declares 'global {', '.join(node.names)}'"
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if is_global(node.id):
                return f"reads module-level mutable state {node.id!r}"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and is_global(base.id):
                    return f"writes module-level state {base.id!r}"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and is_global(node.func.value.id)
        ):
            return (
                f"mutates module-level state {node.func.value.id!r} via "
                f".{node.func.attr}()"
            )
    return None


@rule(
    "PURE001",
    "callable submitted to a worker pool is impure or unpicklable",
    Severity.ERROR,
    "Pool workers rerun in the parent on crash/timeout must reproduce the "
    "same bytes, so submitted callables may not touch module-level mutable "
    "state; lambdas and nested functions additionally fail pickling and "
    "silently force the serial fallback.",
)
class SubmitPurityChecker(BaseChecker):
    """Resolves ``pool.submit(fn, ...)`` sites and vets ``fn``.

    The submitted callable and every same-module function it calls (one
    level deep) are checked; cross-module callees are out of reach of a
    single-file pass and are covered by the executor's runtime recovery
    tests instead.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._inventory = _ModuleInventory.from_tree(tree)
        return super().run(tree)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            self._check_submitted(node, node.args[0])
        self.generic_visit(node)

    def _check_submitted(self, site: ast.Call, callable_expr: ast.expr) -> None:
        # functools.partial(f, ...) submits f with bound arguments.
        if isinstance(callable_expr, ast.Call):
            resolved = self.ctx.imports.resolve(callable_expr.func)
            if resolved == "functools.partial" and callable_expr.args:
                self._check_submitted(site, callable_expr.args[0])
            return
        if isinstance(callable_expr, ast.Lambda):
            self.report(
                site,
                "lambda submitted to a worker pool cannot be pickled; "
                "submit a module-level function",
            )
            return
        if not isinstance(callable_expr, ast.Name):
            return
        name = callable_expr.id
        if name in self._inventory.nested_functions or (
            name in self._inventory.lambda_bound
        ):
            self.report(
                site,
                f"{name!r} is a closure (nested function or lambda binding) "
                "and cannot be pickled for a worker pool; hoist it to "
                "module level",
            )
            return
        fn = self._inventory.top_functions.get(name)
        if fn is None:
            return
        reason = _impurity(fn, self._inventory)
        if reason is not None:
            self.report(
                site,
                f"submitted function {name!r} {reason}; workers must be "
                "pure functions of their payload",
            )
            return
        for callee_name in self._same_module_callees(fn):
            callee = self._inventory.top_functions.get(callee_name)
            if callee is None or callee is fn:
                continue
            reason = _impurity(callee, self._inventory)
            if reason is not None:
                self.report(
                    site,
                    f"submitted function {name!r} calls {callee_name!r}, "
                    f"which {reason}; workers must be pure functions of "
                    "their payload",
                )
                return

    def _same_module_callees(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[str]:
        seen: list[str] = []
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id not in seen
            ):
                seen.append(node.func.id)
        return seen


#: Calls producing a fresh mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque",
        "collections.OrderedDict", "collections.Counter",
    }
)


@rule(
    "PURE002",
    "mutable default argument",
    Severity.ERROR,
    "A mutable default is created once at def-time and shared across every "
    "call, so state leaks between invocations — the classic source of "
    "run-order-dependent results.",
)
class MutableDefaultChecker(BaseChecker):
    """Flags list/dict/set (and friends) used as parameter defaults."""

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [
            default
            for default in (*node.args.defaults, *node.args.kw_defaults)
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            resolved = self.ctx.imports.resolve(node.func)
            return resolved in _MUTABLE_FACTORIES
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)
