"""Worker-purity rules: PURE001 (impure/unpicklable submitted callables)
and PURE002 (mutable default arguments).

:class:`~repro.sim.executor.SimExecutor`'s bit-identical-recovery guarantee
holds only because every job is a pure function of its payload: a crashed
or timed-out pool job is *rerun serially in the parent* and must produce
the same bytes.  A submitted callable that reads or mutates module-level
state computes different answers in the worker and the parent; a closure
or lambda does not survive pickling at all and silently degrades every
batch to the serial path.

PURE001 runs in two phases.  The per-file checker vets the submit site
itself (lambdas, closures, direct impurity of a same-module function); the
project-phase pass (:class:`SubmitPurityProjectChecker`) walks the
cross-module call graph and flags the site if *any* reachable callee —
bounded depth, cycle-safe — is impure, which the old same-module one-level
check could not see.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import DEFAULT_MAX_DEPTH
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import (
    ModuleInventory,
    ProjectIndex,
    first_impurity,
)
from repro.analysis.rules import (
    BaseChecker,
    ProjectChecker,
    attach_project_pass,
    rule,
)


@rule(
    "PURE001",
    "callable submitted to a worker pool is impure or unpicklable",
    Severity.ERROR,
    "Pool workers rerun in the parent on crash/timeout must reproduce the "
    "same bytes, so submitted callables may not touch module-level mutable "
    "state anywhere in their call graph; lambdas and nested functions "
    "additionally fail pickling and silently force the serial fallback.",
)
class SubmitPurityChecker(BaseChecker):
    """Resolves ``pool.submit(fn, ...)`` sites and vets ``fn`` locally.

    Lambdas, closures and direct impurity of a same-module function are
    reported here; transitive (and cross-module) impurity is reported by
    the project-phase pass over the call graph.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._inventory = ModuleInventory.from_tree(tree, self.ctx.imports)
        return super().run(tree)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            self._check_submitted(node, node.args[0])
        self.generic_visit(node)

    def _check_submitted(self, site: ast.Call, callable_expr: ast.expr) -> None:
        # functools.partial(f, ...) submits f with bound arguments.
        if isinstance(callable_expr, ast.Call):
            resolved = self.ctx.imports.resolve(callable_expr.func)
            if resolved == "functools.partial" and callable_expr.args:
                self._check_submitted(site, callable_expr.args[0])
            return
        if isinstance(callable_expr, ast.Lambda):
            self.report(
                site,
                "lambda submitted to a worker pool cannot be pickled; "
                "submit a module-level function",
            )
            return
        if not isinstance(callable_expr, ast.Name):
            return
        name = callable_expr.id
        if name in self._inventory.nested_functions or (
            name in self._inventory.lambda_bound
        ):
            self.report(
                site,
                f"{name!r} is a closure (nested function or lambda binding) "
                "and cannot be pickled for a worker pool; hoist it to "
                "module level",
            )
            return
        fn = self._inventory.top_functions.get(name)
        if fn is None:
            return
        reason = first_impurity(fn, self._inventory)
        if reason is not None:
            self.report(
                site,
                f"submitted function {name!r} {reason}; workers must be "
                "pure functions of their payload",
            )


@attach_project_pass("PURE001")
class SubmitPurityProjectChecker(ProjectChecker):
    """Flags submit sites whose *transitive* call graph reaches impurity.

    For every ``pool.submit(fn, ...)`` site in the run, walk the resolved
    call graph from ``fn`` (bounded by :data:`DEFAULT_MAX_DEPTH`, cycles
    handled by the BFS visited set) and report the first impure function
    reached — ordered by (depth, qualified name), so the finding is
    deterministic.  One finding per site; sites the per-file checker
    already reported (same-module direct impurity) are skipped.
    """

    def check(self, index: ProjectIndex) -> None:
        for summary in index.modules.values():
            if not self.applies(summary.module):
                continue
            for site in summary.submit_sites:
                self._check_site(index, summary, site)

    def _check_site(self, index: ProjectIndex, summary, site) -> None:
        root = index.resolve_function(site.candidates)
        if root is None:
            return
        if root.module == summary.module and root.impurity is not None:
            # The per-file checker already reported this site.
            return
        if root.impurity is not None:
            self.report(
                summary.path,
                site.line,
                site.col,
                f"submitted function {site.display_name!r} {root.impurity}; "
                "workers must be pure functions of their payload",
            )
            return
        reached = index.graph.reachable(
            (root.qualname,), DEFAULT_MAX_DEPTH, include_roots=False
        )
        for reach in sorted(
            reached.values(), key=lambda r: (r.depth, r.qualname)
        ):
            callee = index.functions.get(reach.qualname)
            if callee is None or callee.impurity is None:
                continue
            message = (
                f"submitted function {site.display_name!r} calls "
                f"{callee.name!r}, which {callee.impurity}; workers must "
                "be pure functions of their payload"
            )
            if reach.depth >= 2:
                message += f" (via {reach.via()})"
            self.report(summary.path, site.line, site.col, message)
            return


#: Calls producing a fresh mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque",
        "collections.OrderedDict", "collections.Counter",
    }
)


@rule(
    "PURE002",
    "mutable default argument",
    Severity.ERROR,
    "A mutable default is created once at def-time and shared across every "
    "call, so state leaks between invocations — the classic source of "
    "run-order-dependent results.",
)
class MutableDefaultChecker(BaseChecker):
    """Flags list/dict/set (and friends) used as parameter defaults."""

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> None:
        defaults = [
            default
            for default in (*node.args.defaults, *node.args.kw_defaults)
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            resolved = self.ctx.imports.resolve(node.func)
            return resolved in _MUTABLE_FACTORIES
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)
