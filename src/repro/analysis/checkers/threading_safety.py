"""Thread-safety rules: THR001 (unlocked shared writes from a thread),
THR002 (lock acquired without ``with``/try-finally), THR003 (flag fields
read unsynchronised across a thread boundary).

The campaign watchdog (:mod:`repro.sim.guard`) is the one place this
codebase runs a real ``threading.Thread`` next to the executor, and the
observability layer (:mod:`repro.obs`) is where such helpers tend to grow
next — so those two trees are the initial scope.  The invariant is the
same one the runtime guardrails enforce dynamically: state shared between
the supervisor thread and the main thread is only touched under the
owning lock, and plain boolean flags are not a synchronisation primitive.

THR001/THR003 need the project call graph (a write is "on the thread
side" if it happens in the ``Thread`` target *or any callee*), so they run
as project-phase passes; THR002 is a purely local shape check.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.names import dotted_parts
from repro.analysis.project import ClassSummary, ModuleSummary, ProjectIndex
from repro.analysis.rules import BaseChecker, ProjectChecker, project_rule, rule

#: Initial blast radius: the watchdog/executor boundary and the
#: observability layer.  Widen deliberately, not by default.
THREADING_SCOPE = ("repro.sim.guard", "repro.obs")


def _is_lockish_chain(parts: list[str] | None) -> bool:
    if not parts:
        return False
    last = parts[-1].lower()
    return "lock" in last or "mutex" in last


@project_rule(
    "THR001",
    "shared attribute written from a thread without the owning lock",
    Severity.ERROR,
    "An attribute written by the supervisor thread (the Thread target or "
    "any of its callees) and also touched by main-thread methods is a data "
    "race unless every write holds the class's lock; races here corrupt "
    "the very guardrail state that is supposed to detect corruption.",
    scope=THREADING_SCOPE,
)
class SharedWriteProjectChecker(ProjectChecker):
    """Cross-references thread-reachable methods against unlocked writes.

    A finding needs all of: the class owns a lock attribute; the writing
    method is reachable from a ``threading.Thread`` target through the
    call graph; the write is not under a ``with <lock>:`` block; and the
    attribute is also accessed from at least one method *outside* the
    thread-reachable set (including ``__init__``) — i.e. it is genuinely
    shared across the boundary, not thread-private state.
    """

    def check(self, index: ProjectIndex) -> None:
        reachable = set(index.thread_reachable())
        if not reachable:
            return
        for summary in index.modules.values():
            if not self.applies(summary.module):
                continue
            for cls in summary.classes.values():
                if cls.lock_attrs:
                    self._check_class(index, summary, cls, reachable)

    def _check_class(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        cls: ClassSummary,
        reachable: set[str],
    ) -> None:
        private = set(cls.lock_attrs) | set(cls.event_attrs)
        outside_attrs: set[str] = set()
        for qualname in cls.method_qualnames:
            if qualname in reachable:
                continue
            method = index.functions[qualname]
            outside_attrs.update(a.attr for a in method.attr_accesses)
        for qualname in cls.method_qualnames:
            if qualname not in reachable:
                continue
            method = index.functions[qualname]
            for access in method.attr_accesses:
                if access.kind == "read" or access.locked:
                    continue
                if access.attr in private or access.attr not in outside_attrs:
                    continue
                self.report(
                    summary.path,
                    access.line,
                    access.col,
                    f"attribute {access.attr!r} is written from the "
                    f"supervisor thread (via {method.name!r}) without "
                    f"holding the owning lock, but is shared with "
                    "main-thread methods; wrap the write in the class's "
                    "lock",
                )


@rule(
    "THR002",
    "lock acquired without `with` or try/finally release",
    Severity.ERROR,
    "A bare .acquire() that is not immediately followed by try/finally "
    ".release() leaks the lock on any exception, deadlocking every other "
    "thread that touches the shared state; `with lock:` is the only shape "
    "that cannot leak.",
    scope=THREADING_SCOPE,
)
class AcquireReleaseChecker(BaseChecker):
    """Flags ``.acquire()`` calls outside the safe structural patterns.

    The only accepted shape for a manual acquire is::

        lock.acquire()
        try:
            ...
        finally:
            lock.release()

    Everything else — acquire inside an expression, acquire followed by
    unprotected statements — is flagged.  ``with lock:`` never calls
    ``.acquire()`` in source, so it is trivially clean.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._safe_acquires: set[int] = set()
        self._collect_safe(tree)
        return super().run(tree)

    def _collect_safe(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            body = getattr(node, "body", None)
            if not isinstance(body, list):
                continue
            for block in (body, getattr(node, "orelse", []),
                          getattr(node, "finalbody", [])):
                self._scan_block(block)

    def _scan_block(self, block: list[ast.stmt]) -> None:
        for stmt, successor in zip(block, block[1:]):
            call = self._acquire_call(stmt)
            if call is None or not isinstance(successor, ast.Try):
                continue
            receiver = dotted_parts(call.func.value)  # type: ignore[attr-defined]
            if self._releases(successor.finalbody, receiver):
                self._safe_acquires.add(id(call))

    def _acquire_call(self, stmt: ast.stmt) -> ast.Call | None:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Attribute)
            and stmt.value.func.attr == "acquire"
        ):
            return stmt.value
        return None

    def _releases(
        self, finalbody: list[ast.stmt], receiver: list[str] | None
    ) -> bool:
        for stmt in finalbody:
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "release"
                and dotted_parts(stmt.value.func.value) == receiver
            ):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and _is_lockish_chain(dotted_parts(node.func.value))
            and id(node) not in self._safe_acquires
        ):
            self.report(
                node,
                "lock acquired without `with` or an immediate try/finally "
                "release; an exception between acquire and release "
                "deadlocks every other thread — use `with lock:`",
            )
        self.generic_visit(node)


@project_rule(
    "THR003",
    "flag attribute read unsynchronised across the thread boundary",
    Severity.WARNING,
    "A plain boolean attribute written on one side of the watchdog/"
    "executor boundary and read without the lock on the other is a "
    "visibility hazard and an un-signallable race; use threading.Event "
    "(exempt from this rule) or read the flag under the owning lock.",
    scope=THREADING_SCOPE,
)
class FlagVisibilityProjectChecker(ProjectChecker):
    """Finds bool flags crossing the thread boundary without the lock.

    For every class-body attribute initialised to a bool literal: an
    *unlocked* read in a method on one side of the thread boundary, paired
    with any write on the other side, flags the read site.  Attributes
    holding ``threading.Event`` are exempt — that is the sanctioned
    primitive for exactly this signalling pattern.
    """

    def check(self, index: ProjectIndex) -> None:
        reachable = set(index.thread_reachable())
        if not reachable:
            return
        for summary in index.modules.values():
            if not self.applies(summary.module):
                continue
            for cls in summary.classes.values():
                self._check_class(index, summary, cls, reachable)

    def _check_class(
        self,
        index: ProjectIndex,
        summary: ModuleSummary,
        cls: ClassSummary,
        reachable: set[str],
    ) -> None:
        flags = set(cls.bool_flag_attrs) - set(cls.event_attrs)
        if not flags:
            return
        writers: dict[str, set[bool]] = {attr: set() for attr in sorted(flags)}
        for qualname in cls.method_qualnames:
            method = index.functions[qualname]
            on_thread = qualname in reachable
            for access in method.attr_accesses:
                if access.attr in flags and access.kind in ("write", "mutate"):
                    writers[access.attr].add(on_thread)
        for qualname in cls.method_qualnames:
            method = index.functions[qualname]
            on_thread = qualname in reachable
            for access in method.attr_accesses:
                if (
                    access.kind != "read"
                    or access.locked
                    or access.attr not in flags
                ):
                    continue
                if (not on_thread) not in writers[access.attr]:
                    continue  # no write on the opposite side → no race
                self.report(
                    summary.path,
                    access.line,
                    access.col,
                    f"boolean flag {access.attr!r} is read without the "
                    "owning lock while the other side of the thread "
                    "boundary writes it; use threading.Event or read "
                    "under the lock",
                )
