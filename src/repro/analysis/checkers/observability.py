"""Observability rules: OBS001 (stray diagnostics), OBS002 (tracer hygiene).

OBS001: the library's diagnostics flow through
:func:`repro.obs.log.get_logger` (namespaced under ``repro``, silent until
``configure_logging`` installs a handler).  A ``print()`` in library code
writes to stdout — corrupting piped report output — and a root-logger call
(``logging.warning(...)``) bypasses the ``repro`` hierarchy, so
``--log-level``/``--log-json`` cannot route or silence it.  The
user-facing surfaces (the CLI front ends and the report/reporter
renderers, whose *product* is printed text) are exempt.

OBS002: spans and metric names have contracts the runtime cannot enforce.
A ``Tracer.span(...)`` call whose result is neither used as a context
manager nor explicitly ``__enter__``-ed never closes: the span leaks out
of the trace, its duration histogram never fires, and every child span
mis-parents.  Metric names outside ``[a-z][a-z0-9_.]*`` break the
Prometheus exposition mapping (the exporter would have to mangle them,
so two different registry names could collide in the snapshot).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Severity
from repro.analysis.rules import BaseChecker, rule

#: Modules whose job is to print: CLI front ends and text renderers.
_EXEMPT_MODULES = (
    "repro.cli",
    "repro.analysis.cli",
    "repro.analysis.reporters",
    "repro.core.report",
)

#: Module-level ``logging.X(...)`` calls that talk to the root logger (or
#: mutate global logging state) instead of the ``repro`` hierarchy.
_ROOT_LOGGER_CALLS = frozenset(
    f"logging.{name}"
    for name in (
        "debug", "info", "warning", "warn", "error", "critical",
        "exception", "log", "basicConfig",
    )
)


@rule(
    "OBS001",
    "print / root-logger call in library code",
    Severity.WARNING,
    "Library diagnostics must flow through repro.obs.log.get_logger: "
    "print() corrupts piped report output on stdout, and root-logger "
    "calls (logging.warning(...)) bypass the repro hierarchy so "
    "--log-level/--log-json cannot route or silence them.  CLI front "
    "ends and report renderers, whose product is printed text, are "
    "exempt.",
    scope=("repro",),
)
class LibraryPrintChecker(BaseChecker):
    """Flags ``print`` and root-logger calls outside the exempt surfaces."""

    def _exempt(self) -> bool:
        module = self.ctx.module
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _EXEMPT_MODULES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt():
            name = self.ctx.imports.resolve(node.func)
            if name in ("print", "builtins.print"):
                self.report(
                    node,
                    "print() in library code writes to stdout; use "
                    "repro.obs.log.get_logger(__name__) instead",
                )
            elif name in _ROOT_LOGGER_CALLS:
                self.report(
                    node,
                    f"{name}() talks to the root logger, bypassing the "
                    "repro hierarchy; use "
                    "repro.obs.log.get_logger(__name__) instead",
                )
        self.generic_visit(node)


#: The tracer implementation itself builds spans internally.
_TRACER_IMPL_MODULES = ("repro.obs.tracer",)

#: Registry factory methods whose first argument is a metric name.
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: The exporter-safe metric name alphabet (dots become underscores in the
#: Prometheus snapshot; anything else would need lossy mangling).
_METRIC_NAME_RE = re.compile(r"[a-z][a-z0-9_.]*\Z")


@rule(
    "OBS002",
    "leaked span / malformed metric name",
    Severity.WARNING,
    "A span created without `with` (and never explicitly __enter__-ed) "
    "never closes: it vanishes from the trace, its duration histogram "
    "never fires, and children mis-parent.  Metric names outside "
    "[a-z][a-z0-9_.]* cannot round-trip through the Prometheus "
    "exposition format without lossy mangling.",
    scope=("repro",),
)
class SpanHygieneChecker(BaseChecker):
    """Flags leaked ``.span(...)`` calls and malformed metric names.

    A span call is fine when it is the context expression of a ``with``
    item, or when it is assigned to a name that the module later uses as
    a ``with`` context or calls ``.__enter__()`` on (the executor's
    manual-enter idiom for spans that outlive one lexical block).
    """

    def visit_Module(self, node: ast.Module) -> None:
        self._with_exprs: set[int] = set()
        self._entered_names: set[str] = set()
        self._assigned_to: dict[int, str] = {}
        for sub in ast.walk(node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    self._with_exprs.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        self._entered_names.add(item.context_expr.id)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__enter__"
                    and isinstance(func.value, ast.Name)
                ):
                    self._entered_names.add(func.value.id)
            elif isinstance(sub, ast.Assign):
                if isinstance(sub.value, ast.Call) and all(
                    isinstance(t, ast.Name) for t in sub.targets
                ):
                    self._assigned_to[id(sub.value)] = sub.targets[0].id
        self.generic_visit(node)

    def _tracer_impl(self) -> bool:
        module = self.ctx.module
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _TRACER_IMPL_MODULES
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and not self._tracer_impl():
            if func.attr == "span":
                if id(node) not in self._with_exprs:
                    name = self._assigned_to.get(id(node))
                    if name is None or name not in self._entered_names:
                        self.report(
                            node,
                            "span created without `with` (and never "
                            "__enter__-ed) leaks: it never closes and "
                            "its children mis-parent",
                        )
            elif func.attr in _METRIC_FACTORIES and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and not _METRIC_NAME_RE.match(first.value)
                ):
                    self.report(
                        node,
                        f"metric name {first.value!r} is outside "
                        "[a-z][a-z0-9_.]*; it cannot round-trip through "
                        "the Prometheus snapshot",
                    )
        self.generic_visit(node)
