"""Observability rule: OBS001 (print / root-logger diagnostics in library code).

The library's diagnostics flow through :func:`repro.obs.log.get_logger`
(namespaced under ``repro``, silent until ``configure_logging`` installs a
handler).  A ``print()`` in library code writes to stdout — corrupting
piped report output — and a root-logger call (``logging.warning(...)``)
bypasses the ``repro`` hierarchy, so ``--log-level``/``--log-json`` cannot
route or silence it.  The user-facing surfaces (the CLI front ends and the
report/reporter renderers, whose *product* is printed text) are exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.rules import BaseChecker, rule

#: Modules whose job is to print: CLI front ends and text renderers.
_EXEMPT_MODULES = (
    "repro.cli",
    "repro.analysis.cli",
    "repro.analysis.reporters",
    "repro.core.report",
)

#: Module-level ``logging.X(...)`` calls that talk to the root logger (or
#: mutate global logging state) instead of the ``repro`` hierarchy.
_ROOT_LOGGER_CALLS = frozenset(
    f"logging.{name}"
    for name in (
        "debug", "info", "warning", "warn", "error", "critical",
        "exception", "log", "basicConfig",
    )
)


@rule(
    "OBS001",
    "print / root-logger call in library code",
    Severity.WARNING,
    "Library diagnostics must flow through repro.obs.log.get_logger: "
    "print() corrupts piped report output on stdout, and root-logger "
    "calls (logging.warning(...)) bypass the repro hierarchy so "
    "--log-level/--log-json cannot route or silence them.  CLI front "
    "ends and report renderers, whose product is printed text, are "
    "exempt.",
    scope=("repro",),
)
class LibraryPrintChecker(BaseChecker):
    """Flags ``print`` and root-logger calls outside the exempt surfaces."""

    def _exempt(self) -> bool:
        module = self.ctx.module
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in _EXEMPT_MODULES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self._exempt():
            name = self.ctx.imports.resolve(node.func)
            if name in ("print", "builtins.print"):
                self.report(
                    node,
                    "print() in library code writes to stdout; use "
                    "repro.obs.log.get_logger(__name__) instead",
                )
            elif name in _ROOT_LOGGER_CALLS:
                self.report(
                    node,
                    f"{name}() talks to the root logger, bypassing the "
                    "repro hierarchy; use "
                    "repro.obs.log.get_logger(__name__) instead",
                )
        self.generic_visit(node)
