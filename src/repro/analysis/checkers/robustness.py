"""Robustness rules: ROB001 (handler swallows BaseException), ROB002
(non-atomic artifact write in a crash-safe layer), ROB003 (silent
degradation in a recovery path), ROB004 (file lock acquired without a
try/finally release).

The executor and cache recovery paths deliberately catch ``Exception`` to
degrade gracefully (serial fallback, cache quarantine) — that is policy.
What must never happen is a *bare* ``except:`` or ``except BaseException:``
that also swallows ``KeyboardInterrupt``/``SystemExit``: a hung worker
becomes unkillable and a poisoned batch reports success.  Re-raising
handlers (``raise`` with no argument) are exempt.

ROB002 enforces the other half of the crash-safety contract: inside
``repro.sim`` and ``repro.core`` every artifact must reach disk through
:mod:`repro.atomicio` (tmp file + fsync + ``os.replace``) or an
append-only (mode ``"a"``) journal.  A plain ``open(path, "w")`` truncates
the previous artifact before the new bytes land, and ``os.rename`` is the
clobber-prone cousin of ``os.replace`` — both leave a torn file behind a
crash, which is exactly what the checkpoint/resume layer exists to prevent.

ROB004 enforces the distributed-campaign locking contract
(:mod:`repro.sim.campaign`, :mod:`repro.sim.result_cache`): an advisory
``fcntl.flock``/``lockf`` acquisition must be immediately followed by a
``try`` whose ``finally`` unlocks (``LOCK_UN``) or closes the handle.  A
worker that raises between acquire and release holds the board or cache
lock for as long as the handle lives; under lease-based work stealing
that wedges every other shard sharing the directory.

ROB003 enforces the guardrail contract of :mod:`repro.sim.guard`: a
recovery handler inside ``repro.sim`` that degrades (engine fallback,
quarantine, skipped entry) must leave a trace — a
:class:`~repro.sim.guard.GuardEvent`/health record, a telemetry counter
bump, a tracer event or at minimum a log line.  A handler that just
``return``s a default swallows the *fact* that something went wrong, which
is exactly the "silent wrong number" failure mode the guard layer exists
to kill.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import BaseChecker, rule


def _names_base_exception(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare ``except:``
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_names_base_exception(element) for element in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@rule(
    "ROB001",
    "handler swallows BaseException",
    Severity.ERROR,
    "A bare except (or except BaseException) also catches KeyboardInterrupt "
    "and SystemExit, turning fault recovery into an unkillable process that "
    "reports success; catch Exception, or re-raise.",
)
class SwallowedBaseExceptionChecker(BaseChecker):
    """Flags bare/``BaseException`` handlers that do not re-raise."""

    def _check_handlers(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if _names_base_exception(handler.type) and not _reraises(handler):
                what = (
                    "bare 'except:'"
                    if handler.type is None
                    else "'except BaseException:'"
                )
                self.report(
                    handler,
                    f"{what} swallows KeyboardInterrupt/SystemExit; catch "
                    "Exception (or narrower), or re-raise",
                )

    def visit_Try(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)

    # Python 3.11+ ``except*`` groups; same hazard, same rule.
    def visit_TryStar(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)


def _open_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``-style call, if statically known.

    Returns ``"r"`` when no mode is given (the default), the constant
    string when one is, and ``None`` for a dynamic mode expression —
    dynamic modes get the benefit of the doubt.
    """
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


#: Terminal attribute names whose call counts as "the degradation was
#: recorded": guard/health records, telemetry counters and span/tracer
#: attributes, structured logging, warnings.
_EMISSION_CALLS = frozenset(
    {
        "record",
        "record_failure",
        "record_guard_event",
        "absorb",
        "absorb_guard_events",
        "event",
        "set",
        "warn",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "_degrade",
        "_quarantine",
    }
)


def _emits_record(handler: ast.ExceptHandler) -> bool:
    """Whether a handler leaves any trace of the failure it absorbed.

    Recognised traces: re-raising (or raising a transformed error), calling
    an emission-style method (:data:`_EMISSION_CALLS` — guard events,
    health records, tracer events, log calls, warnings, cache degrade/
    quarantine helpers), constructing a ``GuardEvent`` (the guard layer's
    structured record of a degradation), or bumping a telemetry counter via
    an augmented attribute assignment (``self.telemetry.misses += 1``).
    """
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _EMISSION_CALLS:
                return True
            if isinstance(func, ast.Name) and func.id == "GuardEvent":
                return True
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Attribute
        ):
            return True
    return False


@rule(
    "ROB003",
    "silent degradation in a recovery path",
    Severity.ERROR,
    "An engine-fallback or quarantine handler that absorbs an exception "
    "without emitting a GuardEvent, health record, telemetry bump, tracer "
    "event or log line hides that the run degraded — the silent-wrong-"
    "number failure mode the guard layer exists to prevent.",
    scope=("repro.sim",),
)
class SilentDegradationChecker(BaseChecker):
    """Flags named-exception handlers in ``repro.sim`` that leave no trace.

    Bare and ``BaseException`` handlers are ROB001's domain and skipped
    here, so one bad handler never double-reports.
    """

    def _check_handlers(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if _names_base_exception(handler.type):
                continue
            if not _emits_record(handler):
                caught = ast.unparse(handler.type)
                self.report(
                    handler,
                    f"'except {caught}:' degrades silently; record the "
                    "fallback (GuardEvent/health record, telemetry counter, "
                    "tracer event or log line) or re-raise",
                )

    def visit_Try(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)

    def visit_TryStar(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)


@rule(
    "ROB002",
    "non-atomic artifact write",
    Severity.ERROR,
    "In the crash-safe layers a plain open(..., 'w'/'x') truncates the old "
    "artifact before the new bytes are durable, and os.rename clobbers "
    "non-atomically; a crash mid-write leaves a torn file that a resumed "
    "run would trust.  Route writes through repro.atomicio (tmp file + "
    "fsync + os.replace) or an append-only (mode 'a') journal.",
    scope=("repro.sim", "repro.core"),
)
class NonAtomicWriteChecker(BaseChecker):
    """Flags in-place artifact writes that bypass ``repro.atomicio``."""

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.imports.resolve(node.func)
        if name in ("open", "io.open", "builtins.open"):
            mode = _open_mode(node)
            if mode is not None and mode[:1] in ("w", "x"):
                self.report(
                    node,
                    f"open(..., {mode!r}) writes the artifact in place; "
                    "use repro.atomicio.atomic_write_text/atomic_write_bytes "
                    "(or an append-only mode 'a' journal)",
                )
        elif name == "os.rename":
            self.report(
                node,
                "os.rename is the clobber-prone spelling; use os.replace — "
                "ideally via repro.atomicio, which pairs it with a same-"
                "directory tmp file and fsync",
            )
        self.generic_visit(node)


#: The advisory-lock entry points the campaign/cache layers use.
_FLOCK_CALLS = ("fcntl.flock", "fcntl.lockf")


def _lock_flags(node: ast.Call) -> set[str]:
    """Every ``LOCK_*`` flag named anywhere in a call's arguments.

    Walks the argument expressions, so composed flags
    (``LOCK_EX | LOCK_NB``) and both spellings (``fcntl.LOCK_EX`` and a
    from-imported ``LOCK_EX``) are all seen.
    """
    flags: set[str] = set()
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr.startswith("LOCK_"):
                flags.add(sub.attr)
            elif isinstance(sub, ast.Name) and sub.id.startswith("LOCK_"):
                flags.add(sub.id)
    return flags


@rule(
    "ROB004",
    "file lock acquired without try/finally release",
    Severity.ERROR,
    "A worker that raises between flock(LOCK_EX) and its LOCK_UN holds the "
    "board or cache lock for as long as the handle lives; under lease-based "
    "work stealing that wedges every other shard sharing the directory.  "
    "Follow the acquisition immediately with try/finally that unlocks "
    "(LOCK_UN) or closes the handle.",
    scope=("repro.sim",),
)
class FileLockReleaseChecker(BaseChecker):
    """Flags ``fcntl.flock``/``lockf`` acquisitions outside the safe shape.

    The only accepted shape for an exclusive/shared acquisition is::

        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            ...
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    (closing or ``.release()``-ing the handle in the ``finally`` also
    counts — the kernel drops an flock with its last open descriptor).
    Anything else — an acquisition inside an expression, or followed by
    unprotected statements — is flagged.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._safe_acquires: set[int] = set()
        self._collect_safe(tree)
        return super().run(tree)

    def _collect_safe(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            body = getattr(node, "body", None)
            if not isinstance(body, list):
                continue
            for block in (body, getattr(node, "orelse", []),
                          getattr(node, "finalbody", [])):
                self._scan_block(block)

    def _scan_block(self, block: list[ast.stmt]) -> None:
        for stmt, successor in zip(block, block[1:]):
            call = self._acquire_call(stmt)
            if call is None or not isinstance(successor, ast.Try):
                continue
            if self._releases(successor.finalbody):
                self._safe_acquires.add(id(call))

    def _acquire_call(self, stmt: ast.stmt) -> ast.Call | None:
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and self._is_acquire(stmt.value)
        ):
            return stmt.value
        return None

    def _is_acquire(self, call: ast.Call) -> bool:
        name = self.ctx.imports.resolve(call.func)
        return name in _FLOCK_CALLS and bool(
            _lock_flags(call) & {"LOCK_EX", "LOCK_SH"}
        )

    def _releases(self, finalbody: list[ast.stmt]) -> bool:
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                name = self.ctx.imports.resolve(node.func)
                if name in _FLOCK_CALLS and "LOCK_UN" in _lock_flags(node):
                    return True
                if isinstance(node.func, ast.Attribute) and node.func.attr in (
                    "close", "release",
                ):
                    return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_acquire(node) and id(node) not in self._safe_acquires:
            self.report(
                node,
                "file lock acquired without an immediate try/finally "
                "release; an exception before LOCK_UN wedges every other "
                "worker sharing the directory",
            )
        self.generic_visit(node)
