"""Robustness rule: ROB001 (handler swallows BaseException).

The executor and cache recovery paths deliberately catch ``Exception`` to
degrade gracefully (serial fallback, cache quarantine) — that is policy.
What must never happen is a *bare* ``except:`` or ``except BaseException:``
that also swallows ``KeyboardInterrupt``/``SystemExit``: a hung worker
becomes unkillable and a poisoned batch reports success.  Re-raising
handlers (``raise`` with no argument) are exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.rules import BaseChecker, rule


def _names_base_exception(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare ``except:``
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_names_base_exception(element) for element in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@rule(
    "ROB001",
    "handler swallows BaseException",
    Severity.ERROR,
    "A bare except (or except BaseException) also catches KeyboardInterrupt "
    "and SystemExit, turning fault recovery into an unkillable process that "
    "reports success; catch Exception, or re-raise.",
)
class SwallowedBaseExceptionChecker(BaseChecker):
    """Flags bare/``BaseException`` handlers that do not re-raise."""

    def _check_handlers(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if _names_base_exception(handler.type) and not _reraises(handler):
                what = (
                    "bare 'except:'"
                    if handler.type is None
                    else "'except BaseException:'"
                )
                self.report(
                    handler,
                    f"{what} swallows KeyboardInterrupt/SystemExit; catch "
                    "Exception (or narrower), or re-raise",
                )

    def visit_Try(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)

    # Python 3.11+ ``except*`` groups; same hazard, same rule.
    def visit_TryStar(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)
