"""Robustness rules: ROB001 (handler swallows BaseException), ROB002
(non-atomic artifact write in a crash-safe layer).

The executor and cache recovery paths deliberately catch ``Exception`` to
degrade gracefully (serial fallback, cache quarantine) — that is policy.
What must never happen is a *bare* ``except:`` or ``except BaseException:``
that also swallows ``KeyboardInterrupt``/``SystemExit``: a hung worker
becomes unkillable and a poisoned batch reports success.  Re-raising
handlers (``raise`` with no argument) are exempt.

ROB002 enforces the other half of the crash-safety contract: inside
``repro.sim`` and ``repro.core`` every artifact must reach disk through
:mod:`repro.atomicio` (tmp file + fsync + ``os.replace``) or an
append-only (mode ``"a"``) journal.  A plain ``open(path, "w")`` truncates
the previous artifact before the new bytes land, and ``os.rename`` is the
clobber-prone cousin of ``os.replace`` — both leave a torn file behind a
crash, which is exactly what the checkpoint/resume layer exists to prevent.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.rules import BaseChecker, rule


def _names_base_exception(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare ``except:``
    if isinstance(node, ast.Name):
        return node.id == "BaseException"
    if isinstance(node, ast.Tuple):
        return any(_names_base_exception(element) for element in node.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@rule(
    "ROB001",
    "handler swallows BaseException",
    Severity.ERROR,
    "A bare except (or except BaseException) also catches KeyboardInterrupt "
    "and SystemExit, turning fault recovery into an unkillable process that "
    "reports success; catch Exception, or re-raise.",
)
class SwallowedBaseExceptionChecker(BaseChecker):
    """Flags bare/``BaseException`` handlers that do not re-raise."""

    def _check_handlers(self, node: ast.Try) -> None:
        for handler in node.handlers:
            if _names_base_exception(handler.type) and not _reraises(handler):
                what = (
                    "bare 'except:'"
                    if handler.type is None
                    else "'except BaseException:'"
                )
                self.report(
                    handler,
                    f"{what} swallows KeyboardInterrupt/SystemExit; catch "
                    "Exception (or narrower), or re-raise",
                )

    def visit_Try(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)

    # Python 3.11+ ``except*`` groups; same hazard, same rule.
    def visit_TryStar(self, node: ast.Try) -> None:
        self._check_handlers(node)
        self.generic_visit(node)


def _open_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``-style call, if statically known.

    Returns ``"r"`` when no mode is given (the default), the constant
    string when one is, and ``None`` for a dynamic mode expression —
    dynamic modes get the benefit of the doubt.
    """
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule(
    "ROB002",
    "non-atomic artifact write",
    Severity.ERROR,
    "In the crash-safe layers a plain open(..., 'w'/'x') truncates the old "
    "artifact before the new bytes are durable, and os.rename clobbers "
    "non-atomically; a crash mid-write leaves a torn file that a resumed "
    "run would trust.  Route writes through repro.atomicio (tmp file + "
    "fsync + os.replace) or an append-only (mode 'a') journal.",
    scope=("repro.sim", "repro.core"),
)
class NonAtomicWriteChecker(BaseChecker):
    """Flags in-place artifact writes that bypass ``repro.atomicio``."""

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.imports.resolve(node.func)
        if name in ("open", "io.open", "builtins.open"):
            mode = _open_mode(node)
            if mode is not None and mode[:1] in ("w", "x"):
                self.report(
                    node,
                    f"open(..., {mode!r}) writes the artifact in place; "
                    "use repro.atomicio.atomic_write_text/atomic_write_bytes "
                    "(or an append-only mode 'a' journal)",
                )
        elif name == "os.rename":
            self.report(
                node,
                "os.rename is the clobber-prone spelling; use os.replace — "
                "ideally via repro.atomicio, which pairs it with a same-"
                "directory tmp file and fsync",
            )
        self.generic_visit(node)
