"""Checker modules; importing this package registers every rule.

The engine imports :mod:`repro.analysis.checkers` for its side effect:
each module's ``@rule`` / ``@project_rule`` decorators populate
:data:`repro.analysis.rules.REGISTRY`.
"""

from __future__ import annotations

from repro.analysis.checkers import (
    determinism,
    numerics,
    observability,
    performance,
    purity,
    robustness,
    threading_safety,
)

__all__ = [
    "determinism",
    "numerics",
    "observability",
    "performance",
    "purity",
    "robustness",
    "threading_safety",
]
