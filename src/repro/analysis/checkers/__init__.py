"""Checker modules; importing this package registers every rule.

The engine imports :mod:`repro.analysis.checkers` for its side effect:
each module's ``@rule`` decorators populate
:data:`repro.analysis.rules.REGISTRY`.
"""

from __future__ import annotations

from repro.analysis.checkers import (
    determinism,
    observability,
    performance,
    purity,
    robustness,
)

__all__ = [
    "determinism",
    "observability",
    "performance",
    "purity",
    "robustness",
]
