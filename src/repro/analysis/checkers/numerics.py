"""Numpy-discipline rules for the columnar pipelines: NUM001 (mixed
float32/float64 arithmetic), NUM002 (overflow-prone reductions without an
explicit accumulator dtype), NUM003 (boolean-mask indexing on unasserted
shapes).

The columnar replay engine and the microarchitectural models keep whole
traces in flat arrays, so a silent dtype upcast doubles peak memory and —
worse for a paper about bit-exact validation — changes rounding behaviour
between code paths that are supposed to agree.  ``sum``/``cumsum`` on
small integer dtypes pick a *platform-dependent* accumulator (C ``long``:
int32 on Windows, int64 on Linux), which is exactly the kind of unstated
assumption that breaks cross-machine reproducibility.  Scope is the
columnar engine and the uarch models, where arrays dominate.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import BaseChecker, rule

#: Where arrays dominate and dtype discipline is load-bearing.
NUMERIC_SCOPE = ("repro.sim.columnar", "repro.uarch")

#: Dtypes whose reduction accumulator is platform-dependent (C long).
_OVERFLOW_PRONE = frozenset(
    {"bool", "int8", "int16", "int32", "uint8", "uint16", "uint32"}
)

#: numpy array constructors that accept a ``dtype=`` keyword.
_ARRAY_FACTORIES = frozenset(
    {
        "numpy.array", "numpy.asarray", "numpy.zeros", "numpy.ones",
        "numpy.full", "numpy.empty", "numpy.arange", "numpy.zeros_like",
        "numpy.ones_like", "numpy.full_like", "numpy.empty_like",
        "numpy.frombuffer", "numpy.fromiter",
    }
)

#: numpy scalar/dtype constructors, keyed by the dtype they produce.
_DTYPE_NAMES = frozenset(
    {
        "bool", "bool_", "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
    }
)

#: Reductions whose accumulator dtype should be pinned on small ints.
_ACCUMULATING_REDUCTIONS = frozenset({"sum", "cumsum", "prod", "cumprod"})


def _dtype_from_expr(node: ast.expr, resolve) -> str | None:
    """Dtype name denoted by a ``dtype=`` argument expression, if static."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    else:
        resolved = resolve(node)
        if resolved is None:
            return None
        name = resolved.rpartition(".")[2]
    name = {"bool_": "bool", "float_": "float64", "int_": "int64"}.get(
        name, name
    )
    return name if name in _DTYPE_NAMES or name == "bool" else None


class _DtypeTracker(BaseChecker):
    """Shared line-ordered name→dtype inference for the NUM rules.

    Tracking is deliberately shallow: a name is known only when its dtype
    is statically evident (constructor ``dtype=``, ``.astype``, comparison
    result).  Unknown stays unknown — these rules only fire on *provable*
    dtype facts, never on guesses.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._scopes: list[dict[str, str]] = [{}]
        self._current_fn: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        return super().run(tree)

    # ------------------------------------------------------------- scoping
    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scopes.append({})
        self._current_fn.append(node)
        self.generic_visit(node)
        self._current_fn.pop()
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _lookup(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------- dtype algebra
    def _dtype_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Compare):
            return "bool"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return "bool"
            return self._dtype_of(node.operand)
        if isinstance(node, ast.Call):
            return self._dtype_of_call(node)
        if isinstance(node, ast.BinOp):
            left = self._dtype_of(node.left)
            right = self._dtype_of(node.right)
            if left == right:
                return left
            if {left, right} == {"float32", "float64"}:
                return "float64"
            return None
        if isinstance(node, ast.Subscript):
            # Masked/sliced views keep their element dtype.
            return self._dtype_of(node.value)
        return None

    def _dtype_of_call(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if node.args:
                return _dtype_from_expr(node.args[0], self.ctx.imports.resolve)
            return None
        resolved = self.ctx.imports.resolve(func)
        if resolved is None:
            return None
        head, _, tail = resolved.rpartition(".")
        if head == "numpy" and tail in _DTYPE_NAMES:
            return {"bool_": "bool"}.get(tail, tail)
        if resolved in _ARRAY_FACTORIES:
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    return _dtype_from_expr(
                        keyword.value, self.ctx.imports.resolve
                    )
        return None

    # --------------------------------------------------------- assignments
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            dtype = self._dtype_of(node.value)
            if dtype is not None:
                self._scopes[-1][node.targets[0].id] = dtype
            else:
                self._scopes[-1].pop(node.targets[0].id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            dtype = self._dtype_of(node.value)
            if dtype is not None:
                self._scopes[-1][node.target.id] = dtype


@rule(
    "NUM001",
    "mixed float32/float64 arithmetic silently upcasts",
    Severity.WARNING,
    "An expression mixing float32 and float64 operands upcasts to float64: "
    "peak memory doubles and rounding diverges from the all-float32 path "
    "the columnar engine validates against hardware.  Cast explicitly at "
    "the boundary instead.",
    scope=NUMERIC_SCOPE,
)
class MixedFloatChecker(_DtypeTracker):
    """Flags binary arithmetic whose operands provably mix float widths."""

    def visit_BinOp(self, node: ast.BinOp) -> None:
        left = self._dtype_of(node.left)
        right = self._dtype_of(node.right)
        if {left, right} == {"float32", "float64"}:
            self.report(
                node,
                "arithmetic mixes float32 and float64 operands and "
                "silently upcasts to float64; cast explicitly with "
                ".astype(...) at the boundary",
            )
        self.generic_visit(node)


@rule(
    "NUM002",
    "overflow-prone reduction without an explicit accumulator dtype",
    Severity.WARNING,
    "sum/cumsum on bool or narrow integer arrays accumulate in a "
    "platform-dependent dtype (C long: int32 on Windows, int64 on Linux), "
    "so the same trace can overflow on one machine and not another; pass "
    "dtype=numpy.int64 explicitly.",
    scope=NUMERIC_SCOPE,
)
class ReductionDtypeChecker(_DtypeTracker):
    """Flags ``sum``/``cumsum``-family reductions over small-int arrays."""

    def visit_Call(self, node: ast.Call) -> None:
        target: ast.expr | None = None
        reduction: str | None = None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _ACCUMULATING_REDUCTIONS
        ):
            resolved = self.ctx.imports.resolve(func)
            if resolved and resolved.rpartition(".")[0] == "numpy":
                # numpy.sum(arr, ...): the array is the first argument.
                target = node.args[0] if node.args else None
            else:
                target = func.value
            reduction = func.attr
        if target is not None and reduction is not None:
            has_dtype = any(k.arg == "dtype" for k in node.keywords)
            dtype = self._dtype_of(target)
            if not has_dtype and dtype in _OVERFLOW_PRONE:
                self.report(
                    node,
                    f".{reduction}() on a {dtype} array accumulates in a "
                    "platform-dependent dtype; pass dtype=numpy.int64 "
                    "explicitly",
                )
        self.generic_visit(node)


@rule(
    "NUM003",
    "boolean-mask indexing on arrays with unasserted shapes",
    Severity.WARNING,
    "Indexing one function argument with a mask derived from another "
    "relies on their lengths agreeing; numpy raises only when the mask is "
    "*longer*, so a short mask silently drops rows.  Assert the shapes "
    "match (or document why they must) before masking.",
    scope=NUMERIC_SCOPE,
)
class MaskShapeChecker(_DtypeTracker):
    """Flags ``a[mask]`` where the shapes involved are never asserted.

    Fires only when the indexed array or the mask is a function parameter
    (shapes crossing an API boundary), the mask is provably boolean (or
    conventionally named ``*mask*``), and the enclosing function contains
    no shape assertion at all.  A mask derived *from the indexed array
    itself* (``mask = values > 0; values[mask]``) has the right shape by
    construction and is never flagged.
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._param_stack: list[set[str]] = []
        self._assert_stack: list[bool] = []
        self._mask_bases: list[dict[str, frozenset[str]]] = []
        return super().run(tree)

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        self._param_stack.append(
            {
                arg.arg
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            }
        )
        self._assert_stack.append(self._has_shape_assert(node))
        self._mask_bases.append({})
        super()._enter_function(node)
        self._mask_bases.pop()
        self._param_stack.pop()
        self._assert_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # Remember which arrays a boolean mask was computed from, so that
        # masking the very array it came from is recognised as shape-safe.
        if (
            self._mask_bases
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            target = node.targets[0].id
            if self._dtype_of(node.value) == "bool":
                self._mask_bases[-1][target] = frozenset(
                    inner.id
                    for inner in ast.walk(node.value)
                    if isinstance(inner, ast.Name)
                )
            else:
                self._mask_bases[-1].pop(target, None)
        super().visit_Assign(node)

    def _derived_from(self, mask: ast.expr, array_name: str) -> bool:
        if not self._mask_bases:
            return False
        if isinstance(mask, ast.Name):
            return array_name in self._mask_bases[-1].get(mask.id, ())
        return array_name in {
            inner.id
            for inner in ast.walk(mask)
            if isinstance(inner, ast.Name)
        }

    def _has_shape_assert(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assert):
                for inner in ast.walk(node.test):
                    if isinstance(inner, ast.Attribute) and inner.attr in (
                        "shape", "size", "ndim",
                    ):
                        return True
            elif isinstance(node, ast.Call):
                parts = []
                func = node.func
                while isinstance(func, ast.Attribute):
                    parts.append(func.attr)
                    func = func.value
                if isinstance(func, ast.Name):
                    parts.append(func.id)
                if any("assert" in part.lower() for part in parts):
                    return True
        return False

    def _is_maskish(self, node: ast.expr) -> bool:
        if self._dtype_of(node) == "bool":
            return True
        return isinstance(node, ast.Name) and "mask" in node.id.lower()

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self._param_stack
            and not self._assert_stack[-1]
            and isinstance(node.value, ast.Name)
            and self._is_maskish(node.slice)
            and not (
                isinstance(node.slice, ast.Name)
                and node.slice.id == node.value.id
            )
            and not self._derived_from(node.slice, node.value.id)
        ):
            params = self._param_stack[-1]
            mask_is_param = (
                isinstance(node.slice, ast.Name)
                and node.slice.id in params
            )
            if node.value.id in params or mask_is_param:
                self.report(
                    node,
                    f"boolean-mask indexing of {node.value.id!r} with an "
                    "unasserted shape; a short mask silently drops rows — "
                    "assert the array and mask shapes agree first",
                )
        self.generic_visit(node)
