"""Determinism rules: DET001 (unseeded RNG), DET002 (wall-clock/entropy),
DET003 (unordered-set iteration escaping into results), DET004
(wall-clock taint reaching deterministic code through call edges).

The reproducibility contract of the whole pipeline — bit-identical
parallel-vs-serial execution, checksummed result caching, seeded fault
plans — rests on simulation and statistics code being a pure function of
its (config, seed) inputs.  These rules catch the three ways that contract
silently breaks: fresh entropy, ambient time, and hash-order-dependent
iteration.  DET002 sees the direct call; DET004 walks the project call
graph so a helper that *returns* a wall-clock value is caught at the
deterministic call site that consumes it.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding, Severity
from repro.analysis.names import dotted_parts
from repro.analysis.project import (
    DETERMINISTIC_SCOPE,
    WALL_CLOCK_AND_ENTROPY,
    ProjectIndex,
)
from repro.analysis.rules import BaseChecker, ProjectChecker, project_rule, rule

#: Backwards-compatible aliases; canonical definitions live in
#: :mod:`repro.analysis.project` (the project layer needs them and must
#: not import checker modules).
_DETERMINISTIC_SCOPE = DETERMINISTIC_SCOPE
_WALL_CLOCK_AND_ENTROPY = WALL_CLOCK_AND_ENTROPY

#: numpy.random module-level functions backed by the hidden global
#: RandomState — shared, seed-order-dependent state.
_NUMPY_GLOBAL_STATE = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "choice", "normal", "uniform", "standard_normal",
        "shuffle", "permutation", "bytes", "get_state", "set_state",
    }
)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@rule(
    "DET001",
    "unseeded or global-state RNG construction",
    Severity.ERROR,
    "Simulations and statistics must draw randomness from an explicitly "
    "seeded generator; fresh OS entropy or the hidden module-level RNG "
    "state makes runs irreproducible.",
    scope=_DETERMINISTIC_SCOPE,
)
class UnseededRngChecker(BaseChecker):
    """Flags RNG constructions that are not pinned to an explicit seed."""

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.imports.resolve(node.func)
        if name is not None:
            self._check(node, name)
        self.generic_visit(node)

    def _check(self, node: ast.Call, name: str) -> None:
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "numpy.random.default_rng() without a seed draws fresh "
                    "OS entropy; pass an explicit seed",
                )
            elif node.args and _is_none(node.args[0]):
                self.report(
                    node,
                    "numpy.random.default_rng(None) is an unseeded "
                    "generator; pass an explicit seed",
                )
            return
        head, _, tail = name.rpartition(".")
        if head == "numpy.random" and tail in _NUMPY_GLOBAL_STATE:
            self.report(
                node,
                f"numpy.random.{tail} uses the hidden global RandomState; "
                "construct numpy.random.default_rng(seed) instead",
            )
            return
        if name == "random.Random" and not node.args and not node.keywords:
            self.report(
                node,
                "random.Random() without a seed draws fresh OS entropy; "
                "pass an explicit seed",
            )
            return
        if name == "random.SystemRandom":
            self.report(
                node,
                "random.SystemRandom is OS entropy and can never be seeded",
            )
            return
        if head == "random" and name != "random.Random":
            parts = dotted_parts(node.func)
            if parts is not None and self.ctx.imports.is_imported(parts[0]):
                self.report(
                    node,
                    f"random.{tail} uses the stdlib module-level RNG state; "
                    "use an explicitly seeded random.Random(seed) instance",
                )


@rule(
    "DET002",
    "wall-clock or entropy call in a deterministic code path",
    Severity.ERROR,
    "time.time / datetime.now / os.urandom / uuid.uuid4 inject ambient "
    "state into results, so the same config stops producing the same "
    "dataset.  Duration telemetry should use time.perf_counter, which is "
    "exempt because measured durations never feed back into results.",
    scope=_DETERMINISTIC_SCOPE,
)
class WallClockChecker(BaseChecker):
    """Flags calls to ambient time and entropy sources."""

    def visit_Call(self, node: ast.Call) -> None:
        name = self.ctx.imports.resolve(node.func)
        if name in _WALL_CLOCK_AND_ENTROPY:
            self.report(
                node,
                f"{name}() is a wall-clock/entropy source; deterministic "
                "code paths must take time and identifiers as explicit "
                "inputs",
            )
        self.generic_visit(node)


#: Receiver methods that produce a set from a set.
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins whose output order mirrors their input order.
_ORDER_ESCAPING_BUILTINS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


@rule(
    "DET003",
    "unordered-set iteration order escapes into results",
    Severity.WARNING,
    "Iterating a set (or an externally-ordered mapping such as os.environ) "
    "yields a hash-seed-dependent order; when that order reaches a list, "
    "report or dataset it breaks run-to-run reproducibility.  Wrap the "
    "iterable in sorted(...).",
)
class SetIterationChecker(BaseChecker):
    """Flags iteration over set-valued expressions outside ``sorted()``.

    Tracking is intentionally local: a name assigned a set-valued
    expression is remembered within its enclosing scope only.  Iterating
    inside a set comprehension is exempt (the result is unordered anyway),
    as are order-insensitive consumers (``sum``/``len``/``min``/``max``/
    membership tests).
    """

    def run(self, tree: ast.Module) -> list[Finding]:
        self._scopes: list[dict[str, bool]] = [{}]
        return super().run(tree)

    # -------------------------------------------------------------- scopes
    def _with_new_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._with_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._with_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._with_new_scope(node)

    def _lookup(self, name: str) -> bool:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return False

    # --------------------------------------------------------- set typing
    def _is_set_valued(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_valued(node.left) or self._is_set_valued(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_valued(node.body) and self._is_set_valued(node.orelse)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and self._is_set_valued(func.value)
            ):
                return True
            if isinstance(func, ast.Name) and func.id in {"globals", "locals", "vars"}:
                return True
            return False
        resolved = self.ctx.imports.resolve(node)
        return resolved == "os.environ"

    def _describe(self, node: ast.expr) -> str:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and (
            node.func.id in {"globals", "locals", "vars"}
        ):
            return f"{node.func.id}() (externally-ordered mapping)"
        if self.ctx.imports.resolve(node) == "os.environ":
            return "os.environ (externally-ordered mapping)"
        return "a set"

    # --------------------------------------------------------- assignments
    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._scopes[-1][node.targets[0].id] = self._is_set_valued(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._scopes[-1][node.target.id] = self._is_set_valued(node.value)

    # ---------------------------------------------------------- iteration
    def _check_iter(self, iterable: ast.expr) -> None:
        if self._is_set_valued(iterable):
            self.report(
                iterable,
                f"iteration order of {self._describe(iterable)} is "
                "hash-seed dependent and escapes into an ordered result; "
                "wrap it in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        for generator in node.generators:
            self._check_iter(generator.iter)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_ESCAPING_BUILTINS
            and node.args
        ):
            self._check_iter(node.args[0])
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
        ):
            self._check_iter(node.args[0])
        self.generic_visit(node)


@project_rule(
    "DET004",
    "wall-clock/entropy value reaches deterministic code through call edges",
    Severity.ERROR,
    "A helper outside the deterministic scope may legitimately read the "
    "clock — but the moment a scoped module *consumes its return value*, "
    "ambient time leaks into results exactly as if time.time() were called "
    "inline.  DET002 sees only the direct call; this rule propagates the "
    "taint backwards through the project call graph (value-consuming edges "
    "only) and reports the boundary call site.",
    scope=DETERMINISTIC_SCOPE,
)
class ClockTaintProjectChecker(ProjectChecker):
    """Flags scoped call sites whose callee transitively returns clock values.

    A function is directly tainted when it consumes the return value of a
    :data:`~repro.analysis.project.WALL_CLOCK_AND_ENTROPY` call; taint then
    propagates caller-wards along call edges whose return value is used.
    Findings are reported only at *boundary* edges — a scoped caller
    consuming a tainted callee that lives outside the deterministic scope —
    so in-scope direct calls stay DET002's (already-reported) territory.
    """

    def check(self, index: ProjectIndex) -> None:
        sources: dict[str, str] = {}
        for qualname in sorted(index.functions):
            for clock in index.functions[qualname].clock_calls:
                if clock.value_used:
                    sources.setdefault(qualname, clock.name)
                    break
        if not sources:
            return
        tainted = index.graph.tainted_closure(sources, index.value_edges)
        for caller in sorted(index.functions):
            fn = index.functions[caller]
            if not self.applies(fn.module):
                continue
            for callee in index.graph.callees(caller):
                if callee not in tainted:
                    continue
                target = index.functions.get(callee)
                if target is None or self.applies(target.module):
                    continue
                edge = (caller, callee)
                if not index.value_edges.get(edge, False):
                    continue
                site = index.call_sites[edge]
                chain = tainted[callee]
                clock_name = sources.get(chain[-1], "a wall-clock source")
                self.report(
                    index.path_of(fn.module),
                    site.line,
                    site.col,
                    f"value returned by {target.name!r} derives from "
                    f"{clock_name}() (call chain {' -> '.join(chain)}); "
                    "deterministic code paths must take time and entropy "
                    "as explicit inputs",
                )
