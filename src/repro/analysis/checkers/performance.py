"""Performance rule: PERF001 (per-element Python loop over a numpy array).

The replay hot path (:mod:`repro.sim`, :mod:`repro.uarch`) is columnar:
traces are decoded once into struct-of-arrays numpy batches and replayed
as vectorized passes.  A ``for`` loop that iterates a numpy array — or
``range(len(arr))`` over one — pays one interpreter round-trip *and one
scalar boxing* per element, which is exactly the cost profile the
columnar engine exists to avoid; indexing ``arr[i]`` inside such a loop
is slower still.  Sequential residues that genuinely cannot be
vectorized (LRU state machines, fixpoint derives) should iterate plain
Python lists — ``.tolist()`` the array once, which is also faster than
iterating the array — or carry an explicit ``# repro: noqa[PERF001]``
naming the reason the loop must stay scalar.

The rule is a heuristic over one file: it tracks names bound to numpy
calls (``x = np.flatnonzero(...)``), propagates through subscripts and
aliases, and flags ``for``/comprehension iteration over such values,
including through ``enumerate``/``zip``/``reversed`` and the
``range(len(...))`` index-loop idiom.  Rebinding a name to ``.tolist()``
(or any non-numpy expression) clears it.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Severity
from repro.analysis.rules import BaseChecker, rule

#: Builtin wrappers whose iteration is element-wise over their arguments.
_ITER_WRAPPERS = frozenset(
    {"enumerate", "zip", "reversed", "iter", "map", "filter", "sorted"}
    | {
        f"builtins.{name}"
        for name in ("enumerate", "zip", "reversed", "iter", "map", "filter",
                     "sorted")
    }
)


@rule(
    "PERF001",
    "per-element Python loop over a numpy array",
    Severity.WARNING,
    "The replay hot path is columnar: numpy batches with vectorized "
    "passes.  Iterating a numpy array element-by-element (directly, via "
    "enumerate/zip, or as range(len(arr))) costs one interpreter "
    "round-trip and one scalar boxing per element.  Vectorize the pass, "
    "or .tolist() the array once for a genuinely sequential residue "
    "(also faster), or suppress with a reason.",
    scope=("repro.sim", "repro.uarch"),
)
class NumpyElementLoopChecker(BaseChecker):
    """Flags ``for``/comprehension iteration over numpy-bound values."""

    def run(self, tree: ast.Module) -> list:
        # Pre-pass: every simple-name binding in the file, in line order,
        # marked numpy / not-numpy by its right-hand side.  Lookups take
        # the latest binding at or above the use line, so re-binding a
        # name to ``.tolist()`` clears it from there on.
        self._bindings: dict[str, list[tuple[int, bool]]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            is_numpy = self._is_numpy_expr(value)
            for target in targets:
                if isinstance(target, ast.Name):
                    self._bindings.setdefault(target.id, []).append(
                        (node.lineno, is_numpy)
                    )
        for entries in self._bindings.values():
            entries.sort()
        return super().run(tree)

    # ------------------------------------------------------------ lookup

    def _name_is_numpy(self, name: str, at_line: int) -> bool:
        entries = self._bindings.get(name)
        if not entries:
            return False
        # Latest binding at or above the use; a name first bound further
        # down the file (another function's local, say) is not tracked —
        # missing that is cheaper than flagging a parameter that happens
        # to share its name.
        before = [is_numpy for line, is_numpy in entries if line <= at_line]
        return before[-1] if before else False

    def _is_numpy_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` (heuristically) evaluates to a numpy array."""
        if isinstance(node, ast.Call):
            name = self.ctx.imports.resolve(node.func)
            return name is not None and (
                name == "numpy" or name.startswith("numpy.")
            )
        if isinstance(node, ast.Subscript):
            # Slices of arrays are arrays; integer indexing yields a
            # scalar, which nothing iterates — over-approximating is fine.
            return self._is_numpy_expr(node.value)
        if isinstance(node, ast.Name):
            return self._name_is_numpy(node.id, node.lineno)
        return False

    # ---------------------------------------------------------- checking

    def _numpy_iteration(self, iterable: ast.expr) -> str | None:
        """A message if ``iterable`` walks a numpy array, else None."""
        if isinstance(iterable, ast.Call):
            name = self.ctx.imports.resolve(iterable.func)
            if name in _ITER_WRAPPERS:
                for arg in iterable.args:
                    message = self._numpy_iteration(arg)
                    if message is not None:
                        return message
                return None
            if name in ("range", "builtins.range"):
                for call in ast.walk(iterable):
                    if (
                        isinstance(call, ast.Call)
                        and self.ctx.imports.resolve(call.func)
                        in ("len", "builtins.len")
                        and len(call.args) == 1
                        and self._is_numpy_expr(call.args[0])
                    ):
                        return (
                            "range(len(...)) over a numpy array drives a "
                            "per-element Python loop; vectorize the pass "
                            "or iterate a .tolist() copy"
                        )
                return None
        if self._is_numpy_expr(iterable):
            return (
                "iterating a numpy array element-by-element; vectorize "
                "the pass or iterate a .tolist() copy (faster and "
                "unboxed)"
            )
        return None

    def visit_For(self, node: ast.For) -> None:
        message = self._numpy_iteration(node.iter)
        if message is not None:
            self.report(node, message)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        message = self._numpy_iteration(node.iter)
        if message is not None:
            self.report(node.iter, message)
        self.generic_visit(node)
