"""Project-wide symbol table, fact extraction and the ``ProjectIndex``.

Single-file AST rules see one module at a time; the invariants they guard
stopped being single-file long ago (pool workers calling across modules,
the watchdog thread sharing state with the executor, decoded columns
flowing between ``repro.sim`` and ``repro.uarch``).  This module extracts a
compact, picklable :class:`ModuleSummary` from every analysed file — the
facts a cross-module pass needs, without keeping ASTs alive — and
assembles them into a :class:`ProjectIndex`: a symbol table plus a
deterministic :class:`~repro.analysis.callgraph.CallGraph`, resolved
through each file's :class:`~repro.analysis.names.ImportMap`.

Summaries are pure functions of one file's bytes, which is what makes the
incremental cache (:mod:`repro.analysis.cache`) sound: a summary is keyed
by content digest alone, and only the graph-dependent *findings* carry a
dependency fingerprint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.callgraph import DEFAULT_MAX_DEPTH, CallGraph, Reach
from repro.analysis.names import ImportMap, absolutize, dotted_parts

__all__ = [
    "AttrAccess",
    "CallSite",
    "ClassSummary",
    "ClockCall",
    "FunctionSummary",
    "ModuleInventory",
    "ModuleSummary",
    "ProjectIndex",
    "SubmitSite",
    "ThreadSpawn",
    "first_impurity",
    "summarize_module",
    "DEFAULT_MAX_DEPTH",
    "DETERMINISTIC_SCOPE",
    "WALL_CLOCK_AND_ENTROPY",
]

#: Modules whose code must be a deterministic function of explicit inputs.
#: Canonical definition (the DET checkers re-export it): the project layer
#: needs it too, and it must not import checker modules.
DETERMINISTIC_SCOPE = (
    "repro.sim",
    "repro.uarch",
    "repro.workloads",
    "repro.core",
    "repro.events",
)

#: Wall-clock and entropy sources that must never feed a deterministic
#: code path.  time.perf_counter / time.monotonic are deliberately absent:
#: telemetry may measure durations as long as results do not depend on them.
WALL_CLOCK_AND_ENTROPY = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "extendleft", "popleft", "sort", "reverse",
    }
)

#: Module-level factory calls whose bound name reads as effectively
#: constant even when lowercase: process-local observability handles whose
#: state never feeds back into results.
_CONSTANT_FACTORIES = frozenset(
    {
        "logging.getLogger",
        "repro.obs.log.get_logger",
        "get_logger",
    }
)

#: Lock-producing constructors for lock-attribute discovery.
_LOCK_FACTORIES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
    }
)

_EVENT_FACTORY = "threading.Event"


def _is_constant_style(name: str) -> bool:
    """Module bindings that read as constants/classes, not mutable state."""
    stripped = name.strip("_")
    if not stripped:
        return True
    if name.startswith("__") and name.endswith("__"):
        return True
    return stripped[0].isupper()


# ---------------------------------------------------------------------------
# Per-file fact records (all picklable, all hashable value objects)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CallSite:
    """One statically resolvable call inside a function body.

    Attributes:
        candidates: Fully qualified names the target may resolve to (the
            resolution is conservative; unresolvable receivers are simply
            not recorded).
        line: 1-based source line of the call.
        col: 1-based source column of the call.
        value_used: Whether the call's return value is consumed (anything
            but a bare expression statement).
    """

    candidates: tuple[str, ...]
    line: int
    col: int
    value_used: bool


@dataclass(frozen=True)
class ClockCall:
    """A direct wall-clock/entropy call (DET taint source)."""

    name: str
    line: int
    col: int
    value_used: bool


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` access inside a method.

    ``kind`` is ``"read"``, ``"write"`` (assignment/augassign) or
    ``"mutate"`` (in-place mutator method call); ``locked`` records whether
    the access sits lexically inside a ``with <lock>:`` block.
    """

    attr: str
    line: int
    col: int
    kind: str
    locked: bool


@dataclass(frozen=True)
class FunctionSummary:
    """Cross-module-relevant facts about one function or method."""

    qualname: str
    module: str
    name: str
    line: int
    col: int
    owner_class: str | None
    impurity: str | None
    calls: tuple[CallSite, ...]
    clock_calls: tuple[ClockCall, ...]
    attr_accesses: tuple[AttrAccess, ...]


@dataclass(frozen=True)
class ClassSummary:
    """Thread-safety-relevant facts about one class."""

    qualname: str
    name: str
    line: int
    method_qualnames: tuple[str, ...]
    lock_attrs: tuple[str, ...]
    event_attrs: tuple[str, ...]
    bool_flag_attrs: tuple[str, ...]


@dataclass(frozen=True)
class ThreadSpawn:
    """One ``threading.Thread(target=...)`` construction site."""

    target_candidates: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class SubmitSite:
    """One ``pool.submit(fn, ...)`` site with a named, resolvable ``fn``."""

    display_name: str
    candidates: tuple[str, ...]
    line: int
    col: int


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project phase needs to know about one file."""

    module: str
    path: str
    is_package: bool
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    submit_sites: tuple[SubmitSite, ...] = ()
    thread_spawns: tuple[ThreadSpawn, ...] = ()
    imported_modules: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# Module inventory + impurity judgement (shared with the PURE001 checker)
# ---------------------------------------------------------------------------

@dataclass
class ModuleInventory:
    """Module-level facts needed to judge a function's worker purity."""

    top_functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    mutable_globals: set[str] = field(default_factory=set)
    nested_functions: set[str] = field(default_factory=set)
    lambda_bound: set[str] = field(default_factory=set)

    @classmethod
    def from_tree(
        cls, tree: ast.Module, imports: ImportMap | None = None
    ) -> "ModuleInventory":
        inventory = cls()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inventory.top_functions[stmt.name] = stmt
            elif isinstance(stmt, ast.Assign):
                if _is_constant_factory_call(stmt.value, imports):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not _is_constant_style(
                        target.id
                    ):
                        inventory.mutable_globals.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt, ast.AnnAssign) and _is_constant_factory_call(
                    stmt.value, imports
                ):
                    continue
                target = stmt.target
                if isinstance(target, ast.Name) and not _is_constant_style(
                    target.id
                ):
                    inventory.mutable_globals.add(target.id)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inventory.nested_functions.add(inner.name)
                elif isinstance(inner, ast.Assign) and isinstance(
                    inner.value, ast.Lambda
                ):
                    for target in inner.targets:
                        if isinstance(target, ast.Name):
                            inventory.lambda_bound.add(target.id)
        return inventory


def _is_constant_factory_call(
    value: ast.expr | None, imports: ImportMap | None
) -> bool:
    """``logger = get_logger(__name__)``-style effectively-constant bindings."""
    if not isinstance(value, ast.Call):
        return False
    if imports is not None:
        resolved = imports.resolve(value.func)
        if resolved in _CONSTANT_FACTORIES:
            return True
    parts = dotted_parts(value.func)
    return bool(parts) and parts[-1] in ("get_logger", "getLogger")


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter and locally-bound names that shadow module globals."""
    args = fn.args
    names = {
        arg.arg
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        )
    }
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
    return names


def first_impurity(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    inventory: ModuleInventory,
) -> str | None:
    """First reason ``fn`` is not worker-pure, or None if it looks pure."""
    local = _local_names(fn)

    def is_global(name: str) -> bool:
        return name in inventory.mutable_globals and name not in local

    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            return f"declares 'global {', '.join(node.names)}'"
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if is_global(node.id):
                return f"reads module-level mutable state {node.id!r}"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base: ast.expr = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value
                if isinstance(base, ast.Name) and is_global(base.id):
                    return f"writes module-level state {base.id!r}"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and is_global(node.func.value.id)
        ):
            return (
                f"mutates module-level state {node.func.value.id!r} via "
                f".{node.func.attr}()"
            )
    return None


# ---------------------------------------------------------------------------
# Summarisation
# ---------------------------------------------------------------------------

def _bare_statement_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[int]:
    """ids of Call nodes whose value is discarded (bare ``f()`` statements)."""
    bare: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            bare.add(id(node.value))
    return bare


class _Resolver:
    """Shared name-resolution helpers for one module's summarisation."""

    def __init__(self, module: str, is_package: bool, imports: ImportMap,
                 top_level: set[str]):
        self.module = module
        self.is_package = is_package
        self.imports = imports
        self.top_level = top_level

    def qualify(self, dotted: str) -> str:
        """Absolutize an import-resolved dotted path."""
        return absolutize(dotted, self.module, self.is_package)

    def reference_candidates(
        self, node: ast.expr, owner_class: str | None
    ) -> tuple[str, ...]:
        """Qualified names a function *reference* may denote (not a call)."""
        parts = dotted_parts(node)
        if not parts:
            return ()
        if parts[0] == "self" and owner_class is not None and len(parts) == 2:
            return (f"{self.module}.{owner_class}.{parts[1]}",)
        if len(parts) == 1:
            name = parts[0]
            if name in self.top_level:
                return (f"{self.module}.{name}",)
            if self.imports.is_imported(name):
                return (self.qualify(self.imports.resolve(node) or name),)
            return ()
        resolved = self.imports.resolve(node)
        if resolved is None:
            return ()
        head = parts[0]
        if self.imports.is_imported(head):
            return (self.qualify(resolved),)
        if head in self.top_level:
            # Class attribute chains (Class.method) on a local class.
            return (f"{self.module}.{resolved}",)
        return ()


class _FunctionVisitor(ast.NodeVisitor):
    """Collects call sites, clock calls and attr accesses for one function.

    Nested function/lambda bodies are included (their effects run when the
    outer function runs — a deliberate over-approximation that keeps the
    graph sound for purity and taint propagation).
    """

    def __init__(self, resolver: _Resolver, owner_class: str | None,
                 lock_attrs: set[str]):
        self.resolver = resolver
        self.owner_class = owner_class
        self.lock_attrs = lock_attrs
        self.calls: list[CallSite] = []
        self.clock_calls: list[ClockCall] = []
        self.attr_accesses: list[AttrAccess] = []
        self._bare: set[int] = set()
        self._lock_depth = 0

    def collect(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._bare = _bare_statement_calls(fn)
        for stmt in fn.body:
            self.visit(stmt)

    # ------------------------------------------------------------- lock scope
    def _is_lockish(self, node: ast.expr) -> bool:
        parts = dotted_parts(node)
        if not parts:
            return False
        last = parts[-1].lower()
        if "lock" in last or "mutex" in last:
            return True
        return (
            len(parts) == 2
            and parts[0] == "self"
            and parts[1] in self.lock_attrs
        )

    def visit_With(self, node: ast.With) -> None:
        locked = any(self._is_lockish(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self._lock_depth -= 1

    visit_AsyncWith = visit_With

    # ------------------------------------------------------------- attr facts
    def _record_attr(self, attr: str, node: ast.AST, kind: str) -> None:
        self.attr_accesses.append(
            AttrAccess(
                attr=attr,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                kind=kind,
                locked=self._lock_depth > 0,
            )
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if isinstance(node.ctx, ast.Store):
                self._record_attr(node.attr, node, "write")
            elif isinstance(node.ctx, ast.Load):
                self._record_attr(node.attr, node, "read")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self._record_attr(target.attr, node, "write")
            self.visit(node.value)
            return
        self.generic_visit(node)

    # ------------------------------------------------------------- call facts
    def visit_Call(self, node: ast.Call) -> None:
        value_used = id(node) not in self._bare
        # In-place mutator on a self attribute counts as a write.
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self._record_attr(func.value.attr, node, "mutate")
        resolved = self.resolver.imports.resolve(func)
        if resolved is not None:
            resolved = self.resolver.qualify(resolved)
        if resolved in WALL_CLOCK_AND_ENTROPY:
            self.clock_calls.append(
                ClockCall(
                    name=resolved,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    value_used=value_used,
                )
            )
        candidates = self.resolver.reference_candidates(func, self.owner_class)
        if candidates:
            self.calls.append(
                CallSite(
                    candidates=candidates,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    value_used=value_used,
                )
            )
        self.generic_visit(node)


def _class_facts(
    node: ast.ClassDef, resolver: _Resolver
) -> tuple[set[str], set[str], set[str]]:
    """(lock_attrs, event_attrs, bool_flag_attrs) for one class body."""
    lock_attrs: set[str] = set()
    event_attrs: set[str] = set()
    flags: set[str] = set()
    for inner in ast.walk(node):
        if not isinstance(inner, ast.Assign):
            continue
        for target in inner.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = inner.value
            if isinstance(value, ast.Call):
                resolved = resolver.imports.resolve(value.func)
                if resolved is not None:
                    resolved = resolver.qualify(resolved)
                if resolved in _LOCK_FACTORIES:
                    lock_attrs.add(target.attr)
                elif resolved == _EVENT_FACTORY:
                    event_attrs.add(target.attr)
            elif isinstance(value, ast.Constant) and isinstance(
                value.value, bool
            ):
                flags.add(target.attr)
    return lock_attrs, event_attrs, flags


def _summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    resolver: _Resolver,
    inventory: ModuleInventory,
    owner_class: str | None,
    lock_attrs: set[str],
) -> FunctionSummary:
    visitor = _FunctionVisitor(resolver, owner_class, lock_attrs)
    visitor.collect(fn)
    qual = (
        f"{resolver.module}.{owner_class}.{fn.name}"
        if owner_class
        else f"{resolver.module}.{fn.name}"
    )
    return FunctionSummary(
        qualname=qual,
        module=resolver.module,
        name=fn.name,
        line=fn.lineno,
        col=fn.col_offset + 1,
        owner_class=owner_class,
        impurity=first_impurity(fn, inventory) if owner_class is None else None,
        calls=tuple(visitor.calls),
        clock_calls=tuple(visitor.clock_calls),
        attr_accesses=tuple(visitor.attr_accesses),
    )


def _collect_imported_modules(tree: ast.Module, module: str,
                              is_package: bool) -> tuple[str, ...]:
    """Absolute dotted module targets of every import statement."""
    targets: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = "." * node.level + (node.module or "")
            base = absolutize(base, module, is_package)
            if base:
                targets.add(base)
                for alias in node.names:
                    if alias.name != "*":
                        targets.add(f"{base}.{alias.name}")
    return tuple(sorted(targets))


def summarize_module(
    tree: ast.Module,
    module: str,
    path: str,
    imports: ImportMap,
    is_package: bool = False,
) -> ModuleSummary:
    """Extract the project-phase facts from one parsed module."""
    inventory = ModuleInventory.from_tree(tree, imports)
    top_level = set(inventory.top_functions) | {
        stmt.name for stmt in tree.body if isinstance(stmt, ast.ClassDef)
    }
    resolver = _Resolver(module, is_package, imports, top_level)

    functions: dict[str, FunctionSummary] = {}
    classes: dict[str, ClassSummary] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _summarize_function(stmt, resolver, inventory, None, set())
            functions[summary.qualname] = summary
        elif isinstance(stmt, ast.ClassDef):
            lock_attrs, event_attrs, flags = _class_facts(stmt, resolver)
            method_quals: list[str] = []
            for inner in stmt.body:
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    summary = _summarize_function(
                        inner, resolver, inventory, stmt.name, lock_attrs
                    )
                    functions[summary.qualname] = summary
                    method_quals.append(summary.qualname)
            classes[f"{module}.{stmt.name}"] = ClassSummary(
                qualname=f"{module}.{stmt.name}",
                name=stmt.name,
                line=stmt.lineno,
                method_qualnames=tuple(method_quals),
                lock_attrs=tuple(sorted(lock_attrs)),
                event_attrs=tuple(sorted(event_attrs)),
                bool_flag_attrs=tuple(sorted(flags)),
            )

    submit_sites = _collect_submit_sites(tree, resolver)
    thread_spawns = _collect_thread_spawns(tree, resolver)
    return ModuleSummary(
        module=module,
        path=path,
        is_package=is_package,
        functions=functions,
        classes=classes,
        submit_sites=submit_sites,
        thread_spawns=thread_spawns,
        imported_modules=_collect_imported_modules(tree, module, is_package),
    )


def _collect_submit_sites(
    tree: ast.Module, resolver: _Resolver
) -> tuple[SubmitSite, ...]:
    sites: list[SubmitSite] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            continue
        callable_expr = node.args[0]
        # functools.partial(f, ...) submits f with bound arguments.
        if isinstance(callable_expr, ast.Call):
            resolved = resolver.imports.resolve(callable_expr.func)
            if resolved == "functools.partial" and callable_expr.args:
                callable_expr = callable_expr.args[0]
            else:
                continue
        if not isinstance(callable_expr, (ast.Name, ast.Attribute)):
            continue
        candidates = resolver.reference_candidates(callable_expr, None)
        if not candidates:
            continue
        parts = dotted_parts(callable_expr)
        sites.append(
            SubmitSite(
                display_name=parts[-1] if parts else "<callable>",
                candidates=candidates,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )
    return tuple(sites)


def _collect_thread_spawns(
    tree: ast.Module, resolver: _Resolver
) -> tuple[ThreadSpawn, ...]:
    spawns: list[ThreadSpawn] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = resolver.imports.resolve(node.func)
        if resolved is None or resolver.qualify(resolved) != "threading.Thread":
            continue
        target: ast.expr | None = None
        for keyword in node.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None and len(node.args) >= 2:
            target = node.args[1]
        if target is None:
            continue
        owner = _enclosing_class(tree, node)
        candidates = resolver.reference_candidates(target, owner)
        if candidates:
            spawns.append(
                ThreadSpawn(
                    target_candidates=candidates,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )
    return tuple(spawns)


def _enclosing_class(tree: ast.Module, node: ast.AST) -> str | None:
    """Name of the class whose body (transitively) contains ``node``."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            for inner in ast.walk(stmt):
                if inner is node:
                    return stmt.name
    return None


# ---------------------------------------------------------------------------
# The assembled index
# ---------------------------------------------------------------------------

class ProjectIndex:
    """Symbol table + call graph over every analysed module.

    Built once per lint run from the per-file summaries; project-scope
    rules (:class:`~repro.analysis.rules.ProjectChecker` subclasses)
    traverse it instead of re-walking ASTs.
    """

    def __init__(self, summaries: list[ModuleSummary]):
        #: module name -> summary, insertion-ordered by sorted module name.
        self.modules: dict[str, ModuleSummary] = {
            summary.module: summary
            for summary in sorted(summaries, key=lambda s: s.module)
        }
        #: qualified function name -> summary, across all modules.
        self.functions: dict[str, FunctionSummary] = {}
        #: qualified class name -> summary, across all modules.
        self.classes: dict[str, ClassSummary] = {}
        for summary in self.modules.values():
            self.functions.update(summary.functions)
            self.classes.update(summary.classes)
        self.graph = CallGraph()
        #: (caller, callee) -> any call site consumes the return value.
        self.value_edges: dict[tuple[str, str], bool] = {}
        #: (caller, callee) -> first (line, col, path) call site, for reports.
        self.call_sites: dict[tuple[str, str], CallSite] = {}
        for function in self.functions.values():
            for site in function.calls:
                for callee in self._resolve_callable(site.candidates):
                    edge = (function.qualname, callee)
                    self.graph.add_edge(*edge)
                    self.value_edges[edge] = (
                        self.value_edges.get(edge, False) or site.value_used
                    )
                    self.call_sites.setdefault(edge, site)
        self.graph.seal()

    def _resolve_callable(self, candidates: tuple[str, ...]) -> list[str]:
        """Map reference candidates onto known call-graph nodes.

        A candidate naming a known class resolves to its ``__init__`` (the
        code that actually runs at the call site); unknown names resolve to
        nothing — the graph only contains code we have summaries for.
        """
        resolved: list[str] = []
        for candidate in candidates:
            if candidate in self.functions:
                resolved.append(candidate)
            elif candidate in self.classes:
                init = f"{candidate}.__init__"
                if init in self.functions:
                    resolved.append(init)
        return resolved

    def resolve_function(self, candidates: tuple[str, ...]) -> FunctionSummary | None:
        """First candidate with a summary (candidate order is meaningful)."""
        for candidate in self._resolve_callable(candidates):
            return self.functions[candidate]
        return None

    def thread_entry_points(self) -> tuple[str, ...]:
        """Qualified names of every resolved ``threading.Thread`` target."""
        roots: set[str] = set()
        for summary in self.modules.values():
            for spawn in summary.thread_spawns:
                for candidate in self._resolve_callable(spawn.target_candidates):
                    roots.add(candidate)
        return tuple(sorted(roots))

    def thread_reachable(
        self, max_depth: int = DEFAULT_MAX_DEPTH
    ) -> dict[str, Reach]:
        """Functions reachable from any thread entry point."""
        return self.graph.reachable(self.thread_entry_points(), max_depth)

    def path_of(self, module: str) -> str:
        """Report path for a module name (falls back to the name itself)."""
        summary = self.modules.get(module)
        return summary.path if summary is not None else module
