"""``# repro: noqa[RULE]`` suppression comments.

A finding is suppressed when a comment on the *same physical line* names
its rule id::

    value = time.time()  # repro: noqa[DET002]
    risky(a, b)          # repro: noqa[DET003, PURE002]

Suppressions are deliberately narrow:

* blanket ``# repro: noqa`` (no rule list) is itself a finding (``SUP002``)
  so violations cannot be waved away wholesale;
* naming an unknown rule id is ``SUP002``;
* a suppression that never fires is ``SUP001`` — stale escapes rot into
  blind spots, so they must be deleted when the underlying code is fixed.

For statements spanning several lines, put the comment on the line the
rule reports (the first line of the construct).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity

#: Matches a repro suppression comment anywhere inside a ``#`` comment.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\s*(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)

_RULE_ID = re.compile(r"^[A-Z]+[0-9]+$")


@dataclass
class Suppression:
    """One parsed suppression comment.

    Attributes:
        line: Physical line the comment sits on.
        col: 1-based column of the comment (where hygiene findings point).
        rules: Rule ids named in the bracket list.
        used: Ids that actually suppressed a finding on this line.
    """

    line: int
    col: int
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)


class SuppressionIndex:
    """All suppression comments of one file, with usage tracking."""

    def __init__(
        self,
        suppressions: list[Suppression],
        malformed: list[tuple[int, int, str]],
    ) -> None:
        self._by_line: dict[int, Suppression] = {s.line: s for s in suppressions}
        #: (line, col, message) triples for SUP002 findings.
        self.malformed = malformed

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Tokenize ``source`` and collect its suppression comments.

        Tokenization errors are ignored here — the engine reports the
        parse failure itself (``PARSE001``), and a file that does not
        tokenize has no usable suppressions anyway.
        """
        suppressions: list[Suppression] = []
        malformed: list[tuple[int, int, str]] = []
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls([], [])
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA.search(token.string)
            if match is None:
                continue
            line, col = token.start[0], token.start[1] + 1
            listed = match.group("rules")
            if listed is None:
                malformed.append(
                    (line, col,
                     "blanket '# repro: noqa' is not allowed; "
                     "name the rule ids, e.g. '# repro: noqa[DET001]'")
                )
                continue
            ids = tuple(part.strip() for part in listed.split(",") if part.strip())
            bad = [rule_id for rule_id in ids if not _RULE_ID.match(rule_id)]
            if not ids or bad:
                what = f"malformed rule list {listed!r}" if not bad else (
                    "unrecognisable rule id(s) " + ", ".join(repr(b) for b in bad)
                )
                malformed.append((line, col, what + " in suppression"))
                continue
            suppressions.append(Suppression(line=line, col=col, rules=ids))
        return cls(suppressions, malformed)

    def try_suppress(self, finding: Finding) -> bool:
        """Consume ``finding`` if a same-line suppression names its rule."""
        suppression = self._by_line.get(finding.line)
        if suppression is None or finding.rule not in suppression.rules:
            return False
        suppression.used.add(finding.rule)
        return True

    def hygiene_findings(
        self,
        path: str,
        known_rules: frozenset[str],
        filtered_out: frozenset[str],
    ) -> list[Finding]:
        """SUP001/SUP002 findings after all checkers ran over the file.

        Args:
            path: Report path for the findings.
            known_rules: Every registered rule id (unknown ids → SUP002).
            filtered_out: Rules excluded by ``--select``/``--ignore`` for
                this run; their suppressions are left alone rather than
                reported as unused, so partial runs stay quiet.
        """
        findings = [
            Finding(
                path=path, line=line, col=col, rule="SUP002",
                message=message, severity=Severity.WARNING,
            )
            for line, col, message in self.malformed
        ]
        for suppression in self._by_line.values():
            for rule_id in suppression.rules:
                if rule_id in suppression.used or rule_id in filtered_out:
                    continue
                if rule_id not in known_rules:
                    findings.append(
                        Finding(
                            path=path, line=suppression.line,
                            col=suppression.col, rule="SUP002",
                            message=f"suppression names unknown rule {rule_id!r}",
                            severity=Severity.WARNING,
                        )
                    )
                    continue
                findings.append(
                    Finding(
                        path=path, line=suppression.line,
                        col=suppression.col, rule="SUP001",
                        message=(
                            f"unused suppression: no {rule_id} finding on "
                            "this line — delete the '# repro: noqa' escape"
                        ),
                        severity=Severity.WARNING,
                    )
                )
        return findings
