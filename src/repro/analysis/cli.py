"""The ``repro-lint`` command line (also ``python -m repro.analysis`` and
``gemstone lint``).

Exit codes follow linter convention: 0 = clean, 1 = findings, 2 = usage
or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import REGISTRY, LintConfig, RunStats, lint_paths
from repro.analysis.reporters import render_json, render_text


def _emit(text: str) -> None:
    """``print`` that treats the consumer closing the pipe early (e.g.
    ``repro-lint --list-rules | head``) as end-of-output, not an error."""
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Point stdout at /dev/null so the interpreter-exit flush of the
        # dead pipe does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _rule_table() -> str:
    """The ``--list-rules`` catalogue, one block per rule."""
    blocks = []
    for rule_ in sorted(REGISTRY.values(), key=lambda r: r.id):
        scope = ", ".join(rule_.scope) if rule_.scope else "all modules"
        blocks.append(
            f"{rule_.id} [{rule_.severity}] {rule_.name}\n"
            f"    scope: {scope}\n"
            f"    {rule_.rationale}"
        )
    return "\n".join(blocks)


def _parse_rule_list(raw: str) -> frozenset[str]:
    return frozenset(part.strip() for part in raw.split(",") if part.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-lint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & worker-purity linter for the repro codebase: "
            "custom AST rules (unseeded RNG, wall-clock in sim paths, "
            "set-order leaks, impure pool workers, mutable defaults, "
            "swallowed BaseException) that no off-the-shelf linter covers."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: ./src, plus ./tests "
        "when present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is versioned and machine-readable)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="path prefix to skip during discovery (repeatable)",
    )
    parser.add_argument(
        "--assume-module",
        default=None,
        metavar="MODULE",
        help="treat every linted file as this dotted module (fixture "
        "linting; scoped rules normally key off the package location)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="per-file analysis worker processes (1 = serial, 0 = one per "
        "CPU; default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="enable the content-hash incremental cache rooted at DIR; "
        "warm runs re-analyse only changed files and their reverse "
        "import dependencies",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract a recorded findings baseline; only findings absent "
        "from FILE fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current findings to FILE and exit 0 (adopt-"
        "new-rule workflow)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache/fan-out statistics to stderr after the run",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _default_paths() -> list[str]:
    paths = [path for path in ("src", "tests") if os.path.isdir(path)]
    return paths or ["."]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code (0/1/2)."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        _emit(_rule_table())
        return 0

    config = LintConfig(
        select=_parse_rule_list(args.select) if args.select else None,
        ignore=_parse_rule_list(args.ignore) if args.ignore else frozenset(),
        assume_module=args.assume_module,
        exclude=tuple(args.exclude),
    )
    unknown = config.unknown_rule_ids()
    if unknown:
        parser.error(
            "unknown rule id(s): " + ", ".join(unknown)
            + " (see --list-rules)"
        )

    stats = RunStats()
    try:
        findings = lint_paths(
            args.paths or _default_paths(),
            config=config,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            stats=stats,
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # internal error: report, don't traceback-spam
        print(
            f"repro-lint: internal error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2

    if args.stats:
        print(
            f"repro-lint: {stats.files} files, {stats.analysed} analysed, "
            f"{stats.summaries_cached} summaries cached, "
            f"{stats.findings_cached} findings cached, "
            f"{len(stats.refinalized)} re-merged, "
            f"{stats.quarantined} quarantined, jobs={stats.jobs}",
            file=sys.stderr,
        )

    if args.write_baseline is not None:
        try:
            write_baseline(findings, args.write_baseline)
        except OSError as exc:
            print(f"repro-lint: cannot write baseline: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro-lint: wrote {len(findings)} finding(s) to "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"repro-lint: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings, matched, stale = apply_baseline(findings, baseline)
        if matched or stale:
            note = f"repro-lint: baseline absorbed {matched} finding(s)"
            if stale:
                note += (
                    f"; {stale} baseline entr(y/ies) no longer fire — "
                    "re-run --write-baseline to shrink the file"
                )
            print(note, file=sys.stderr)

    renderer = render_json if args.format == "json" else render_text
    _emit(renderer(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
