"""Content-hash incremental cache for the lint engine.

Two entry kinds, mirroring the engine's phases:

* **analysis entries** — one pickled
  :class:`~repro.analysis.engine.FileAnalysis` per file, keyed by the
  file's *own* content digest.  Sound because Phase A is a pure function
  of one file's bytes.
* **findings entries** — one pickled final findings list per file, keyed
  by the file's *dependency fingerprint* (the digests of its transitive
  project import closure, self included).  A byte change anywhere in that
  closure changes the fingerprint, which is how an edit invalidates its
  reverse dependencies.

Both keys are additionally salted with an **engine fingerprint** (a hash
of every source file in ``repro.analysis`` itself) and a **config
fingerprint** (select/ignore/assume-module plus the registered rule ids),
so upgrading the linter or changing rule selection invalidates everything
without any explicit versioning chore.

Writes go through :func:`repro.atomicio.atomic_write_bytes` — same
philosophy as ``runstate``: a crashed run never leaves a half-written
entry.  Reads treat any undecodable entry as corrupt: the entry is
deleted (quarantined) and recomputed, never trusted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import TYPE_CHECKING, Any

from repro.atomicio import atomic_write_bytes

if TYPE_CHECKING:
    from repro.analysis.engine import FileAnalysis, LintConfig, RunStats
    from repro.analysis.findings import Finding

#: Bumped only for cache-format changes; rule/engine changes are covered
#: by the engine fingerprint automatically.
CACHE_FORMAT = 1

_engine_fp: str | None = None


def engine_fingerprint() -> str:
    """Hash of the analysis package's own source files.

    Any edit to a checker, the engine, or this module changes the
    fingerprint and therefore invalidates every cache entry — the cache
    can never serve findings computed by an older linter.
    """
    global _engine_fp
    if _engine_fp is not None:
        return _engine_fp
    package_dir = os.path.dirname(os.path.abspath(__file__))
    hasher = hashlib.sha256()
    for root, dirs, files in os.walk(package_dir):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            full = os.path.join(root, name)
            hasher.update(os.path.relpath(full, package_dir).encode())
            hasher.update(b"\x00")
            try:
                with open(full, "rb") as handle:
                    hasher.update(handle.read())
            except OSError:
                hasher.update(b"<unreadable>")
            hasher.update(b"\x00")
    _engine_fp = hasher.hexdigest()
    return _engine_fp


def config_fingerprint(config: "LintConfig") -> str:
    """Hash of everything in the config that affects per-file results."""
    from repro.analysis.rules import REGISTRY

    token = repr(
        (
            CACHE_FORMAT,
            sorted(config.select) if config.select is not None else None,
            sorted(config.ignore),
            config.assume_module,
            sorted(REGISTRY),
        )
    )
    return hashlib.sha256(token.encode()).hexdigest()


class LintCache:
    """Directory-backed cache of analysis and findings entries."""

    def __init__(self, root: str, config: "LintConfig") -> None:
        self.root = root
        self._disabled = False
        try:
            os.makedirs(root, exist_ok=True)
        except OSError:
            # An unusable cache directory degrades to a cold run; the lint
            # results themselves must never depend on cache health.
            self._disabled = True
        self._salt = f"{engine_fingerprint()}\x00{config_fingerprint(config)}"

    # ------------------------------------------------------------- keying
    def _entry_path(self, kind: str, path: str, token: str) -> str:
        key = hashlib.sha256(
            f"{kind}\x00{self._salt}\x00{os.path.abspath(path)}\x00{token}".encode()
        ).hexdigest()
        return os.path.join(self.root, f"{kind}-{key[:40]}.pkl")

    # ----------------------------------------------------------------- io
    def _load(self, entry: str, stats: "RunStats | None") -> Any:
        if self._disabled:
            return None
        try:
            with open(entry, "rb") as handle:
                return pickle.loads(handle.read())
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt or unreadable entry: quarantine (delete) and recompute.
            try:
                os.remove(entry)
            except OSError:
                pass
            if stats is not None:
                stats.quarantined += 1
            return None

    def _store(self, entry: str, payload: Any) -> None:
        if self._disabled:
            return
        try:
            atomic_write_bytes(entry, pickle.dumps(payload), fsync=False)
        except OSError:
            pass  # a read-only or full cache degrades to a cold run

    # ------------------------------------------------------ analysis side
    def load_analysis(
        self, path: str, digest: str, stats: "RunStats | None" = None
    ) -> "FileAnalysis | None":
        from repro.analysis.engine import FileAnalysis

        payload = self._load(self._entry_path("analysis", path, digest), stats)
        if isinstance(payload, FileAnalysis) and payload.digest == digest:
            return payload
        return None

    def store_analysis(self, analysis: "FileAnalysis") -> None:
        self._store(
            self._entry_path("analysis", analysis.path, analysis.digest),
            analysis,
        )

    # ------------------------------------------------------ findings side
    def load_findings(
        self, path: str, dep_fp: str, stats: "RunStats | None" = None
    ) -> "list[Finding] | None":
        from repro.analysis.findings import Finding

        payload = self._load(self._entry_path("findings", path, dep_fp), stats)
        if isinstance(payload, list) and all(
            isinstance(item, Finding) for item in payload
        ):
            return payload
        return None

    def store_findings(
        self, path: str, dep_fp: str, findings: "list[Finding]"
    ) -> None:
        self._store(self._entry_path("findings", path, dep_fp), findings)
