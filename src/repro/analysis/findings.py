"""Finding and severity primitives shared by every analysis pass.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: hashable, totally ordered by location (path, line,
column, rule id) so reports are stable regardless of rule execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    Both severities fail the lint gate (exit code 1); the distinction is
    informational: an ``ERROR`` is a broken reproducibility invariant, a
    ``WARNING`` is a heuristic match that deserves a look (or a targeted
    ``# repro: noqa[RULE]``).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the finding was raised in (as given to the engine).
        line: 1-based source line.
        col: 1-based source column.
        rule: Rule identifier (for example ``DET001``).
        message: Human-readable explanation of the violation.
        severity: :class:`Severity` of the owning rule.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)

    def location(self) -> str:
        """``path:line:col`` — the clickable location prefix."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """One text-report line for this finding."""
        return f"{self.location()}: {self.rule} [{self.severity}] {self.message}"
