"""Deterministic call graph over project-wide function summaries.

Nodes are fully qualified function names (``repro.sim.guard.guarded_simulate``,
``repro.sim.guard.CampaignWatchdog._supervise``); edges are the statically
resolved call sites collected by :mod:`repro.analysis.project`.  Every
traversal is deterministic: adjacency lists are sorted at build time and
breadth-first search visits neighbours in sorted order, so findings derived
from the graph are byte-identical across runs, process pools and cache
replays.

The graph is *bounded* by construction — traversals carry an explicit
``max_depth`` and a visited set, so mutual recursion and call cycles
terminate without special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default traversal bound: deep enough to cross every realistic module
#: chain in this codebase, small enough that a pathological fan-out stays
#: cheap.  Cycles are handled by the visited set, not the bound.
DEFAULT_MAX_DEPTH = 16


@dataclass(frozen=True)
class Reach:
    """One function reached during a traversal.

    Attributes:
        qualname: The reached function's fully qualified name.
        depth: Call-edge distance from the traversal root (root = 0).
        path: Qualified names from the root to this function, inclusive.
    """

    qualname: str
    depth: int
    path: tuple[str, ...]

    def via(self) -> str:
        """Human-readable call chain (empty for the root itself)."""
        return " -> ".join(self.path)


class CallGraph:
    """An immutable-after-build, deterministically ordered call graph."""

    def __init__(self) -> None:
        self._edges: dict[str, list[str]] = {}

    def add_edge(self, caller: str, callee: str) -> None:
        """Record one resolved call edge (duplicates collapse)."""
        targets = self._edges.setdefault(caller, [])
        if callee not in targets:
            targets.append(callee)

    def seal(self) -> None:
        """Sort every adjacency list; call once after all edges are added."""
        for targets in self._edges.values():
            targets.sort()

    def callees(self, qualname: str) -> tuple[str, ...]:
        """Direct callees of ``qualname`` (sorted after :meth:`seal`)."""
        return tuple(self._edges.get(qualname, ()))

    def reachable(
        self,
        roots: tuple[str, ...] | list[str],
        max_depth: int = DEFAULT_MAX_DEPTH,
        include_roots: bool = True,
    ) -> dict[str, Reach]:
        """All functions reachable from ``roots`` within ``max_depth`` edges.

        Deterministic BFS: roots are processed in sorted order and each
        adjacency list is visited in sorted order, so the first discovery
        (and therefore the recorded path) of every node is stable.  A node
        reachable along several paths keeps its shortest, lexically first
        discovery.
        """
        reached: dict[str, Reach] = {}
        frontier: list[Reach] = []
        for root in sorted(set(roots)):
            reach = Reach(qualname=root, depth=0, path=(root,))
            reached[root] = reach
            frontier.append(reach)
        while frontier:
            next_frontier: list[Reach] = []
            for current in frontier:
                if current.depth >= max_depth:
                    continue
                for callee in self.callees(current.qualname):
                    if callee in reached:
                        continue
                    reach = Reach(
                        qualname=callee,
                        depth=current.depth + 1,
                        path=(*current.path, callee),
                    )
                    reached[callee] = reach
                    next_frontier.append(reach)
            frontier = next_frontier
        if not include_roots:
            for root in sorted(set(roots)):
                reached.pop(root, None)
        return reached

    def tainted_closure(
        self,
        sources: dict[str, str],
        edges_filter: "dict[tuple[str, str], bool] | None" = None,
        max_rounds: int = DEFAULT_MAX_DEPTH,
    ) -> dict[str, tuple[str, ...]]:
        """Propagate taint from ``sources`` backwards through call edges.

        Args:
            sources: Directly tainted function -> human-readable reason.
            edges_filter: Optional ``(caller, callee) -> bool`` map; an edge
                absent from the map (or mapped to False) does not propagate
                taint.  Used to restrict propagation to call sites whose
                return value is actually consumed.
            max_rounds: Fixpoint iteration bound (cycle safety net).

        Returns:
            Tainted function -> taint path (function names from the
            function itself down to the directly tainted source).
        """
        callers: dict[str, list[str]] = {}
        for caller, targets in self._edges.items():
            for callee in targets:
                callers.setdefault(callee, []).append(caller)
        for sites in callers.values():
            sites.sort()

        tainted: dict[str, tuple[str, ...]] = {
            name: (name,) for name in sorted(sources)
        }
        frontier = sorted(sources)
        for _ in range(max_rounds):
            next_frontier: list[str] = []
            for callee in frontier:
                for caller in callers.get(callee, ()):
                    if caller in tainted:
                        continue
                    if edges_filter is not None and not edges_filter.get(
                        (caller, callee), False
                    ):
                        continue
                    tainted[caller] = (caller, *tainted[callee])
                    next_frontier.append(caller)
            if not next_frontier:
                break
            frontier = sorted(next_frontier)
        return tainted
