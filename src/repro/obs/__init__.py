"""Unified observability: structured tracing, metrics, exporters, logging.

The pipeline's measurement story used to live in three disconnected ad-hoc
records (the executor's ``SimTelemetry``, the result cache's
``CacheTelemetry``, the run-state journal).  ``repro.obs`` replaces that
with one subsystem, designed around the same constraint as the paper's
methodology: measurement must be low-overhead and must never perturb the
thing being measured.

* :mod:`repro.obs.metrics` — a process-local registry of counters, gauges
  and histograms.  The legacy telemetry dataclasses survive as thin views
  over the registry, so nothing downstream had to change.
* :mod:`repro.obs.tracer` — a hierarchical span tracer with a
  context-manager API.  Span identities derive from the span path and a
  monotonic counter — never from wall-clock or PIDs — so the span *tree*
  of a run is deterministic; only the ``start_us``/``dur_us`` fields carry
  wall-clock.  Disabled tracing (the default) costs one attribute check
  per span.
* :mod:`repro.obs.exporters` — out-of-band trace/metric files written via
  :mod:`repro.atomicio`: a JSONL event stream (append-only, torn tail
  dropped on read), Chrome trace-event JSON loadable in Perfetto or
  ``chrome://tracing``, and a Prometheus-style text snapshot.
* :mod:`repro.obs.log` — structured stderr logging (text or JSON lines)
  behind ``gemstone --log-level/--log-json``; library code gets its
  loggers from :func:`get_logger` (rule ``OBS001`` bans ``print`` and the
  root logger in library modules).
* :mod:`repro.obs.merge` — read-time stitching for distributed campaigns:
  checksummed shard trace segments adopted into one campaign-wide trace
  with per-shard tracks, and shard metric snapshots merged into one
  campaign Prometheus snapshot with derived health gauges.
* :mod:`repro.obs.prof` — the deterministic replay profiler: per-pass
  cycle attribution derived from ``SimResult.components`` (no sampling,
  no wall-clock in the identity), joined with measured ``replay/*`` span
  durations into the ``gemstone trace profile`` view.

Nothing in this package ever feeds back into results: a report rendered
with tracing on is byte-identical to one rendered with tracing off.
"""

from repro.obs.exporters import (
    chrome_trace_document,
    prometheus_snapshot,
    read_event_stream,
    slowest_spans,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_prometheus_snapshot,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.merge import (
    campaign_health,
    export_campaign_trace,
    load_trace_records,
    merge_board_metrics,
    merge_campaign_records,
    read_shard_stream,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.prof import attribute_cycles, profile_records
from repro.obs.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "attribute_cycles",
    "campaign_health",
    "chrome_trace_document",
    "configure_logging",
    "export_campaign_trace",
    "get_logger",
    "load_trace_records",
    "merge_board_metrics",
    "merge_campaign_records",
    "profile_records",
    "prometheus_snapshot",
    "read_event_stream",
    "read_shard_stream",
    "slowest_spans",
    "summarize_spans",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_prometheus_snapshot",
]
