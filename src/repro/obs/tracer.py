"""Hierarchical span tracing with deterministic identities.

A :class:`Tracer` hands out :class:`Span` context managers; nesting builds
a slash-separated *span path* (``pipeline/phase:dataset/executor-batch``).
Span identities are ``"<path>#<n>"`` where ``n`` is the tracer's monotonic
record counter — never wall-clock, never a PID — so two runs of the same
configuration produce the identical span *tree*; only the ``start_us`` /
``dur_us`` wall-clock fields differ (compare with :meth:`Tracer.shape`).

Wall-clock is read from ``time.perf_counter`` (sanctioned even inside the
deterministic scopes: durations may be *measured* as long as results never
depend on them) and kept exclusively in trace records.  Nothing a tracer
records ever reaches a report.

Worker processes cannot share the parent's tracer.  Instead the executor
builds a throwaway tracer inside the worker, ships its records back with
the job result, and the parent *stitches* them into its own tree with
:meth:`Tracer.adopt` — re-identifying every record under the parent's
counter and re-basing its timestamps into the parent's clock, so a pooled
run still yields one coherent trace.

With ``stream_path`` set, every record is appended to a JSONL event stream
as it closes (mode ``"a"``, flushed per line — the append-only journal
pattern; a torn tail line is dropped by the reader).  A run killed
mid-pipeline therefore leaves a well-formed trace of everything that
finished, and a resumed run appends a new *segment* to the same stream.

Disabled tracing (the default everywhere) costs one ``enabled`` check per
span: :data:`NULL_TRACER` returns a shared no-op span and reads no clocks.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from time import perf_counter
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Trace stream schema; bump when the record format changes.
TRACE_SCHEMA_VERSION = 1

#: Record fields that carry wall-clock and are excluded from shape
#: comparisons (same config + seed => identical trees modulo these).
WALL_CLOCK_FIELDS = frozenset({"start_us", "dur_us", "ts_us"})


class _NullSpan:
    """The shared no-op span handed out by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    @property
    def start_us(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class Span:
    """One live span; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "path", "span_id", "parent_id",
                 "attrs", "tid", "start_us", "status")

    def __init__(self, tracer: "Tracer", name: str, path: str,
                 span_id: str, parent_id: str | None, attrs: dict,
                 tid: int):
        self.tracer = tracer
        self.name = name
        self.path = path
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.tid = tid
        self.start_us: float = 0.0
        self.status = "ok"

    def __enter__(self) -> "Span":
        self.start_us = self.tracer._now_us()
        self.tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close(self)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to this span after the fact."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event inside this span."""
        self.tracer.event(name, **attrs)


class Tracer:
    """Span factory, record store, and (optionally) JSONL stream writer.

    Args:
        enabled: Disabled tracers record nothing and read no clocks.
        stream_path: Append each record to this JSONL file as it closes.
            The directory is created on demand; an unusable path degrades
            the tracer to in-memory recording with a single warning.
        metrics: When given, every closed span feeds a duration histogram
            (``trace.span.<name>.seconds``) in this registry.

    A tracer is single-threaded by design: the pipeline runs phases
    sequentially in the parent, and worker-process spans arrive through
    :meth:`adopt` rather than concurrent use.
    """

    def __init__(
        self,
        enabled: bool = False,
        stream_path: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.enabled = enabled
        self.metrics = metrics
        self.records: list[dict] = []
        self.segment = 0
        self._seq = 0
        self._stack: list[Span] = []
        self._stream = None
        self._segment_sha = hashlib.sha1()
        self._segment_lines = 0
        self._epoch = perf_counter() if enabled else 0.0
        if enabled and stream_path is not None:
            self._open_stream(stream_path)

    # ------------------------------------------------------------------ stream
    def _open_stream(self, stream_path: str) -> None:
        from repro.obs.exporters import read_event_stream

        try:
            directory = os.path.dirname(stream_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            prior = read_event_stream(stream_path, missing_ok=True)
            self.segment = 1 + max(
                (r["segment"] for r in prior if r.get("kind") == "segment-start"),
                default=-1,
            )
            self._stream = open(stream_path, "a")
        except OSError as exc:
            self._stream = None
            warnings.warn(
                f"trace stream {stream_path} is unusable ({exc}); "
                "tracing continues in memory only",
                RuntimeWarning,
                stacklevel=3,
            )
        self._record(
            {
                "kind": "segment-start",
                "schema": TRACE_SCHEMA_VERSION,
                "segment": self.segment,
            }
        )

    def _record(self, record: dict) -> None:
        self.records.append(record)
        if self._stream is not None:
            try:
                line = json.dumps(record, sort_keys=True) + "\n"
                self._stream.write(line)
                self._stream.flush()
                self._segment_sha.update(line.encode("utf-8"))
                self._segment_lines += 1
            except (OSError, ValueError):
                self._stream = None

    # ------------------------------------------------------------------- clock
    def _now_us(self) -> float:
        return (perf_counter() - self._epoch) * 1e6

    # -------------------------------------------------------------------- api
    @property
    def current_path(self) -> str:
        return self._stack[-1].path if self._stack else ""

    def span(self, name: str, **attrs: Any) -> Span | _NullSpan:
        """A new child span of the innermost open span (or a root span)."""
        if not self.enabled:
            return _NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent is not None else name
        span_id = f"{path}#{self._seq}"
        self._seq += 1
        return Span(
            self,
            name,
            path,
            span_id,
            parent.span_id if parent is not None else None,
            dict(attrs),
            parent.tid if parent is not None else 0,
        )

    def event(self, name: str, **attrs: Any) -> None:
        """A point event attached to the innermost open span."""
        if not self.enabled:
            return
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent is not None else name
        self._record(
            {
                "kind": "event",
                "id": f"{path}#{self._seq}",
                "span": parent.span_id if parent is not None else None,
                "name": name,
                "path": path,
                "ts_us": self._now_us(),
                "tid": parent.tid if parent is not None else 0,
                "segment": self.segment,
                "attrs": dict(attrs),
            }
        )
        self._seq += 1

    def _close(self, span: Span) -> None:
        # Tolerate a span exited out of LIFO order (an abandoned child
        # after an error): pop down to and including this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        duration_us = self._now_us() - span.start_us
        self._record(
            {
                "kind": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "path": span.path,
                "start_us": span.start_us,
                "dur_us": duration_us,
                "tid": span.tid,
                "segment": self.segment,
                "status": span.status,
                "attrs": span.attrs,
            }
        )
        if self.metrics is not None:
            self.metrics.histogram(f"trace.span.{span.name}.seconds").observe(
                duration_us / 1e6
            )

    # ----------------------------------------------------------------- adopt
    def adopt(
        self,
        records: list[dict],
        rebase_us: float | None = None,
        tid: int = 0,
        segment: int | None = None,
        keep_tid: bool = False,
    ) -> None:
        """Stitch a worker tracer's records into this tree.

        Every record is re-identified under this tracer's counter (old ids
        are remapped consistently, including parent links), re-rooted under
        the innermost open span, assigned ``tid`` (its worker lane in the
        Chrome trace), and — because the worker's clock epoch is its own —
        re-based so its timestamps sit at ``rebase_us`` (default: now) in
        this tracer's timeline.

        Campaign stitching generalises the pool case: ``segment`` places
        the adopted records on their own Chrome process track instead of
        this tracer's current segment, and ``keep_tid`` preserves the
        worker's own thread lanes rather than flattening onto ``tid``.
        """
        if not self.enabled or not records:
            return
        parent = self._stack[-1] if self._stack else None
        base_path = parent.path if parent is not None else ""
        base_us = self._now_us() if rebase_us is None else rebase_us
        new_segment = self.segment if segment is None else segment
        # Two passes: children close (and record) before their parents in
        # the worker, so every new id must exist before links are rewritten.
        adopted_records: list[tuple[dict, dict]] = []
        id_map: dict[str, str] = {}
        for record in records:
            if record.get("kind") not in ("span", "event"):
                continue
            adopted = dict(record)
            adopted["path"] = (
                f"{base_path}/{record['path']}" if base_path else record["path"]
            )
            new_id = f"{adopted['path']}#{self._seq}"
            self._seq += 1
            id_map[record["id"]] = new_id
            adopted["id"] = new_id
            adopted["tid"] = int(record.get("tid", 0)) if keep_tid else tid
            adopted["segment"] = new_segment
            adopted_records.append((record, adopted))
        for record, adopted in adopted_records:
            if record["kind"] == "span":
                adopted["parent"] = id_map.get(
                    record.get("parent"),
                    parent.span_id if parent is not None else None,
                )
                adopted["start_us"] = base_us + record["start_us"]
            else:
                adopted["span"] = id_map.get(
                    record.get("span"),
                    parent.span_id if parent is not None else None,
                )
                adopted["ts_us"] = base_us + record["ts_us"]
            self._record(adopted)

    # ------------------------------------------------------------------ tests
    def shape(self) -> list[tuple]:
        """The deterministic skeleton of the trace: records minus wall-clock.

        Two runs of the same configuration must produce equal shapes; this
        is what the determinism tests compare.
        """
        skeleton = []
        for record in self.records:
            skeleton.append(
                tuple(
                    (key, _freeze(value))
                    for key, value in sorted(record.items())
                    if key not in WALL_CLOCK_FIELDS
                )
            )
        return skeleton

    def close(self) -> None:
        """Seal and close the stream handle (records stay in memory).

        The seal is a ``segment-end`` record carrying the line count and
        SHA-1 of everything this tracer wrote for its segment.  It goes to
        the *stream only* (not :attr:`records`), so shapes and adoption are
        unaffected; readers use it to verify a shard's segment arrived
        intact, and its absence marks a segment that died mid-write.
        """
        if self._stream is not None:
            try:
                seal = {
                    "kind": "segment-end",
                    "segment": self.segment,
                    "records": self._segment_lines,
                    "sha1": self._segment_sha.hexdigest(),
                }
                self._stream.write(json.dumps(seal, sort_keys=True) + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


#: The shared disabled tracer: the default for every component.
NULL_TRACER = Tracer(enabled=False)
