"""The metrics registry: counters, gauges and histograms by dotted name.

One :class:`MetricsRegistry` instance is the single source of truth for a
pipeline run's job accounting: the executor, the result cache and the run
state all write into the registry they are handed (or a private one when
constructed standalone), and the legacy telemetry records
(:class:`~repro.sim.executor.SimTelemetry`,
:class:`~repro.sim.result_cache.CacheTelemetry`,
:class:`~repro.core.runstate.RunStateTelemetry`) are thin attribute views
over it — see :class:`MetricView`.

Metrics are process-local and deliberately unsynchronised: worker processes
own their own registries, and anything a worker must report travels back
in-band with its result (the same rule the executor applies to simulation
results themselves).  Values never feed back into analysis products — the
registry is observability, not state.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


class Counter:
    """A cumulative value (int or float).

    ``inc`` is the normal write path; ``set`` exists so legacy ``+=`` code
    working through a :class:`MetricView` keeps its exact semantics.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount


#: Default histogram buckets: sub-millisecond through minutes, in seconds.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0
)


class Histogram:
    """A fixed-bucket duration histogram (seconds by convention).

    Tracks count / sum / min / max plus cumulative bucket counts in the
    Prometheus style (``le`` upper bounds, implicit ``+Inf``).
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending with +Inf."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs


@dataclass
class MetricsRegistry:
    """All metrics of one process, keyed by dotted name.

    Accessors create on first use, so instrumentation never has to
    pre-declare; asking for an existing name with a different metric type
    is a programming error and raises ``TypeError``.
    """

    _metrics: dict[str, Counter | Gauge | Histogram] = field(
        default_factory=dict
    )

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """Convenience scalar read (counter/gauge value, histogram sum)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value

    def values_with_prefix(self, prefix: str) -> dict[str, float]:
        """Scalar values of every metric under one dotted prefix, sorted.

        Lets a caller surface one subsystem's counters (the campaign CLI
        prints ``sim.campaign.*`` this way) without naming each metric.
        """
        return {
            name: self.value(name)
            for name in self.names()
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready dump of every metric, sorted by name."""
        out: dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "buckets": [
                        [bound, n] for bound, n in metric.cumulative()
                    ],
                }
        return out

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry's counters/histograms into this one.

        Gauges take the other registry's value (last write wins).  Used to
        merge a standalone component's private registry into a shared one.
        """
        for name, metric in other._metrics.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).set(metric.value)
            else:
                mine = self.histogram(name, buckets=metric.buckets)
                if mine.buckets != metric.buckets:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch: "
                        f"{mine.buckets} != {metric.buckets}"
                    )
                for bound_index, n in enumerate(metric.bucket_counts):
                    mine.bucket_counts[bound_index] += n
                mine.count += metric.count
                mine.sum += metric.sum
                if metric.count:
                    mine.min = min(mine.min, metric.min)
                    mine.max = max(mine.max, metric.max)


class MetricView:
    """Attribute facade exposing registry counters under legacy names.

    Subclasses set ``_fields`` (attribute -> metric name).  Reading an
    attribute reads the counter; writing sets it, so existing
    ``telemetry.jobs_run += n`` call sites keep their exact behaviour while
    the registry stays the single source of truth.  Keyword arguments give
    initial values, matching the dataclasses these views replaced.
    """

    _fields: dict[str, str] = {}

    def __init__(
        self, registry: MetricsRegistry | None = None, **values: float
    ):
        object.__setattr__(
            self, "registry", registry if registry is not None else MetricsRegistry()
        )
        fields = type(self)._fields
        for name, value in values.items():
            if name not in fields:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r}"
                )
            self.registry.counter(fields[name]).set(value)

    def __getattr__(self, name: str):
        fields = type(self)._fields
        if name in fields:
            return self.registry.counter(fields[name]).value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        fields = type(self)._fields
        if name in fields:
            self.registry.counter(fields[name]).set(value)
            return
        object.__setattr__(self, name, value)

    def as_dict(self) -> dict[str, float]:
        return {
            attr: self.registry.counter(metric).value
            for attr, metric in type(self)._fields.items()
        }

    def __repr__(self) -> str:  # keeps test failure output readable
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"
