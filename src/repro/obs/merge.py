"""Campaign-scale stitching: shard trace segments and metric snapshots.

A distributed campaign (:mod:`repro.sim.campaign`) runs shard workers in
their own processes; each worker streams checksummed JSONL trace segments
into ``<board_dir>/obs/<owner>/events.jsonl`` and leaves a JSON metrics
snapshot beside it.  This module is the coordinator-side read path:

* :func:`read_shard_stream` — a seal-verifying stream reader.  Every
  cleanly-closed tracer segment ends with a ``segment-end`` record
  carrying the segment's line count and SHA-1; a verified segment's
  records are trusted, a mismatching one is dropped whole, and an
  unsealed tail (the shard was SIGKILLed mid-segment) is kept
  best-effort with any torn final line already dropped by
  :func:`~repro.obs.exporters.read_event_stream`.
* :func:`merge_campaign_records` — stitches every shard stream into one
  campaign-wide record list via a generalised :meth:`Tracer.adopt`,
  giving each (shard, segment) its own Chrome process track.
* :func:`merge_snapshots` / :func:`registry_from_snapshot` — rebuild and
  combine per-shard :class:`MetricsRegistry` snapshots (counters add,
  gauges last-write in shard order, histograms merge bucket-wise).
* :func:`campaign_health` / :func:`autotune_hint` — derived health
  metrics (steal rate, straggler skew, board contention index) and the
  structured shard-count hint they feed.

Merging is a *pure function* of the on-disk artifacts: nothing here
writes into a live tracer's stream, so re-exporting a campaign trace —
including after a coordinator kill+resume — is deterministic and
byte-identical for the same set of shard streams.

This module deliberately imports nothing from :mod:`repro.sim`: the
campaign layer calls down into it, never the reverse.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable

from repro.obs.exporters import (
    CHROME_FILE,
    EVENTS_FILE,
    METRICS_FILE,
    read_event_stream,
    write_chrome_trace,
    write_prometheus_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Per-board observability directory (shard streams + metric snapshots).
OBS_DIR = "obs"

#: Per-shard metrics snapshot file inside ``obs/<owner>/``.
SNAPSHOT_FILE = "metrics.json"

#: The board manifest whose presence marks a campaign directory.
BOARD_MANIFEST = "board.json"


# ------------------------------------------------------------------ streams
def read_shard_stream(
    path: str, missing_ok: bool = True
) -> tuple[list[dict], list[str]]:
    """Read one shard's JSONL stream, verifying ``segment-end`` seals.

    Returns ``(records, problems)`` where ``records`` excludes the seal
    records themselves and ``problems`` describes anything dropped or
    unverified.  Semantics per segment:

    * sealed and matching — records kept, trusted;
    * sealed but count/checksum mismatch — the whole segment is dropped
      (its content cannot be trusted);
    * unsealed (the writer died before :meth:`Tracer.close`) — records
      kept best-effort, noted as unsealed.
    """
    raw = read_event_stream(path, missing_ok=missing_ok)
    records: list[dict] = []
    problems: list[str] = []
    pending: list[dict] = []
    sha = hashlib.sha1()
    count = 0

    def _reset() -> None:
        nonlocal pending, sha, count
        pending = []
        sha = hashlib.sha1()
        count = 0

    def _flush_unsealed() -> None:
        if pending:
            problems.append(
                f"{path}: segment "
                f"{pending[0].get('segment', 0)} has no seal "
                f"({len(pending)} records kept best-effort)"
            )
            records.extend(pending)
        _reset()

    for record in raw:
        kind = record.get("kind")
        if kind == "segment-start" and pending:
            # A new segment began without the previous one sealing: the
            # earlier writer was killed mid-segment.
            _flush_unsealed()
        if kind == "segment-end":
            ok = (
                record.get("records") == count
                and record.get("sha1") == sha.hexdigest()
            )
            if ok:
                records.extend(pending)
            else:
                problems.append(
                    f"{path}: segment {record.get('segment', 0)} failed "
                    f"its seal ({len(pending)} records dropped)"
                )
            _reset()
            continue
        line = json.dumps(record, sort_keys=True) + "\n"
        sha.update(line.encode("utf-8"))
        count += 1
        pending.append(record)
    _flush_unsealed()
    return records, problems


def is_campaign_dir(directory: str) -> bool:
    """Whether ``directory`` is a campaign board (vs a plain trace dir)."""
    return os.path.isfile(os.path.join(directory, BOARD_MANIFEST))


def shard_streams(board_dir: str) -> list[tuple[str, str]]:
    """``(owner, stream path)`` for every shard stream under ``obs/``."""
    obs = os.path.join(board_dir, OBS_DIR)
    try:
        owners = sorted(os.listdir(obs))
    except (FileNotFoundError, NotADirectoryError):
        return []
    out = []
    for owner in owners:
        path = os.path.join(obs, owner, EVENTS_FILE)
        if os.path.isfile(path):
            out.append((owner, path))
    return out


def merge_campaign_records(
    board_dir: str,
    coordinator_records: list[dict] | None = None,
) -> tuple[list[dict], dict[int, str]]:
    """Stitch coordinator + shard streams into one campaign-wide trace.

    Coordinator records (read from ``<board_dir>/events.jsonl`` unless
    passed in) keep their own segments as Chrome ``pid`` lanes; each
    shard (owner, segment) pair is adopted onto the next free ``pid`` so
    every shard renders as its own process track.  Returns
    ``(records, process_names)`` where ``process_names`` labels the
    shard tracks for :func:`~repro.obs.exporters.chrome_trace_document`.
    """
    if coordinator_records is None:
        coordinator_records, _ = read_shard_stream(
            os.path.join(board_dir, EVENTS_FILE), missing_ok=True
        )
    coordinator_records = [
        r for r in coordinator_records if r.get("kind") != "segment-end"
    ]
    pid = 1 + max(
        (int(r.get("segment", 0)) for r in coordinator_records), default=-1
    )
    stitcher = Tracer(enabled=True)
    names: dict[int, str] = {}
    for owner, path in shard_streams(board_dir):
        shard_records, _ = read_shard_stream(path, missing_ok=True)
        shard_records = [
            r for r in shard_records if r.get("kind") in ("span", "event")
        ]
        segments = sorted(
            {int(r.get("segment", 0)) for r in shard_records}
        )
        for segment in segments:
            stitcher.adopt(
                [
                    r
                    for r in shard_records
                    if int(r.get("segment", 0)) == segment
                ],
                rebase_us=0.0,
                segment=pid,
                keep_tid=True,
            )
            names[pid] = f"campaign {owner}" + (
                f" segment {segment}" if segment else ""
            )
            pid += 1
    return coordinator_records + stitcher.records, names


def load_trace_records(
    directory: str,
) -> tuple[list[dict], dict[int, str] | None]:
    """Records (+ track names) for a trace *or* campaign directory.

    Plain ``--trace-out`` directories read their single stream; campaign
    board directories transparently merge every shard stream (plus the
    coordinator's, when the campaign was traced into the board).
    """
    if is_campaign_dir(directory):
        records, names = merge_campaign_records(directory)
        return records, names
    records, _ = read_shard_stream(
        os.path.join(directory, EVENTS_FILE), missing_ok=False
    )
    return records, None


# ------------------------------------------------------------------ metrics
def registry_from_snapshot(snapshot: dict) -> MetricsRegistry:
    """Rebuild a :class:`MetricsRegistry` from ``snapshot()`` output.

    Snapshot histogram buckets are cumulative (Prometheus style); they
    are de-cumulated back into per-bucket counts so rebuilt registries
    merge exactly like live ones.

    Raises:
        ValueError: On a malformed snapshot entry.
    """
    registry = MetricsRegistry()
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind == "counter":
            registry.counter(name).set(data["value"])
        elif kind == "gauge":
            registry.gauge(name).set(data["value"])
        elif kind == "histogram":
            pairs = list(data["buckets"])
            if not pairs:
                raise ValueError(f"histogram {name!r} has no buckets")
            bounds = tuple(float(b) for b, _ in pairs[:-1])
            metric = registry.histogram(name, buckets=bounds)
            running = 0
            for index, (_, cum) in enumerate(pairs[:-1]):
                metric.bucket_counts[index] = int(cum) - running
                running = int(cum)
            metric.count = int(data["count"])
            metric.bucket_counts[-1] = metric.count - running
            metric.sum = float(data["sum"])
            if metric.count:
                metric.min = float(data["min"])
                metric.max = float(data["max"])
        else:
            raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    return registry


def merge_snapshots(snapshots: Iterable[dict]) -> MetricsRegistry:
    """Combine shard snapshots into one registry (the campaign view).

    Counters add, gauges take the last shard's value (callers pass
    snapshots in sorted owner order for determinism), histograms merge
    bucket-wise.  A name carrying different metric *types* across shards
    raises ``TypeError``; different histogram bucket bounds raise
    ``ValueError`` — both are programming errors, not data to paper over.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.absorb(registry_from_snapshot(snapshot))
    return merged


def read_shard_snapshots(board_dir: str) -> dict[str, dict]:
    """Every readable ``obs/<owner>/metrics.json``, keyed by owner."""
    out: dict[str, dict] = {}
    obs = os.path.join(board_dir, OBS_DIR)
    try:
        owners = sorted(os.listdir(obs))
    except (FileNotFoundError, NotADirectoryError):
        return out
    for owner in owners:
        path = os.path.join(obs, owner, SNAPSHOT_FILE)
        if not os.path.isfile(path):
            continue
        try:
            with open(path) as handle:
                snapshot = json.load(handle)
        except (OSError, ValueError):
            continue  # a torn snapshot is dropped, like a torn trace line
        if isinstance(snapshot, dict):
            out[owner] = snapshot
    return out


def merge_board_metrics(board_dir: str) -> MetricsRegistry:
    """One merged registry over every snapshot under ``obs/``."""
    snapshots = read_shard_snapshots(board_dir)
    return merge_snapshots(snapshots[owner] for owner in sorted(snapshots))


# ------------------------------------------------------------------- health
def _scalar(registry: MetricsRegistry, name: str) -> float:
    try:
        return float(registry.value(name))
    except KeyError:
        return 0.0


def campaign_health(
    merged: MetricsRegistry,
    per_owner_done: dict[str, int] | None = None,
) -> dict:
    """Derived campaign health from the merged shard metrics.

    * ``steal_rate`` — stolen leases per claim; a high rate means leases
      expire under live shards (TTL too short or shards overloaded).
    * ``straggler_skew`` — max/mean jobs done per shard (1.0 = perfectly
      balanced); needs the per-owner done counts from the journal.
    * ``contention_index`` — seconds spent waiting on the board lock per
      second of simulation; high values mean the board, not the CPUs, is
      the bottleneck.
    """
    claimed = _scalar(merged, "sim.campaign.jobs_claimed")
    stolen = _scalar(merged, "sim.campaign.leases_stolen")
    flock_wait = _scalar(merged, "sim.campaign.board.flock_wait.seconds")
    job_seconds = _scalar(merged, "sim.campaign.job.seconds")
    skew = None
    if per_owner_done:
        done = [n for n in per_owner_done.values() if n > 0]
        if done:
            skew = max(done) / (sum(done) / len(done))
    return {
        "jobs_claimed": claimed,
        "leases_stolen": stolen,
        "steal_rate": stolen / claimed if claimed else 0.0,
        "straggler_skew": skew,
        "contention_index": (
            flock_wait / job_seconds if job_seconds else None
        ),
    }


def record_health_gauges(
    merged: MetricsRegistry, health: dict
) -> None:
    """Publish the derived health values as gauges on the merged registry.

    These appear in the campaign Prometheus snapshot only — they carry
    wall-clock-derived ratios and never reach a report.
    """
    gauges = {
        "sim.campaign.health.steal_rate": health["steal_rate"],
        "sim.campaign.health.straggler_skew": health["straggler_skew"],
        "sim.campaign.health.contention_index": health["contention_index"],
    }
    for name, value in gauges.items():
        if value is not None:
            merged.gauge(name).set(value)


def autotune_hint(
    shards: int,
    total_jobs: int,
    steal_rate: float,
    contention_index: float | None = None,
) -> dict:
    """A structured shard-count suggestion from campaign health.

    The report's campaign section computes this from *deterministic*
    inputs only (job counts and journal-derived steal rate), so a clean
    campaign report stays byte-identical traced or not;
    ``campaign status --detail`` re-runs it with the wall-clock
    contention index folded in.
    """
    if total_jobs and shards > total_jobs:
        return {
            "suggested_shards": total_jobs,
            "reason": (
                f"only {total_jobs} job(s) on the board — extra shards "
                "would idle"
            ),
        }
    if steal_rate > 0.25:
        return {
            "suggested_shards": max(1, shards // 2),
            "reason": (
                f"steal rate {steal_rate:.0%}: leases expire under live "
                "shards; use fewer shards or a longer --ttl"
            ),
        }
    if contention_index is not None and contention_index > 0.25:
        return {
            "suggested_shards": max(1, shards // 2),
            "reason": (
                f"board contention index {contention_index:.2f}: shards "
                "spend over a quarter of job time waiting on the board "
                "lock"
            ),
        }
    return {
        "suggested_shards": shards,
        "reason": "shard count is well matched to the board",
    }


# ------------------------------------------------------------------- export
def export_campaign_trace(
    board_dir: str,
    out_dir: str | None = None,
    coordinator_stream: str | None = None,
) -> dict:
    """Write the merged Chrome trace + Prometheus snapshot for a campaign.

    ``out_dir`` defaults to the board itself; the coordinator stream is
    read from ``<out_dir>/events.jsonl`` (where ``campaign run
    --trace-out`` puts it) when not given explicitly.  Pure read-merge-
    write: safe to re-run, byte-identical for unchanged streams.
    """
    out_dir = board_dir if out_dir is None else out_dir
    if coordinator_stream is None:
        coordinator_stream = os.path.join(out_dir, EVENTS_FILE)
    coordinator_records, _ = read_shard_stream(
        coordinator_stream, missing_ok=True
    )
    records, names = merge_campaign_records(
        board_dir, coordinator_records=coordinator_records
    )
    os.makedirs(out_dir, exist_ok=True)
    chrome_path = os.path.join(out_dir, CHROME_FILE)
    events = write_chrome_trace(records, chrome_path, process_names=names)
    merged = merge_board_metrics(board_dir)
    record_health_gauges(merged, campaign_health(merged))
    metrics_path = os.path.join(out_dir, METRICS_FILE)
    write_prometheus_snapshot(merged, metrics_path)
    return {"chrome": chrome_path, "metrics": metrics_path, "events": events}
