"""Trace and metric exporters: JSONL stream reader, Chrome trace, Prometheus.

All finished-file writes go through :mod:`repro.atomicio` so a crash never
leaves a torn export; the live JSONL event stream is the one append-only
artifact, and :func:`read_event_stream` drops a torn tail line the same
way the run journal does.

The Chrome trace-event document (``{"traceEvents": [...]}`` with ``ph: X``
complete events) loads directly in Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Run *segments* (a killed-then-resumed pipeline) map
to Chrome ``pid`` lanes and worker processes to ``tid`` lanes, so an
interrupted run renders as two aligned process tracks rather than one
garbled timeline.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.atomicio import atomic_write_text
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry

#: Canonical file names inside a ``--trace-out`` directory.
EVENTS_FILE = "events.jsonl"
CHROME_FILE = "trace.chrome.json"
METRICS_FILE = "metrics.prom"


# --------------------------------------------------------------------- stream
def read_event_stream(path: str, missing_ok: bool = False) -> list[dict]:
    """Parse a JSONL trace stream, dropping a torn or corrupt tail.

    Unlike the checksummed run journal, a trace stream is best-effort
    observability: a bad line ends the trusted prefix (everything before
    it is returned) rather than raising.

    Raises:
        FileNotFoundError: When the stream is absent and not ``missing_ok``.
    """
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        if missing_ok:
            return []
        raise
    records: list[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break
        if not isinstance(record, dict) or "kind" not in record:
            break
        records.append(record)
    return records


def span_records(records: Iterable[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == "span"]


# --------------------------------------------------------------------- chrome
def chrome_trace_document(
    records: Iterable[dict],
    process_names: dict[int, str] | None = None,
) -> dict:
    """Records -> a Chrome trace-event JSON document (Perfetto-loadable).

    ``process_names`` overrides the display name of individual ``pid``
    lanes (stitched campaigns label shard tracks with the shard owner;
    plain runs keep the default ``gemstone run segment N`` naming).
    """
    events: list[dict] = []
    segments: set[int] = set()
    for record in records:
        kind = record.get("kind")
        segment = int(record.get("segment", 0))
        if kind == "span":
            segments.add(segment)
            events.append(
                {
                    "name": record["name"],
                    "cat": str(record.get("attrs", {}).get("kind", "span")),
                    "ph": "X",
                    "ts": float(record["start_us"]),
                    "dur": max(float(record["dur_us"]), 0.0),
                    "pid": segment,
                    "tid": int(record.get("tid", 0)),
                    "args": {
                        "path": record.get("path", record["name"]),
                        "status": record.get("status", "ok"),
                        **record.get("attrs", {}),
                    },
                }
            )
        elif kind == "event":
            segments.add(segment)
            events.append(
                {
                    "name": record["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": float(record["ts_us"]),
                    "pid": segment,
                    "tid": int(record.get("tid", 0)),
                    "args": dict(record.get("attrs", {})),
                }
            )
    names = process_names or {}
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": segment,
            "tid": 0,
            "args": {
                "name": names.get(
                    segment, f"gemstone run segment {segment}"
                ),
            },
        }
        for segment in sorted(segments)
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Any) -> int:
    """Check a Chrome trace-event document's schema; returns event count.

    Raises:
        ValueError: On any structural violation (what ``make trace-smoke``
            and the chaos suite assert against).
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"{where} is missing {key!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"{where}.name is not a string")
        phase = event["ph"]
        if phase not in ("X", "i", "M", "B", "E", "C"):
            raise ValueError(f"{where}.ph {phase!r} is not a known phase")
        if phase == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(f"{where}.{key} is not a number")
            if event["dur"] < 0:
                raise ValueError(f"{where}.dur is negative")
        if phase == "i" and not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"{where}.ts is not a number")
    return len(events)


def write_chrome_trace(
    records: Iterable[dict],
    path: str,
    process_names: dict[int, str] | None = None,
) -> int:
    """Write the Chrome trace-event export atomically; returns event count."""
    document = chrome_trace_document(records, process_names=process_names)
    atomic_write_text(path, json.dumps(document, sort_keys=True))
    return len(document["traceEvents"])


# ----------------------------------------------------------------- prometheus
def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: ``\\``, ``\\n``, ``"``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _prom_labels(labels: dict[str, str] | None, extra: str = "") -> str:
    parts = [
        f'{key}="{_prom_label_value(value)}"'
        for key, value in sorted((labels or {}).items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_snapshot(
    registry: MetricsRegistry, labels: dict[str, str] | None = None
) -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    ``labels`` are attached to every sample (merged campaign snapshots
    label per-shard slices with ``shard="..."``); label values are escaped
    per the exposition format, so owner names with quotes, backslashes or
    newlines cannot corrupt the document.
    """
    lines: list[str] = []
    plain = _prom_labels(labels)
    for name in registry.names():
        metric = registry._metrics[name]
        prom = _prom_name(name)
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {prom} histogram")
            for bound, count in metric.cumulative():
                le = "+Inf" if bound == float("inf") else _prom_value(bound)
                bucket = _prom_labels(labels, extra=f'le="{le}"')
                lines.append(f"{prom}_bucket{bucket} {count}")
            lines.append(f"{prom}_sum{plain} {_prom_value(metric.sum)}")
            lines.append(f"{prom}_count{plain} {metric.count}")
        else:
            kind = "gauge" if isinstance(metric, Gauge) else "counter"
            lines.append(f"# TYPE {prom} {kind}")
            lines.append(f"{prom}{plain} {_prom_value(metric.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus_snapshot(registry: MetricsRegistry, path: str) -> None:
    atomic_write_text(path, prometheus_snapshot(registry))


# ------------------------------------------------------------------- analysis
def summarize_spans(records: Iterable[dict]) -> list[dict]:
    """Aggregate spans by name: count, total/mean/max duration (ms).

    Sorted by total duration, descending — the ``gemstone trace summary``
    table.
    """
    totals: dict[str, dict] = {}
    for record in span_records(records):
        entry = totals.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "total_ms": 0.0, "max_ms": 0.0},
        )
        duration_ms = float(record["dur_us"]) / 1000.0
        entry["count"] += 1
        entry["total_ms"] += duration_ms
        entry["max_ms"] = max(entry["max_ms"], duration_ms)
    for entry in totals.values():
        entry["mean_ms"] = entry["total_ms"] / entry["count"]
    return sorted(
        totals.values(), key=lambda e: (-e["total_ms"], e["name"])
    )


def slowest_spans(records: Iterable[dict], top: int = 10) -> list[dict]:
    """The ``top`` individual spans by duration, longest first."""
    spans = sorted(
        span_records(records),
        key=lambda r: (-float(r["dur_us"]), r.get("id", "")),
    )
    return spans[:top]
