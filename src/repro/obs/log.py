"""Structured stderr logging for the library and the CLI.

Library modules obtain loggers with :func:`get_logger` (always namespaced
under ``repro``); rule ``OBS001`` bans ``print`` and root-logger calls in
library code so diagnostics stay routable.  By default nothing is emitted
(a ``NullHandler`` on the ``repro`` logger); ``gemstone --log-level INFO``
(optionally ``--log-json``) installs a stderr handler via
:func:`configure_logging`.

The JSON mode emits one object per line (``ts`` is seconds since the
handler was installed — a monotonic offset, so log files stay free of
absolute wall-clock just like trace files keep it out of reports).
"""

from __future__ import annotations

import json
import logging
import sys
from time import perf_counter
from typing import Any, TextIO

_ROOT_NAME = "repro"

#: Accepted ``--log-level`` spellings.
LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str) -> logging.Logger:
    """A logger namespaced under ``repro`` (never the root logger).

    ``get_logger("repro.sim.executor")`` and ``get_logger("executor")``
    both land under the ``repro`` hierarchy, so one handler configuration
    covers the whole library.
    """
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


class _JsonFormatter(logging.Formatter):
    """One JSON object per record: level, logger, message, extras."""

    def __init__(self) -> None:
        super().__init__()
        self._epoch = perf_counter()

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(perf_counter() - self._epoch, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: str | None = "warning",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """(Re)install the ``repro`` stderr handler; returns the root logger.

    Args:
        level: One of :data:`LEVELS` (case-insensitive); ``None`` removes
            the handler and silences the library again.
        json_lines: Emit JSON lines instead of ``level name: message``.
        stream: Destination stream (default ``sys.stderr``).

    Raises:
        ValueError: For an unknown level name.
    """
    root = logging.getLogger(_ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.addHandler(logging.NullHandler())
    if level is None:
        return root
    normalized = level.lower()
    if normalized not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LEVELS}"
        )
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname).1s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(normalized.upper())
    return root
