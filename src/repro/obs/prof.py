"""Deterministic replay profiler: per-pass cycle/second attribution.

The columnar engine (:mod:`repro.sim.columnar`) replays a trace as a
fixed sequence of named passes (``replay/decode``, ``replay/branch_pass``,
``replay/l1d_pass``, ...).  Every simulated core cycle it produces is the
sum of the named :attr:`SimResult.components` terms, and each term is
computed by exactly one pass — so cycle attribution can be *derived*, not
sampled: :data:`PASS_COMPONENTS` maps each pass to the component terms it
accounts for, and :func:`attribute_cycles` turns a result's components
dict into per-pass cycles with no wall-clock anywhere in the identity.

At replay time the engine emits one ``replay-profile`` trace event per
simulation carrying that attribution; its attributes are pure functions
of (trace, machine), so traced runs keep deterministic span shapes.
Wall-clock *seconds* per pass come from the ordinary ``replay/*`` span
durations, which live only in the trace stream.  :func:`profile_records`
joins the two into the ``gemstone trace profile`` table.

Bookkeeping passes (``replay/control_pass``, ``replay/merge_events``,
``replay/l2_walk``) compute event *schedules* whose cycle cost is
accounted by the structure passes that consume them; they attribute zero
cycles but still report their measured seconds.
"""

from __future__ import annotations

from typing import Iterable

#: Pass name -> the SimResult.components terms that pass accounts for.
#: Every components key appears exactly once, so attributed cycles sum to
#: ``core_cycles`` (the >=95% coverage gate holds by construction).
PASS_COMPONENTS: dict[str, tuple[str, ...]] = {
    "replay/decode": ("base", "ops", "load_use", "sync", "misc"),
    "replay/branch_pass": ("branch",),
    "replay/control_pass": (),
    "replay/itlb_pass": ("itlb",),
    "replay/l1i_pass": ("icache",),
    "replay/dtlb_pass": ("dtlb",),
    "replay/l1d_pass": ("dcache",),
    "replay/merge_events": (),
    "replay/l2_walk": (),
}


def attribute_cycles(components: dict[str, float]) -> dict[str, float]:
    """Per-pass cycles from one result's named component terms.

    Component keys outside :data:`PASS_COMPONENTS` (a future engine
    adding a term) fall into an ``replay/unattributed`` bucket rather
    than silently vanishing — the coverage gate then catches the gap.
    """
    claimed: set[str] = set()
    out: dict[str, float] = {}
    for pass_name, keys in PASS_COMPONENTS.items():
        cycles = 0.0
        for key in keys:
            if key in components:
                cycles += float(components[key])
                claimed.add(key)
        out[pass_name] = cycles
    leftover = sum(
        float(value)
        for key, value in components.items()
        if key not in claimed
    )
    if leftover:
        out["replay/unattributed"] = leftover
    return out


def profile_records(records: Iterable[dict]) -> dict:
    """Aggregate ``replay-profile`` events + ``replay/*`` spans.

    Returns::

        {
          "replays": <number of profiled simulations>,
          "core_cycles": <total simulated cycles>,
          "attributed_cycles": <cycles claimed by named passes>,
          "coverage": <attributed / core, 1.0 when nothing ran>,
          "rows": [{"pass", "calls", "seconds", "cycles", "share"}, ...],
        }

    Rows are sorted by attributed cycles (descending), then name; the
    share column is the pass's fraction of ``core_cycles``.
    """
    cycles: dict[str, float] = {}
    seconds: dict[str, float] = {}
    calls: dict[str, int] = {}
    replays = 0
    core_cycles = 0.0
    for record in records:
        kind = record.get("kind")
        if kind == "event" and record.get("name") == "replay-profile":
            attrs = record.get("attrs", {})
            replays += 1
            core_cycles += float(attrs.get("core_cycles", 0.0))
            for pass_name, n in attrs.get("cycles_by_pass", {}).items():
                cycles[pass_name] = cycles.get(pass_name, 0.0) + float(n)
        elif kind == "span" and record.get("name", "").startswith("replay/"):
            name = record["name"]
            seconds[name] = (
                seconds.get(name, 0.0) + float(record["dur_us"]) / 1e6
            )
            calls[name] = calls.get(name, 0) + 1
    attributed = sum(cycles.values())
    rows = [
        {
            "pass": name,
            "calls": calls.get(name, 0),
            "seconds": seconds.get(name, 0.0),
            "cycles": cycles.get(name, 0.0),
            "share": (
                cycles.get(name, 0.0) / core_cycles if core_cycles else 0.0
            ),
        }
        for name in sorted(
            set(cycles) | set(seconds),
            key=lambda n: (-cycles.get(n, 0.0), n),
        )
    ]
    return {
        "replays": replays,
        "core_cycles": core_cycles,
        "attributed_cycles": attributed,
        "coverage": attributed / core_cycles if core_cycles else 1.0,
        "rows": rows,
    }
