"""Matched-event comparison between gem5 and the hardware (Fig. 6).

Section IV-E matches key gem5 events to their HW PMC equivalents via the
equations in :mod:`repro.events.matching` and normalises the gem5 totals by
the hardware totals: a value above 1 means gem5 over-counts the event.  The
comparison is reported for the mean of all workloads and per selected
workload cluster, since divergences are strongly workload dependent (ITLB
misses: 0.7x in one cluster, 0.01x in another).

The branch-predictor accuracy table (hardware ~96 % vs buggy model ~65 %,
with the most-predictable hardware workload becoming the least-predictable
model workload) is produced here as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.error_id import WorkloadClusterAnalysis
from repro.core.validation import ValidationDataset
from repro.events.armv7_pmu import event_name
from repro.events.matching import EventMatch, default_event_matches


@dataclass(frozen=True)
class EventRatio:
    """gem5/HW ratio of one matched event.

    Attributes:
        pmu_event: Hardware event number.
        mean_ratio: Mean of per-workload ratios (bars of Fig. 6).
        cluster_ratios: Mean ratio per workload cluster.
        per_workload: Ratio for every workload.
        note: The matching caveat, if any.
    """

    pmu_event: int
    mean_ratio: float
    cluster_ratios: dict[int, float]
    per_workload: dict[str, float]
    note: str = ""

    @property
    def name(self) -> str:
        return event_name(self.pmu_event)


@dataclass(frozen=True)
class BpAccuracyRow:
    """Branch predictor accuracy of one workload on both machines."""

    workload: str
    cluster: int
    hw_accuracy: float
    gem5_accuracy: float


@dataclass(frozen=True)
class EventComparison:
    """The full Fig. 6 comparison plus the BP accuracy table."""

    freq_hz: float
    ratios: dict[int, EventRatio]
    bp_accuracy: list[BpAccuracyRow]
    excluded_cluster: int | None

    def ratio(self, pmu_event: int) -> float:
        """Mean gem5/HW ratio of one event.

        Raises:
            KeyError: If the event was not compared.
        """
        return self.ratios[pmu_event].mean_ratio

    def mean_bp_accuracy(self) -> tuple[float, float]:
        """(hardware, gem5) mean BP accuracy across workloads."""
        hw = float(np.mean([r.hw_accuracy for r in self.bp_accuracy]))
        gem5 = float(np.mean([r.gem5_accuracy for r in self.bp_accuracy]))
        return hw, gem5

    def extreme_bp_workload(self) -> BpAccuracyRow:
        """The workload with the lowest model BP accuracy — in the paper the
        same workload that has the *highest* hardware accuracy."""
        return min(self.bp_accuracy, key=lambda r: r.gem5_accuracy)


def _bp_accuracy(pmc: dict[int, float]) -> float:
    predicted = pmc.get(0x12, 0.0)
    mispredicted = pmc.get(0x10, 0.0)
    if predicted <= 0:
        return 1.0
    return max(0.0, 1.0 - mispredicted / predicted)


def _gem5_bp_accuracy(stats: dict[str, float]) -> float:
    predicted = stats.get("branchPred.condPredicted", 0.0)
    incorrect = stats.get("branchPred.condIncorrect", 0.0)
    if predicted <= 0:
        return 1.0
    return max(0.0, 1.0 - incorrect / predicted)


def compare_events(
    dataset: ValidationDataset,
    freq_hz: float,
    workload_clusters: WorkloadClusterAnalysis,
    matches: dict[int, EventMatch] | None = None,
    report_clusters: list[int] | None = None,
    exclude_extreme_cluster: bool = True,
) -> EventComparison:
    """Normalise gem5 totals by their HW PMC equivalents (Fig. 6).

    Args:
        dataset: Paired validation runs.
        freq_hz: Frequency to compare at.
        workload_clusters: Fig. 3 clustering (cluster ids label the bars).
        matches: gem5<->PMC equations; defaults to the paper's table.
        report_clusters: Clusters to break out individually; defaults to all.
        exclude_extreme_cluster: Exclude the pathological cluster from the
            mean bars, as Fig. 6 does ("the mean bars exclude Cluster 16").

    Raises:
        ValueError: If the clustering and dataset workloads disagree.
    """
    if tuple(workload_clusters.clusters.item_names) != tuple(dataset.workloads):
        raise ValueError("workload clustering does not match the dataset")
    if matches is None:
        matches = default_event_matches()

    runs = dataset.runs_at(freq_hz)
    labels = np.asarray(workload_clusters.clusters.labels)
    extreme_cluster: int | None = None
    if exclude_extreme_cluster:
        _, extreme_cluster, _ = workload_clusters.extreme_workload()
    if report_clusters is None:
        report_clusters = sorted(set(labels.tolist()))

    ratios: dict[int, EventRatio] = {}
    for event, match in matches.items():
        per_workload: dict[str, float] = {}
        for run in runs:
            hw_total = run.hw.pmc.get(event)
            if hw_total is None or hw_total <= 0:
                continue
            try:
                gem5_total = match.evaluate(run.gem5.stats)
            except KeyError:
                continue
            per_workload[run.workload] = gem5_total / hw_total
        if not per_workload:
            continue

        values = np.array(
            [per_workload[w] for w in dataset.workloads if w in per_workload]
        )
        value_labels = np.array(
            [
                labels[list(dataset.workloads).index(w)]
                for w in dataset.workloads
                if w in per_workload
            ]
        )
        mean_mask = (
            value_labels != extreme_cluster
            if extreme_cluster is not None
            else np.ones(len(values), dtype=bool)
        )
        cluster_ratios = {
            c: float(values[value_labels == c].mean())
            for c in report_clusters
            if (value_labels == c).any()
        }
        ratios[event] = EventRatio(
            pmu_event=event,
            mean_ratio=float(values[mean_mask].mean()) if mean_mask.any() else float(values.mean()),
            cluster_ratios=cluster_ratios,
            per_workload=per_workload,
            note=match.note,
        )

    bp_rows = [
        BpAccuracyRow(
            workload=run.workload,
            cluster=int(labels[i]),
            hw_accuracy=_bp_accuracy(run.hw.pmc),
            gem5_accuracy=_gem5_bp_accuracy(run.gem5.stats),
        )
        for i, run in enumerate(runs)
    ]

    return EventComparison(
        freq_hz=freq_hz,
        ratios=ratios,
        bp_accuracy=bp_rows,
        excluded_cluster=extreme_cluster,
    )
