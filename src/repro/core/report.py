"""Text rendering of every GemStone table and figure.

The paper's figures are bar charts and tables; this module renders their
textual equivalents (aligned tables and ASCII horizontal bars), which is
what the benchmark harness prints when regenerating each figure.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def text_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def hbar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str | None = None,
    annotations: Sequence[str] | None = None,
) -> str:
    """Signed horizontal ASCII bar chart (the Fig. 3 / Fig. 5 equivalent)."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    values = [float(v) for v in values]
    if annotations is None:
        annotations = [""] * len(labels)
    biggest = max((abs(v) for v in values), default=1.0) or 1.0
    label_width = max((len(l) for l in labels), default=1)
    half = width // 2
    lines = []
    if title:
        lines.append(title)
    for label, value, note in zip(labels, values, annotations):
        extent = int(round(abs(value) / biggest * half))
        if value >= 0:
            bar = " " * half + "|" + "#" * extent
        else:
            bar = " " * (half - extent) + "#" * extent + "|"
        bar = bar.ljust(width + 1)
        suffix = f" {value:+.1f}" + (f"  {note}" if note else "")
        lines.append(f"{label.rjust(label_width)} {bar}{suffix}")
    return "\n".join(lines)


def render_dendrogram(dendrogram, names: Sequence[str], max_label: int = 28) -> str:
    """Indented text rendering of an HCA merge tree.

    Leaves print flush-left; each internal node prints its merge height and
    indents its subtree — the textual equivalent of the dendrogram plots the
    Powmon/GemStone tooling produces.
    """
    children: dict[int, tuple[int, int, float]] = {}
    n = dendrogram.n_leaves
    for step, merge in enumerate(dendrogram.merges):
        children[n + step] = (merge.a, merge.b, merge.height)
    root = n + len(dendrogram.merges) - 1 if dendrogram.merges else 0

    lines: list[str] = []

    def walk(node: int, depth: int) -> None:
        indent = "  " * depth
        if node < n:
            label = names[node][:max_label]
            lines.append(f"{indent}- {label}")
            return
        a, b, height = children[node]
        lines.append(f"{indent}+ (h={height:.2f})")
        walk(a, depth + 1)
        walk(b, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def render_workload_characterisation(dataset, freq_hz: float) -> str:
    """Per-workload behavioural summary from the HW PMCs (Fig. 1 box g).

    IPC, branch and miss rates, and BP accuracy — the characterisation table
    a user consults when interpreting the cluster designations.
    """
    rows = []
    for run in dataset.runs_at(freq_hz):
        pmc = run.hw.pmc
        instructions = pmc[0x08]
        cycles = pmc[0x11]
        branches = max(pmc.get(0x12, 0.0), 1.0)
        rows.append(
            [
                run.workload,
                run.threads,
                instructions / max(cycles, 1.0),
                pmc.get(0x12, 0.0) / instructions,
                pmc.get(0x03, 0.0) / max(pmc.get(0x04, 1.0), 1.0),
                pmc.get(0x17, 0.0) / max(pmc.get(0x16, 1.0), 1.0),
                1.0 - pmc.get(0x10, 0.0) / branches,
            ]
        )
    return text_table(
        ["workload", "thr", "IPC", "branch rate", "L1D miss", "L2 miss", "BP acc"],
        rows,
        title=(
            f"Workload characterisation on hardware at {freq_hz / 1e6:.0f} MHz"
        ),
    )


def render_workload_mpe_figure(analysis) -> str:
    """Fig. 3: per-workload MPE bars ordered and labelled by HCA cluster."""
    rows = analysis.ordered_rows()
    labels = [name for name, _, _ in rows]
    values = [error for _, _, error in rows]
    annotations = [f"c{cluster}" for _, cluster, _ in rows]
    header = (
        f"Execution-time MPE per workload at "
        f"{analysis.freq_hz / 1e6:.0f} MHz (positive = performance "
        f"overestimated); cX = HCA cluster"
    )
    return hbar_chart(labels, values, title=header, annotations=annotations)


def render_pmc_correlation_figure(correlation) -> str:
    """Fig. 5: per-PMC correlation with the error, cluster-labelled."""
    rows = correlation.sorted_events()
    labels = [name for name, _, _ in rows]
    values = [corr for _, corr, _ in rows]
    annotations = [f"c{cluster}" for _, _, cluster in rows]
    return hbar_chart(
        labels,
        values,
        title="Correlation of HW PMC rates with execution-time MPE",
        annotations=annotations,
    )


def render_event_ratio_table(comparison) -> str:
    """Fig. 6: gem5 totals normalised by HW PMC equivalents."""
    clusters = sorted(
        {c for ratio in comparison.ratios.values() for c in ratio.cluster_ratios}
    )
    headers = ["event", "mean x"] + [f"c{c} x" for c in clusters] + ["note"]
    rows = []
    for event in sorted(comparison.ratios):
        ratio = comparison.ratios[event]
        rows.append(
            [ratio.name, ratio.mean_ratio]
            + [ratio.cluster_ratios.get(c, float("nan")) for c in clusters]
            + [ratio.note]
        )
    note = (
        f" (mean excludes cluster {comparison.excluded_cluster})"
        if comparison.excluded_cluster is not None
        else ""
    )
    return text_table(
        headers, rows, title=f"gem5 events / HW PMC equivalents{note}"
    )


def render_power_energy_figure(comparison) -> str:
    """Fig. 7: per-cluster power and energy MAPE."""
    table = comparison.cluster_table()
    rows = [
        [f"cluster {c}", int(v["n_workloads"]), v["power_mape"], v["energy_mape"]]
        for c, v in sorted(table.items())
    ]
    rows.append(
        ["ALL", len({r.workload for r in comparison.rows}),
         comparison.power_mape(), comparison.energy_mape()]
    )
    return text_table(
        ["cluster", "workloads", "power MAPE %", "energy MAPE %"],
        rows,
        title=f"{comparison.core}: power/energy error of gem5-driven estimates",
    )


def render_dvfs_figure(scaling) -> str:
    """Fig. 8: mean scaling per OPP, hardware vs model."""
    freqs = sorted({r.freq_hz for r in scaling.rows})
    rows = []
    for freq in freqs:
        hw = scaling.speedup_stats(freq, "hw")
        gem5 = scaling.speedup_stats(freq, "gem5")
        hw_e = scaling.energy_stats(freq, "hw")
        gem5_e = scaling.energy_stats(freq, "gem5")
        rows.append(
            [
                f"{freq / 1e6:.0f} MHz",
                hw["mean"], gem5["mean"],
                f"{hw['min']:.2f}-{hw['max']:.2f}",
                f"{gem5['min']:.2f}-{gem5['max']:.2f}",
                hw_e["mean"], gem5_e["mean"],
            ]
        )
    return text_table(
        [
            "OPP",
            "HW speedup",
            "model speedup",
            "HW range",
            "model range",
            "HW energy x",
            "model energy x",
        ],
        rows,
        title=(
            f"{scaling.core}: scaling normalised to "
            f"{scaling.base_freq_hz / 1e6:.0f} MHz"
        ),
    )


def render_campaign_section(summary: dict) -> str:
    """Distributed-campaign section of a collation report.

    Every row is derived from the board journal and the sync counts —
    deterministic inputs only, so a clean campaign's report is
    byte-identical whether or not the campaign was traced.  The
    wall-clock health view (contention index, straggler skew) lives in
    the merged Prometheus snapshot and ``gemstone campaign status
    --detail`` instead.
    """
    rows = [
        ["shards", summary["shards"]],
        ["jobs total", summary["total"]],
        ["jobs done", summary["done"]],
        ["jobs poisoned", summary["poisoned"]],
        ["results reused", summary["reused"]],
        ["jobs requeued", summary["requeued"]],
        ["leases stolen", summary["stolen"]],
        ["jobs abandoned", summary["abandoned"]],
    ]
    lines = [
        text_table(
            ["campaign", "value"],
            rows,
            title="Distributed campaign",
        )
    ]
    hint = summary.get("hint")
    if hint:
        lines.append(
            f"shard auto-tune: suggest {hint['suggested_shards']} shard(s)"
            f" — {hint['reason']}"
        )
    return "\n".join(lines)


def render_power_model_summary(model) -> str:
    """Section V: power model composition and quality."""
    lines = [f"{model.core} empirical power model ({len(model.terms)} events)"]
    lines.append("events: " + ", ".join(t.pretty_name for t in model.terms))
    quality = model.quality
    if quality is not None:
        lines.append(
            f"MAPE {quality.mape:.2f}%  MPE {quality.mpe:+.2f}%  "
            f"SER {quality.ser:.3f} W  adj-R2 {quality.adjusted_r2:.4f}  "
            f"mean VIF {quality.mean_vif:.1f}"
        )
        lines.append(
            f"max APE {quality.max_ape:.1f}% ({quality.worst_observation}); "
            f"n={quality.n_observations}"
        )
    return "\n".join(lines)


def render_full_report(gemstone, include_telemetry: bool = True) -> str:
    """The complete GemStone report: every table and figure in order.

    Args:
        gemstone: The :class:`~repro.core.pipeline.GemStone` facade.
        include_telemetry: Append the simulation-executor telemetry
            section.  Checkpointed runs disable it: its wall-clock rows
            are the one nondeterministic part of the report, and resumed
            runs must produce byte-identical text.
    """
    dataset = gemstone.dataset
    freq = gemstone.config.analysis_freq_hz
    sections = []

    sections.append(
        f"GemStone report: {dataset.gem5_model} vs {gemstone.platform.machine.name}"
    )
    sections.append("=" * len(sections[0]))

    rows = [
        [
            f"{f / 1e6:.0f} MHz",
            dataset.time_mape(f),
            dataset.time_mpe(f),
        ]
        for f in dataset.frequencies
    ]
    rows.append(["ALL", dataset.time_mape(), dataset.time_mpe()])
    sections.append(
        text_table(
            ["frequency", "time MAPE %", "time MPE %"],
            rows,
            title="Execution-time error (negative MPE = time overestimated)",
        )
    )

    sections.append(render_workload_mpe_figure(gemstone.workload_clusters))
    sections.append(render_pmc_correlation_figure(gemstone.pmc_correlation))

    g5corr = gemstone.gem5_correlation
    summary = g5corr.cluster_summary()
    rows = [
        [f"cluster {c}", int(v["size"]), v["mean"], v["min"], v["max"]]
        for c, v in sorted(summary.items(), key=lambda kv: kv[1]["mean"])
    ]
    sections.append(
        text_table(
            ["gem5 event cluster", "events", "mean r", "min r", "max r"],
            rows,
            title="gem5 statistics vs error (|r| > 0.3), clustered",
        )
    )

    for source in ("hw", "gem5"):
        reg = gemstone.regression(source)
        sections.append(
            f"Stepwise error regression ({source}): R2={reg.r2:.3f} "
            f"adj-R2={reg.adjusted_r2:.3f}; selected: "
            + ", ".join(reg.selected)
        )

    sections.append(render_event_ratio_table(gemstone.event_comparison))
    hw_acc, gem5_acc = gemstone.event_comparison.mean_bp_accuracy()
    extreme = gemstone.event_comparison.extreme_bp_workload()
    sections.append(
        f"Branch predictor accuracy: HW mean {hw_acc:.1%}, model mean "
        f"{gem5_acc:.1%}; lowest model accuracy {extreme.gem5_accuracy:.2%} "
        f"({extreme.workload}, HW {extreme.hw_accuracy:.2%})"
    )

    sections.append(render_power_model_summary(gemstone.power_model))
    sections.append(render_power_energy_figure(gemstone.power_energy))
    sections.append(render_dvfs_figure(gemstone.dvfs))

    campaign = getattr(gemstone, "campaign", None)
    if campaign is not None:
        sections.append(render_campaign_section(campaign))

    health = getattr(gemstone, "health", None)
    if health is not None and health.degraded:
        sections.append(render_collection_health(health))

    degraded_fits = getattr(gemstone, "degraded_fits", None)
    if degraded_fits is not None:
        fits = degraded_fits()
        if fits:
            sections.append(render_degraded_fits(fits))

    executor = getattr(gemstone, "executor", None)
    if include_telemetry and executor is not None and executor.telemetry.jobs_submitted:
        cache = getattr(executor, "cache", None)
        sections.append(
            render_sim_telemetry(
                executor.telemetry,
                executor.jobs,
                cache_telemetry=cache.telemetry if cache is not None else None,
            )
        )

    guard = getattr(executor, "guard", None)
    if include_telemetry and guard is not None and guard.plan.active:
        sections.append(render_guardrails(guard))

    return "\n\n".join(sections)


def render_sim_telemetry(telemetry, jobs: int, cache_telemetry=None) -> str:
    """Simulation-executor telemetry: job accounting and stage wall-clock."""
    rows = [
        ["worker processes", jobs],
        ["jobs submitted", telemetry.jobs_submitted],
        ["deduplicated in-flight", telemetry.jobs_deduplicated],
        ["disk cache hits", telemetry.cache_hits],
        ["simulated", telemetry.jobs_run],
        ["  on worker processes", telemetry.parallel_jobs_run],
        ["serial fallbacks", telemetry.serial_fallbacks],
        ["jobs isolated after pool failure", telemetry.jobs_isolated],
        ["job retries", telemetry.job_retries],
        ["job timeouts", telemetry.job_timeouts],
        ["worker crashes", telemetry.worker_crashes],
        ["jobs failed permanently", telemetry.jobs_failed],
        ["batches", telemetry.batches],
        ["probe wall-clock (s)", telemetry.probe_seconds],
        ["simulate wall-clock (s)", telemetry.simulate_seconds],
        ["reap wall-clock (s)", telemetry.reap_seconds],
        ["throughput (sims/s)", telemetry.throughput()],
    ]
    if cache_telemetry is not None:
        rows.append(["cache entries quarantined", cache_telemetry.quarantined])
        rows.append(["cache write failures", cache_telemetry.put_failures])
    return text_table(
        ["simulation executor", "value"],
        rows,
        title="Simulation executor telemetry",
    )


def render_guardrails(guard, max_events: int = 12) -> str:
    """Runtime guardrail accounting for one run.

    Summarises what the divergence sentinels, decode validation and the
    campaign watchdog (:mod:`repro.sim.guard`) observed and did: how many
    jobs were dual-replayed, every fallback/quarantine/circuit-break, and
    the watchdog's budget breaches.  A clean run renders all zeros — the
    section states that the guarantees were *checked*, not just assumed.
    """
    telemetry = guard.telemetry
    rows = [
        ["guard level", guard.plan.level],
        ["sentinel interval (1 in N jobs)", guard.plan.interval],
        ["sentinel dual-engine replays", telemetry.sentinel_replays],
        ["divergences caught", telemetry.divergences],
        ["NaN/overflow results rejected", telemetry.nan_fallbacks],
        ["corrupt decodes re-decoded", telemetry.decode_quarantines],
        ["engine errors recovered", telemetry.engine_errors],
        ["scalar fallbacks (total)", telemetry.fallbacks],
        ["poison jobs circuit-broken", telemetry.poison_jobs],
        ["worker memory-budget breaches", telemetry.oom_events],
        ["heartbeat stalls observed", telemetry.heartbeat_stalls],
        ["batch deadline breaches", telemetry.deadline_breaches],
        ["parent memory-budget breaches", telemetry.memory_breaches],
    ]
    lines = [text_table(["guardrails", "value"], rows, title="Guardrails")]
    for event in guard.events[:max_events]:
        lines.append(f"  {event.summary()}")
    if len(guard.events) > max_events:
        lines.append(f"  ... and {len(guard.events) - max_events} more")
    return "\n".join(lines)


def render_degraded_fits(fits) -> str:
    """Degradation notes from the analysis layer, one line per note.

    Rendered alongside the collection-health section: where that section
    says which *data points* were lost, this one says how the *fits*
    (clustering, stepwise regressions, power model) had to degrade —
    dropped regressors, intercept-only fallbacks, trivial clusterings —
    so a report over degraded data is explicit about its weakened models.
    """
    lines = [f"Degraded fits ({len(fits)} note(s))"]
    for fit in fits:
        lines.append(f"  [{fit.stage}] {fit.detail}")
    return "\n".join(lines)


def render_collection_health(health, max_failures: int = 12) -> str:
    """Gap accounting of a degraded collection campaign.

    Lists what was attempted, what survived, and (capped) which points were
    lost and why, so a report over a partial dataset is explicit about its
    gaps rather than silently narrower.
    """
    lines = [
        text_table(
            ["collection health", "value"],
            [
                ["points attempted", health.attempted],
                ["points collected", health.succeeded],
                ["points failed", health.failed],
                ["power samples lost", health.power_samples_lost],
                ["guard interventions", len(health.guard_events)],
            ],
            title=f"Collection health (degraded: {health.summary()})",
        )
    ]
    for failure in health.failures[:max_failures]:
        lines.append(
            f"  lost {failure.workload} @ {failure.freq_hz / 1e6:.0f} MHz "
            f"[{failure.stage}]: {failure.error}"
        )
    if health.failed > max_failures:
        lines.append(f"  ... and {health.failed - max_failures} more")
    for event in health.guard_events[:max_failures]:
        lines.append(f"  guard {event.summary()}")
    if len(health.guard_events) > max_failures:
        lines.append(
            f"  ... and {len(health.guard_events) - max_failures} more"
        )
    return "\n".join(lines)
