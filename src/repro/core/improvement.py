"""Iterative model improvement (Sections IV-F and VII).

The paper's closing methodology point: model errors interact, so components
must be repaired one at a time, most significant first, re-evaluating the
full system after each change ("Remaining sources of error can be reduced by
iteratively making changes and analysing the result with GemStone").

:func:`iterative_improvement` automates that loop: given a set of candidate
fixes (each a transformation of the machine configuration), it greedily
applies the fix that most reduces the execution-time MAPE, re-runs the
evaluation, and repeats until no candidate helps.  The audit trail doubles
as evidence for the paper's warning — fixes that look right in isolation
(e.g. the 32-entry ITLB) are rejected while a bigger error masks them, and
become acceptable once that error is repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.sim.cpu import simulate
from repro.sim.machine import MachineConfig
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import SyntheticTrace, compile_trace

#: A candidate fix: name plus a pure transformation of the machine config.
Fix = Callable[[MachineConfig], MachineConfig]


@dataclass(frozen=True)
class ImprovementStep:
    """One accepted iteration of the improvement loop."""

    applied: str
    mape: float
    mpe: float
    rejected: tuple[str, ...]  # candidates that did not help this round


@dataclass(frozen=True)
class ImprovementResult:
    """Outcome of the full loop.

    Attributes:
        initial_mape / initial_mpe: Error of the starting model.
        steps: Accepted fixes in application order, with the error after
            each and the candidates rejected that round.
        final_machine: The improved configuration.
        remaining: Candidate names never accepted.
    """

    initial_mape: float
    initial_mpe: float
    steps: tuple[ImprovementStep, ...]
    final_machine: MachineConfig
    remaining: tuple[str, ...]

    @property
    def final_mape(self) -> float:
        return self.steps[-1].mape if self.steps else self.initial_mape

    def summary(self) -> str:
        """Human-readable audit trail."""
        lines = [
            f"initial: MAPE {self.initial_mape:.1f}%  MPE {self.initial_mpe:+.1f}%"
        ]
        for step in self.steps:
            lines.append(
                f"+ {step.applied}: MAPE {step.mape:.1f}%  MPE {step.mpe:+.1f}%"
            )
            if step.rejected:
                lines.append(f"  (rejected this round: {', '.join(step.rejected)})")
        if self.remaining:
            lines.append(f"never accepted: {', '.join(self.remaining)}")
        return "\n".join(lines)


def _evaluate(
    machine: MachineConfig,
    traces: Sequence[SyntheticTrace],
    hw_times: Sequence[float],
    freq_hz: float,
) -> tuple[float, float]:
    errors = []
    for trace, hw_time in zip(traces, hw_times):
        model_time = simulate(trace, machine).time_seconds(freq_hz)
        errors.append((hw_time - model_time) / hw_time * 100.0)
    errors_arr = np.asarray(errors)
    return float(np.abs(errors_arr).mean()), float(errors_arr.mean())


def iterative_improvement(
    hw_machine: MachineConfig,
    model_machine: MachineConfig,
    workloads: Sequence[WorkloadProfile],
    fixes: dict[str, Fix],
    freq_hz: float = 1.0e9,
    trace_instructions: int = 20_000,
    min_improvement: float = 1.0,
    max_rounds: int | None = None,
) -> ImprovementResult:
    """Greedy most-significant-first repair of a model configuration.

    Args:
        hw_machine: The reference-truth configuration.
        model_machine: The model to improve.
        workloads: Evaluation workloads.
        fixes: Candidate repairs, name -> config transformation.  Each fix
            is evaluated *on top of* the fixes already accepted.
        freq_hz: Evaluation frequency.
        trace_instructions: Trace length (shared between HW and model).
        min_improvement: Minimum MAPE reduction (percentage points) to
            accept a fix in a round.
        max_rounds: Optional cap on accepted fixes.

    Raises:
        ValueError: On empty workloads or fixes.
    """
    if not workloads:
        raise ValueError("no workloads")
    if not fixes:
        raise ValueError("no candidate fixes")

    traces = [compile_trace(w, trace_instructions) for w in workloads]
    hw_times = [simulate(t, hw_machine).time_seconds(freq_hz) for t in traces]

    current = model_machine
    current_mape, current_mpe = _evaluate(current, traces, hw_times, freq_hz)
    initial = (current_mape, current_mpe)

    pending = dict(fixes)
    steps: list[ImprovementStep] = []
    while pending and (max_rounds is None or len(steps) < max_rounds):
        scored: list[tuple[float, float, str, MachineConfig]] = []
        for name, fix in pending.items():
            candidate = fix(current)
            mape, mpe = _evaluate(candidate, traces, hw_times, freq_hz)
            scored.append((mape, mpe, name, candidate))
        scored.sort(key=lambda row: row[0])
        best_mape, best_mpe, best_name, best_machine = scored[0]
        if best_mape > current_mape - min_improvement:
            break
        rejected = tuple(
            name for mape, _, name, _ in scored[1:] if mape > current_mape
        )
        steps.append(
            ImprovementStep(
                applied=best_name, mape=best_mape, mpe=best_mpe, rejected=rejected
            )
        )
        current = best_machine
        current_mape, current_mpe = best_mape, best_mpe
        del pending[best_name]

    return ImprovementResult(
        initial_mape=initial[0],
        initial_mpe=initial[1],
        steps=tuple(steps),
        final_machine=current,
        remaining=tuple(pending),
    )


def standard_fixes(hw_machine: MachineConfig) -> dict[str, Fix]:
    """The repair candidates for the documented ex5_big errors."""
    return {
        "branch predictor": lambda m: replace(
            m, predictor=hw_machine.predictor,
            ras_corruption=0.1, indirect_corruption=0.15,
        ),
        "dram latency": lambda m: replace(
            m, dram_latency_ns=hw_machine.dram_latency_ns
        ),
        "tlb hierarchy": lambda m: replace(m, tlb=hw_machine.tlb),
        "sync costs": lambda m: replace(
            m,
            barrier_cycles=hw_machine.barrier_cycles,
            ldrex_cycles=hw_machine.ldrex_cycles,
            strex_cycles=hw_machine.strex_cycles,
        ),
        "l2 prefetcher": lambda m: replace(m, l2=hw_machine.l2),
        "write streaming": lambda m: replace(m, l1d=hw_machine.l1d),
    }
