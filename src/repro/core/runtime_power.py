"""Run-time power analysis inside the simulator (the paper's "method 2").

Section III describes two ways of using the power models: (1) applying them
to output files after the simulation (``PowerModelApplication``), and (2)
"generating equations that can be inserted directly into gem5 for run-time
power analysis within gem5 itself".  This module implements the second path:

* :func:`compile_equations` parses the equation text emitted by
  :meth:`PowerModel.gem5_equations` back into an evaluable object — proving
  the exported text is machine-usable, and standing in for gem5's
  ``MathExprPowerModel`` expression parser;
* :func:`runtime_power_trace` runs a workload through the gem5 model in
  windows and evaluates the compiled equations per window, producing the
  power-vs-time trace a run-time power model yields inside gem5.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.sim.gem5 import Gem5Simulation, Gem5Stats
from repro.sim.platform import HardwarePlatform
from repro.workloads.profile import WorkloadProfile
from repro.workloads.trace import compile_trace, slice_trace

_LINE_RE = re.compile(r"^power\[(\d+)MHz\]\s*=\s*(.+)$")
_TERM_RE = re.compile(r"([+-])\s*([0-9.eE+-]+)\*rate\(([A-Za-z0-9_.]+)\)")


@dataclass(frozen=True)
class RuntimePowerEquations:
    """Compiled per-OPP power equations over gem5 stat rates.

    Attributes:
        core: Cluster label from the equation header ("A15"/"A7"), if any.
        intercepts: Constant term per OPP (Hz key, rounded).
        weights: Per-OPP mapping of gem5 short stat name to watts per
            (event/second).
    """

    core: str
    intercepts: dict[int, float]
    weights: dict[int, dict[str, float]]

    def opps(self) -> list[int]:
        """Fitted OPPs in Hz, ascending."""
        return sorted(self.intercepts)

    def evaluate(self, freq_hz: float, rates: Mapping[str, float]) -> float:
        """Power in watts from gem5 stat rates at one OPP.

        Raises:
            KeyError: For an OPP outside the compiled set, or a stat the
                equations reference but ``rates`` does not provide.
        """
        key = round(freq_hz)
        if key not in self.intercepts:
            raise KeyError(
                f"{freq_hz / 1e6:.0f} MHz not in compiled equations "
                f"({[k / 1e6 for k in self.opps()]} MHz)"
            )
        power = self.intercepts[key]
        for stat, weight in self.weights[key].items():
            power += weight * rates[stat]
        return power

    def evaluate_stats(self, stats: Gem5Stats) -> float:
        """Evaluate directly on one gem5 stats dump."""
        key = round(stats.freq_hz)
        if key not in self.intercepts:
            raise KeyError(f"{stats.freq_hz / 1e6:.0f} MHz not compiled")
        rates = {
            stat: stats.stats[stat] / stats.sim_seconds
            for stat in self.weights[key]
        }
        return self.evaluate(stats.freq_hz, rates)


def compile_equations(text: str) -> RuntimePowerEquations:
    """Parse :meth:`PowerModel.gem5_equations` output into evaluable form.

    Raises:
        ValueError: If no equation lines parse, or a line is malformed.
    """
    core = "unknown"
    intercepts: dict[int, float] = {}
    weights: dict[int, dict[str, float]] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            header = re.search(r"#\s*(\S+)\s+cluster", line)
            if header:
                core = header.group(1)
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable equation line: {line!r}")
        key = int(match.group(1)) * 1_000_000
        body = match.group(2)

        # The first token is the bare intercept; normalise it to "+ c".
        body = body.strip()
        first_term = body.split(" ", 1)[0]
        try:
            intercept = float(first_term)
        except ValueError as exc:
            raise ValueError(f"equation must start with the intercept: {line!r}") from exc
        rest = body[len(first_term):]

        stat_weights: dict[str, float] = {}
        consumed = 0
        for term in _TERM_RE.finditer(rest):
            sign = -1.0 if term.group(1) == "-" else 1.0
            stat_weights[term.group(3)] = (
                stat_weights.get(term.group(3), 0.0) + sign * float(term.group(2))
            )
            consumed += 1
        # Every "+/-" chunk after the intercept must have parsed.
        expected = rest.count("rate(")
        if consumed != expected:
            raise ValueError(f"failed to parse {expected - consumed} terms in: {line!r}")
        intercepts[key] = intercept
        weights[key] = stat_weights

    if not intercepts:
        raise ValueError("no power equations found in text")
    return RuntimePowerEquations(core=core, intercepts=intercepts, weights=weights)


@dataclass(frozen=True)
class PowerSample:
    """One window of the run-time power trace."""

    start_seconds: float
    duration_seconds: float
    power_w: float


def runtime_power_trace(
    gem5: Gem5Simulation,
    profile: WorkloadProfile,
    freq_hz: float,
    equations: RuntimePowerEquations,
    n_windows: int = 8,
) -> list[PowerSample]:
    """Per-window power of one workload, evaluated inside the simulation.

    The trace is split into ``n_windows`` contiguous windows; each window is
    simulated and the compiled equations are evaluated on its statistics —
    the behaviour of a gem5 ``MathExprPowerModel`` sampled periodically.

    Raises:
        ValueError: For fewer than one window.
    """
    if n_windows < 1:
        raise ValueError("need at least one window")
    from repro.sim.cpu import simulate

    full = gem5._trace(profile)
    n_blocks = len(full.block_seq)
    bounds = [round(i * n_blocks / n_windows) for i in range(n_windows + 1)]
    repeat = HardwarePlatform.repeat_count(profile, gem5.trace_instructions)

    samples: list[PowerSample] = []
    clock = 0.0
    for start, end in zip(bounds, bounds[1:]):
        if end <= start:
            continue
        window = slice_trace(full, start, end)
        result = simulate(window, gem5.machine)
        duration = result.time_seconds(freq_hz) * repeat
        scale = repeat * profile.threads
        counts = {k: v * scale for k, v in result.counts.items()}
        stats = gem5._emit(result, counts, freq_hz, duration, scale)
        key = round(freq_hz)
        rates = {
            stat: stats[stat] / duration for stat in equations.weights[key]
        }
        samples.append(
            PowerSample(
                start_seconds=clock,
                duration_seconds=duration,
                power_w=equations.evaluate(freq_hz, rates),
            )
        )
        clock += duration
    return samples


def trace_energy(samples: list[PowerSample]) -> float:
    """Energy in joules of a run-time power trace."""
    return sum(s.power_w * s.duration_seconds for s in samples)


def mean_power(samples: list[PowerSample]) -> float:
    """Duration-weighted mean power of a trace.

    Raises:
        ValueError: For an empty trace.
    """
    total_time = sum(s.duration_seconds for s in samples)
    if total_time <= 0:
        raise ValueError("empty power trace")
    return trace_energy(samples) / total_time
