"""The GemStone facade: characterise -> simulate -> analyse -> report.

``GemStone`` wires the whole paper together for one CPU cluster: it owns the
hardware platform and gem5 simulation, collates the validation dataset,
and lazily computes each analysis product (workload clusters, correlation
analyses, stepwise regressions, event comparison, power model, power/energy
comparison, DVFS scaling).  Everything is memoised, so a full report costs
one simulation pass per (workload, machine).

>>> gs = GemStone(GemStoneConfig(core="A15"))
>>> gs.dataset.time_mpe(1.0e9)   # headline execution-time MPE at 1 GHz
>>> print(gs.report())           # the full text report
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.core.energy import (
    BigLittleComparison,
    DvfsScaling,
    PowerEnergyComparison,
    big_little_scaling,
    compare_power_energy,
    dvfs_scaling,
)
from repro.core.error_id import (
    ErrorRegression,
    WorkloadClusterAnalysis,
    cluster_workloads,
    error_regression,
    gem5_error_correlation,
    pmc_error_correlation,
)
from repro.core.event_compare import EventComparison, compare_events
from repro.core.power_model import (
    PowerModel,
    PowerModelApplication,
    PowerModelBuilder,
    PowerObservation,
    collect_power_dataset,
    restraint_pool_gem5,
)
from repro.core.runstate import RunManifest, RunState
from repro.obs.exporters import (
    CHROME_FILE,
    EVENTS_FILE,
    METRICS_FILE,
    write_chrome_trace,
    write_prometheus_snapshot,
)
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.core.stats.correlate import CorrelationResult
from repro.core.validation import (
    CollectionHealth,
    DegradedFit,
    ValidationDataset,
    collect_validation_dataset,
)
from repro.sim.cpu import ENGINES
from repro.sim.dvfs import experiment_frequencies
from repro.sim.executor import RetryPolicy, SimExecutor
from repro.sim.faults import FaultPlan
from repro.sim.guard import GUARD_LEVELS, GuardPlan
from repro.sim.gem5 import Gem5Simulation
from repro.sim.machine import (
    MachineConfig,
    gem5_ex5_big,
    gem5_ex5_little,
    machine_by_name,
)
from repro.sim.platform import HardwarePlatform
from repro.sim.result_cache import ShardedResultStore
from repro.workloads.profile import WorkloadProfile
from repro.workloads.suites import power_modelling_workloads, validation_workloads

logger = get_logger(__name__)


@dataclass(frozen=True)
class GemStoneConfig:
    """Configuration of one GemStone evaluation run.

    Attributes:
        core: CPU cluster to validate (``"A7"`` or ``"A15"``).
        gem5_machine: gem5 model config (or its name); defaults to the
            pre-fix ``ex5_big`` / ``ex5_LITTLE`` model for the chosen core.
        workloads: Validation workloads (Experiment 1); defaults to the
            paper's 45-workload set.
        power_workloads: Power-model training workloads (Experiments 3/4);
            defaults to the full 65-workload set.
        frequencies: DVFS sweep; defaults to the paper's per-cluster sweep.
        analysis_freq_hz: Frequency for the single-frequency analyses
            (Figs. 3, 5, 6 are shown at 1 GHz in the paper).
        trace_instructions: Trace length per workload.
        n_workload_clusters: Flat clusters for the workload HCA.
        power_model_terms: Maximum events in the power model.
        gem5_restrained_power_model: Restrict power-model event selection to
            events with reliable gem5 equivalents (Section V's final model).
        jobs: Simulation worker processes.  ``1`` (the default) simulates
            serially in-process; ``None`` uses every core; >1 fans the
            (workload x machine) jobs across a process pool.  Results are
            bit-identical regardless of the setting.
        retry: Per-job :class:`~repro.sim.executor.RetryPolicy` (bounded,
            deterministic exponential backoff); ``None`` uses the default.
        sim_timeout_seconds: Per-job timeout for pooled simulations; a job
            exceeding it is rerun serially in the parent.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` injected into
            the executor, cache and platform (chaos testing only).
        engine: Replay engine for every simulation in the run (``"auto"``,
            ``"columnar"`` or ``"scalar"``, see :func:`repro.sim.simulate`).
            Both engines are bit-identical, so like ``jobs`` this is an
            execution knob excluded from the run fingerprint.
        guard_level: Runtime guardrails over the replay engine
            (:mod:`repro.sim.guard`): ``"off"``, ``"sentinel"`` (the
            default — decode validation, NaN rejection, sampled
            dual-engine divergence sentinels with scalar fallback, poison
            -job circuit breaker) or ``"paranoid"`` (every job
            dual-replayed).  Guards never change a correct result, so this
            too is an execution knob excluded from the run fingerprint.
        checkpoint_dir: Directory for the crash-safe run state (journal +
            per-phase checkpoints, see :mod:`repro.core.runstate`); ``None``
            disables checkpointing.
        resume: Restore completed phases from ``checkpoint_dir`` instead of
            recomputing them.  Checkpoints are bound to a fingerprint of
            the resolved config — a directory written under a different
            configuration is quarantined and fully recomputed.
        trace: Enable in-memory span tracing (see :mod:`repro.obs`).
            Off by default; tracing never affects results, and like the
            execution knobs it is excluded from the run fingerprint.
        trace_dir: Stream trace records to ``<trace_dir>/events.jsonl`` as
            they close (implies ``trace``); :meth:`GemStone.export_trace`
            writes the Chrome-trace and metrics snapshots there too.
        board_dir: Attach to a distributed campaign board
            (:mod:`repro.sim.campaign`): the executor reads and writes the
            board's shared content-addressed result store instead of a
            private ``cache_dir``.  Results are bit-identical either way,
            so this too is an execution knob excluded from the run
            fingerprint.

    Raises:
        ValueError: Immediately on construction for an unknown ``core``.
    """

    core: str = "A15"
    gem5_machine: str | MachineConfig | None = None
    workloads: tuple[WorkloadProfile, ...] | None = None
    power_workloads: tuple[WorkloadProfile, ...] | None = None
    frequencies: tuple[float, ...] | None = None
    analysis_freq_hz: float = 1.0e9
    trace_instructions: int = 60_000
    n_workload_clusters: int = 16
    power_model_terms: int = 7
    gem5_restrained_power_model: bool = True
    cache_dir: str | None = None
    jobs: int | None = 1
    retry: RetryPolicy | None = None
    sim_timeout_seconds: float | None = None
    faults: FaultPlan | None = None
    engine: str = "auto"
    guard_level: str = "sentinel"
    checkpoint_dir: str | None = None
    resume: bool = False
    trace: bool = False
    trace_dir: str | None = None
    board_dir: str | None = None

    def __post_init__(self) -> None:
        # Fail at construction, not deep inside resolve_machine/platform
        # setup after minutes of work.
        if self.core not in ("A7", "A15"):
            raise ValueError(
                f"core must be 'A7' or 'A15', got {self.core!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.guard_level not in GUARD_LEVELS:
            raise ValueError(
                f"guard_level must be one of {GUARD_LEVELS}, "
                f"got {self.guard_level!r}"
            )

    def resolve_machine(self) -> MachineConfig:
        """The gem5 model config this run validates."""
        machine = self.gem5_machine
        if machine is None:
            return gem5_ex5_big() if self.core == "A15" else gem5_ex5_little()
        if isinstance(machine, str):
            return machine_by_name(machine)
        return machine

    def resolve_workloads(self) -> tuple[WorkloadProfile, ...]:
        if self.workloads is not None:
            return self.workloads
        return tuple(validation_workloads())

    def resolve_power_workloads(self) -> tuple[WorkloadProfile, ...]:
        if self.power_workloads is not None:
            return self.power_workloads
        return tuple(power_modelling_workloads())

    def resolve_frequencies(self) -> tuple[float, ...]:
        if self.frequencies is not None:
            return self.frequencies
        return tuple(experiment_frequencies(self.core))


class GemStone:
    """One GemStone evaluation of a gem5 model against reference hardware."""

    def __init__(self, config: GemStoneConfig | None = None):
        self.config = config if config is not None else GemStoneConfig()
        machine = self.config.resolve_machine()
        if machine.core != self.config.core:
            raise ValueError(
                f"gem5 model {machine.name} models a {machine.core}, "
                f"but the config targets the {self.config.core}"
            )
        # One registry and one tracer span the whole run: the executor,
        # the result cache and the run state all account into them, and
        # export_trace() snapshots them out-of-band of any report.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(
            enabled=bool(self.config.trace or self.config.trace_dir),
            stream_path=(
                os.path.join(self.config.trace_dir, EVENTS_FILE)
                if self.config.trace_dir is not None
                else None
            ),
            metrics=self.metrics,
        )
        # One executor serves both engines: (workload x machine) jobs from
        # the hardware platform and the gem5 model share its dedup, disk
        # cache, retry policy and telemetry, and dataset collection batches
        # through it.
        campaign_store = None
        if self.config.board_dir is not None:
            campaign_store = ShardedResultStore(
                os.path.join(self.config.board_dir, "results"),
                faults=self.config.faults,
                metrics=self.metrics,
            )
        self.executor = SimExecutor(
            jobs=self.config.jobs,
            cache_dir=self.config.cache_dir,
            cache=campaign_store,
            retry=self.config.retry,
            timeout_seconds=self.config.sim_timeout_seconds,
            faults=self.config.faults,
            tracer=self.tracer,
            metrics=self.metrics,
            engine=self.config.engine,
            guard=GuardPlan.from_level(self.config.guard_level),
        )
        # One health record spans the validation and power campaigns; the
        # report surfaces it whenever anything was lost.
        self.health = CollectionHealth()
        # Set by run_campaign() on a collation run: deterministic campaign
        # section data (job counts + auto-tune hint) for the report.
        self.campaign: dict | None = None
        self.platform = HardwarePlatform(
            self.config.core,
            trace_instructions=self.config.trace_instructions,
            cache_dir=self.config.cache_dir,
            executor=self.executor,
            faults=self.config.faults,
            engine=self.config.engine,
        )
        self.gem5 = Gem5Simulation(
            machine,
            trace_instructions=self.config.trace_instructions,
            cache_dir=self.config.cache_dir,
            executor=self.executor,
            engine=self.config.engine,
        )
        # Optional crash-safe run state: every memoised product below is
        # checkpointed as its phase completes, and restored on --resume.
        self.runstate: RunState | None = None
        if self.config.checkpoint_dir is not None:
            self.runstate = RunState(
                self.config.checkpoint_dir,
                RunManifest.from_config(self.config),
                resume=self.config.resume,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        self._dataset: ValidationDataset | None = None
        self._power_dataset: list[PowerObservation] | None = None
        self._workload_clusters: WorkloadClusterAnalysis | None = None
        self._pmc_correlation: CorrelationResult | None = None
        self._gem5_correlation: CorrelationResult | None = None
        self._regressions: dict[str, ErrorRegression] = {}
        self._event_comparison: EventComparison | None = None
        self._power_model: PowerModel | None = None
        self._application: PowerModelApplication | None = None
        self._power_energy: PowerEnergyComparison | None = None
        self._dvfs: DvfsScaling | None = None

    # ----------------------------------------------------------- checkpointing
    def _materialise(self, phase, compute, track_health: bool = False):
        """Restore a phase's product from the run state, or compute it.

        The checkpoint payload pairs the product with a snapshot of the
        shared :class:`CollectionHealth` record for the collection phases,
        so a resumed run renders the identical health section without
        re-collecting anything.
        """
        with self.tracer.span(f"phase:{phase}", kind="phase") as phase_span:
            if self.runstate is not None:
                restored = self.runstate.restore(phase)
                if restored is not None:
                    if track_health and restored.get("health") is not None:
                        self.health.adopt(restored["health"])
                    phase_span.set(restored=True)
                    self.metrics.counter("pipeline.phases_restored").inc()
                    logger.info("phase %s: restored from checkpoint", phase)
                    return restored["product"]
            logger.info("phase %s: computing", phase)
            product = compute()
            self.metrics.counter("pipeline.phases_computed").inc()
            if self.runstate is not None:
                self.runstate.checkpoint(
                    phase,
                    {
                        "product": product,
                        "health": self.health.clone() if track_health else None,
                    },
                )
            return product

    def degraded_fits(self) -> list[DegradedFit]:
        """Degradation notes of every *computed* analysis product.

        Collected in pipeline order from the memoised products only —
        calling this never triggers a computation.
        """
        fits: list[DegradedFit] = []

        def add(stage: str, notes) -> None:
            fits.extend(DegradedFit(stage=stage, detail=n) for n in notes)

        if self._workload_clusters is not None:
            add("workload-clusters", self._workload_clusters.degraded)
        for source in ("hw", "gem5"):
            regression = self._regressions.get(source)
            if regression is not None:
                add(f"regression[{source}]", regression.stepwise.degraded)
        if self._power_model is not None:
            add("power-model", self._power_model.degraded)
        return fits

    # -------------------------------------------------------------- datasets
    @property
    def dataset(self) -> ValidationDataset:
        """The paired HW/gem5 validation dataset (collected on first use)."""
        if self._dataset is None:
            self._dataset = self._materialise(
                "dataset",
                lambda: collect_validation_dataset(
                    self.platform,
                    self.gem5,
                    self.config.resolve_workloads(),
                    self.config.resolve_frequencies(),
                    health=self.health,
                ),
                track_health=True,
            )
        return self._dataset

    @property
    def power_dataset(self) -> list[PowerObservation]:
        """Power-characterisation observations over the 65-workload set."""
        if self._power_dataset is None:
            self._power_dataset = self._materialise(
                "power-dataset",
                lambda: collect_power_dataset(
                    self.platform,
                    self.config.resolve_power_workloads(),
                    self.config.resolve_frequencies(),
                    health=self.health,
                ),
                track_health=True,
            )
        return self._power_dataset

    # -------------------------------------------------------------- analyses
    @property
    def workload_clusters(self) -> WorkloadClusterAnalysis:
        """Fig. 3: workload HCA with per-cluster execution-time errors."""
        if self._workload_clusters is None:
            self._workload_clusters = self._materialise(
                "workload-clusters",
                lambda: cluster_workloads(
                    self.dataset,
                    self.config.analysis_freq_hz,
                    self.config.n_workload_clusters,
                ),
            )
        return self._workload_clusters

    @property
    def pmc_correlation(self) -> CorrelationResult:
        """Fig. 5: HW PMC rates correlated with the time error."""
        if self._pmc_correlation is None:
            self._pmc_correlation = self._materialise(
                "pmc-correlation",
                lambda: pmc_error_correlation(
                    self.dataset, self.config.analysis_freq_hz
                ),
            )
        return self._pmc_correlation

    @property
    def gem5_correlation(self) -> CorrelationResult:
        """Section IV-C: gem5 statistics correlated with the time error."""
        if self._gem5_correlation is None:
            self._gem5_correlation = self._materialise(
                "gem5-correlation",
                lambda: gem5_error_correlation(
                    self.dataset, self.config.analysis_freq_hz
                ),
            )
        return self._gem5_correlation

    def regression(self, source: str = "hw") -> ErrorRegression:
        """Section IV-D: stepwise regression of the error (hw or gem5)."""
        if source not in self._regressions:
            self._regressions[source] = self._materialise(
                f"regression-{source}",
                lambda: error_regression(
                    self.dataset, self.config.analysis_freq_hz, source=source
                ),
            )
        return self._regressions[source]

    @property
    def event_comparison(self) -> EventComparison:
        """Fig. 6: matched-event ratios and BP accuracy."""
        if self._event_comparison is None:
            self._event_comparison = self._materialise(
                "event-comparison",
                lambda: compare_events(
                    self.dataset,
                    self.config.analysis_freq_hz,
                    self.workload_clusters,
                ),
            )
        return self._event_comparison

    # ------------------------------------------------------------- power side
    def build_power_model(
        self, restrained: bool | None = None, max_terms: int | None = None
    ) -> PowerModel:
        """Build a fresh power model (Section V), bypassing the cache."""
        if restrained is None:
            restrained = self.config.gem5_restrained_power_model
        builder = PowerModelBuilder(
            self.config.core,
            excluded_events=restraint_pool_gem5(self.config.core) if restrained else frozenset(),
            max_terms=max_terms or self.config.power_model_terms,
        )
        return builder.fit(self.power_dataset)

    @property
    def power_model(self) -> PowerModel:
        """The gem5-compatible power model (cached)."""
        if self._power_model is None:
            self._power_model = self._materialise(
                "power-model", self.build_power_model
            )
        return self._power_model

    @property
    def application(self) -> PowerModelApplication:
        """The Fig. 2 application tool bound to the cached power model."""
        if self._application is None:
            self._application = PowerModelApplication(
                self.power_model, self.platform.opps
            )
        return self._application

    @property
    def power_energy(self) -> PowerEnergyComparison:
        """Fig. 7: power/energy error of the gem5-driven estimates."""
        if self._power_energy is None:
            self._power_energy = self._materialise(
                "power-energy",
                lambda: compare_power_energy(
                    self.dataset, self.application, self.workload_clusters
                ),
            )
        return self._power_energy

    @property
    def dvfs(self) -> DvfsScaling:
        """Fig. 8: DVFS scaling, hardware vs model."""
        if self._dvfs is None:
            self._dvfs = self._materialise(
                "dvfs",
                lambda: dvfs_scaling(
                    self.dataset, self.application, self.workload_clusters
                ),
            )
        return self._dvfs

    # ------------------------------------------------------------------ misc
    def with_machine(self, machine: MachineConfig | str) -> "GemStone":
        """A new GemStone run validating a different gem5 model.

        The Section VII use-case: re-run the identical evaluation after a
        simulator change (e.g. the BP fix) and compare reports.
        """
        return GemStone(replace(self.config, gem5_machine=machine))

    def compare_with_little(self, little: "GemStone") -> BigLittleComparison:
        """Cross-cluster big.LITTLE scaling against an A7 GemStone run.

        Raises:
            ValueError: If ``little`` is not an A7 run or self not A15.
        """
        if self.config.core != "A15" or little.config.core != "A7":
            raise ValueError("call as a15_gemstone.compare_with_little(a7_gemstone)")
        return big_little_scaling(little.dataset, self.dataset)

    def report(self) -> str:
        """The full text report covering every table and figure.

        With a checkpointed run state the rendered text itself is the
        final phase: it is restored or checkpointed like any product, and
        rendered *without* the wall-clock telemetry section so that an
        interrupted-then-resumed run is byte-identical to an uninterrupted
        one.
        """
        from repro.core.report import render_full_report

        if self.runstate is None:
            with self.tracer.span("phase:report", kind="phase"):
                return render_full_report(self)
        restored = self.runstate.restore("report")
        if restored is not None:
            self.tracer.event("report-restored")
            return restored["product"]
        # Materialise the health-bearing phases first: a restored power
        # model never pulls the power-dataset checkpoint on its own, and
        # skipping it would drop that phase's collection-health snapshot
        # from the rendered report.
        _ = self.dataset
        _ = self.power_dataset
        with self.tracer.span("phase:report", kind="phase"):
            text = render_full_report(self, include_telemetry=False)
        self.runstate.checkpoint("report", {"product": text, "health": None})
        self.runstate.journal("run-complete")
        return text

    def export_trace(self, directory: str | None = None) -> dict[str, str]:
        """Write the Chrome-trace and metrics exports for this run.

        Args:
            directory: Destination; defaults to the config's ``trace_dir``.
                When the run streamed to ``events.jsonl`` there, the Chrome
                export covers *every* segment in the stream (an interrupted
                then resumed run renders as two aligned process tracks);
                otherwise it covers this process's in-memory records.

        When the run is attached to a campaign board (``board_dir``), the
        Chrome export stitches every shard's checksummed trace segments
        into the coordinator timeline as per-shard tracks, so one file
        shows the whole distributed campaign.

        Returns:
            ``{"chrome": path, "metrics": path}`` of the written files.

        Raises:
            ValueError: When no directory is given or configured.
        """
        from repro.obs.exporters import read_event_stream
        from repro.obs.merge import is_campaign_dir, merge_campaign_records

        if directory is None:
            directory = self.config.trace_dir
        if directory is None:
            raise ValueError("no trace directory given or configured")
        os.makedirs(directory, exist_ok=True)
        stream = os.path.join(directory, EVENTS_FILE)
        records = read_event_stream(stream, missing_ok=True)
        if not records:
            records = self.tracer.records
        names = None
        board_dir = self.config.board_dir
        if board_dir is not None and is_campaign_dir(board_dir):
            records, names = merge_campaign_records(
                board_dir, coordinator_records=records
            )
        chrome_path = os.path.join(directory, CHROME_FILE)
        metrics_path = os.path.join(directory, METRICS_FILE)
        write_chrome_trace(records, chrome_path, process_names=names)
        write_prometheus_snapshot(self.metrics, metrics_path)
        return {"chrome": chrome_path, "metrics": metrics_path}
