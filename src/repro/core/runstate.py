"""Crash-safe, resumable pipeline runs: journal + phase checkpoints.

A full GemStone evaluation is a long multi-phase pipeline (characterise ->
simulate -> analyse -> report, Section VII).  The simulation layer already
memoises per-(trace, machine) results on disk, but every *analysis* product
above it was all-or-nothing: a crash or SIGTERM during ``GemStone.report()``
threw away each completed phase.  This module makes a run restartable:

* A :class:`RunManifest` fingerprints the *resolved* configuration — only
  the fields that affect results (core, machine, workloads, frequencies,
  trace length, analysis knobs, fault plan), never execution knobs like
  ``jobs`` or ``cache_dir`` that are bit-identical by construction.  A
  checkpoint directory written under a different fingerprint is detected
  and quarantined, never reused.
* A :class:`RunState` owns an append-only, checksummed JSONL **run
  journal** (mode ``"a"`` writes, fsync'd per record; a torn tail line is
  detected and dropped on read) and one **checkpoint artifact per phase**:
  a JSON header line (schema, phase, fingerprint, payload checksum and
  length) followed by the pickled payload, written via the shared
  atomic-write helper (tmp file + fsync + rename).  A checkpoint failing
  *any* header, checksum or unpickling check is quarantined to
  ``<dir>/quarantine/`` and recomputed — corrupt state is never trusted.
* :meth:`RunState.interruptible` installs SIGINT/SIGTERM handlers that
  journal the interruption and exit; because every checkpoint is written
  atomically *when its phase completes*, the state on disk is resumable at
  any kill point.
* **Phase splicing** makes recomputation after a config edit *minimal*
  rather than total: each phase's checkpoint carries a ``phase_key`` — a
  fingerprint over only the description fields that phase (and its
  ancestors in :data:`PHASE_GRAPH`) actually consumes.  When a directory
  holds a different run's artifacts, checkpoints whose phase key still
  matches the new manifest are kept and restored ("spliced"); only the
  invalidated subgraph is quarantined and recomputed.  Editing
  ``n_workload_clusters``, for example, re-runs clustering and its
  dependents while the datasets, correlations and power model restore
  from disk.

Journal records carry monotonic sequence numbers rather than timestamps:
the run layer lives inside :mod:`repro.core`, where wall-clock reads are a
determinism lint error (DET002) — and byte-identical resumed reports need
no clocks anyway.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pickle
import signal
import warnings
from dataclasses import dataclass
from typing import Any, Iterator

from repro.atomicio import atomic_write_bytes, atomic_write_text
from repro.obs.metrics import MetricsRegistry, MetricView
from repro.obs.tracer import NULL_TRACER, Tracer

#: Bump when the journal/checkpoint envelope format changes; old artifacts
#: are then quarantined and recomputed instead of being misread.
RUNSTATE_SCHEMA_VERSION = 1

#: Every checkpointable phase, in canonical pipeline order.
PHASES = (
    "dataset",
    "power-dataset",
    "workload-clusters",
    "pmc-correlation",
    "gem5-correlation",
    "regression-hw",
    "regression-gem5",
    "event-comparison",
    "power-model",
    "power-energy",
    "dvfs",
    "report",
)

#: Which manifest-description fields each phase consumes, and which phases
#: feed it.  The transitive closure of (own fields + ancestors' fields)
#: defines a phase's :meth:`RunManifest.phase_key`: two configurations that
#: agree on exactly those fields produce bit-identical payloads for the
#: phase, so its checkpoint can be spliced between them.
PHASE_GRAPH: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "dataset": (
        (),
        ("runstate_schema", "core", "machine", "workloads", "frequencies",
         "trace_instructions", "faults"),
    ),
    "power-dataset": (
        (),
        ("runstate_schema", "core", "power_workloads", "frequencies",
         "trace_instructions", "faults"),
    ),
    "workload-clusters": (
        ("dataset",), ("analysis_freq_hz", "n_workload_clusters"),
    ),
    "pmc-correlation": (("dataset",), ("analysis_freq_hz",)),
    "gem5-correlation": (("dataset",), ("analysis_freq_hz",)),
    "regression-hw": (("dataset",), ("analysis_freq_hz",)),
    "regression-gem5": (("dataset",), ("analysis_freq_hz",)),
    "event-comparison": (
        ("dataset", "workload-clusters"), ("analysis_freq_hz",),
    ),
    "power-model": (
        ("power-dataset",),
        ("core", "power_model_terms", "gem5_restrained_power_model"),
    ),
    "power-energy": (("dataset", "workload-clusters", "power-model"), ()),
    "dvfs": (("dataset", "workload-clusters", "power-model"), ()),
    "report": (tuple(p for p in PHASES if p != "report"), ()),
}


@dataclass(frozen=True)
class RunManifest:
    """Identity of one run configuration, as stored in a checkpoint dir.

    Attributes:
        fingerprint: sha1 over the sorted-JSON ``description`` — the key
            every checkpoint in the directory is bound to.
        description: The resolved, result-affecting configuration fields
            (kept human-readable in ``manifest.json`` for post-mortems).
    """

    fingerprint: str
    description: dict

    @classmethod
    def from_config(cls, config: Any) -> "RunManifest":
        """Fingerprint a resolved :class:`~repro.core.pipeline.GemStoneConfig`.

        Only result-affecting fields participate: execution knobs (``jobs``,
        ``retry``, ``sim_timeout_seconds``, ``cache_dir``, ``checkpoint_dir``,
        ``resume``) are bit-identical by construction and deliberately
        excluded, so re-running with more workers resumes the same state.
        """
        from repro.sim.result_cache import machine_fingerprint

        faults = (
            dataclasses.asdict(config.faults)
            if config.faults is not None
            else None
        )
        description = {
            "runstate_schema": RUNSTATE_SCHEMA_VERSION,
            "core": config.core,
            "machine": machine_fingerprint(config.resolve_machine()),
            "workloads": [p.name for p in config.resolve_workloads()],
            "power_workloads": [
                p.name for p in config.resolve_power_workloads()
            ],
            "frequencies": [float(f) for f in config.resolve_frequencies()],
            "analysis_freq_hz": float(config.analysis_freq_hz),
            "trace_instructions": int(config.trace_instructions),
            "n_workload_clusters": int(config.n_workload_clusters),
            "power_model_terms": int(config.power_model_terms),
            "gem5_restrained_power_model": bool(
                config.gem5_restrained_power_model
            ),
            "faults": faults,
        }
        payload = json.dumps(description, sort_keys=True)
        return cls(
            fingerprint=hashlib.sha1(payload.encode()).hexdigest(),
            description=description,
        )

    def phase_key(self, phase: str) -> str:
        """Fingerprint of the description subset one phase depends on.

        Built from :data:`PHASE_GRAPH`: the phase's own fields plus the
        phase keys of its parents, recursively — so a change to any
        ancestor's inputs propagates down, while unrelated edits leave the
        key (and therefore the checkpoint) valid.  Unknown phases, and
        manifests whose description lacks a required field (hand-built
        test manifests), fall back to the full ``fingerprint`` — splicing
        then degrades to the old all-or-nothing behaviour, never to a
        false match.
        """
        spec = PHASE_GRAPH.get(phase)
        if spec is None:
            return self.fingerprint
        parents, fields = spec
        if any(name not in self.description for name in fields):
            return self.fingerprint
        payload = {
            "phase": phase,
            "fields": {name: self.description[name] for name in fields},
            "parents": {p: self.phase_key(p) for p in parents},
        }
        return hashlib.sha1(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()


class RunStateTelemetry(MetricView):
    """Counters for one run-state instance's lifetime.

    A view over the ``core.runstate.*`` counters of a
    :class:`~repro.obs.metrics.MetricsRegistry`; the attribute API is
    unchanged.
    """

    _fields = {
        name: f"core.runstate.{name}"
        for name in (
            "restored", "checkpointed", "quarantined", "spliced",
            "journal_records_dropped",
        )
    }


def _record_checksum(record: dict) -> str:
    """Checksum of a journal record (everything but its ``sha1`` field)."""
    return hashlib.sha1(
        json.dumps(record, sort_keys=True).encode()
    ).hexdigest()


class RunState:
    """One checkpoint directory bound to one :class:`RunManifest`.

    Args:
        directory: Checkpoint directory (created on demand).  When creation
            or a write fails (read-only or full filesystem) the run state
            degrades to *inert* — computation proceeds uncheckpointed —
            after a single warning, mirroring the simulation cache.
        manifest: Identity of the run; every artifact is bound to its
            fingerprint.
        resume: Restore checkpoints written by a previous run.  When
            False, existing checkpoints are left on disk but never read;
            fresh phases overwrite them atomically.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; checkpoint,
            restore, quarantine and interruption become trace events.
        metrics: Shared :class:`~repro.obs.metrics.MetricsRegistry` the
            ``core.runstate.*`` counters live in; private when not given.

    A directory holding a *different* fingerprint's artifacts is detected
    on open: everything in it is quarantined and the run starts fresh.
    """

    def __init__(
        self,
        directory: str,
        manifest: RunManifest,
        resume: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.directory = directory
        self.manifest = manifest
        self.resume = resume
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = RunStateTelemetry(metrics)
        self.inert = False
        self._warned = False
        self._seq = 0
        self._spliced: list[str] = []
        try:
            os.makedirs(directory, exist_ok=True)
            existing = self._read_manifest_fingerprint()
            if existing is not None and existing != manifest.fingerprint:
                if existing == "":
                    # Corrupt manifest: nothing in the directory can be
                    # attributed, so nothing is spliced.
                    self._quarantine_all()
                else:
                    self._quarantine_stale()
                existing = None
            if existing is None:
                atomic_write_text(
                    self.manifest_path,
                    json.dumps(
                        {
                            "schema": RUNSTATE_SCHEMA_VERSION,
                            "fingerprint": manifest.fingerprint,
                            "config": manifest.description,
                        },
                        indent=2,
                        sort_keys=True,
                    ),
                )
        except OSError as exc:
            self._degrade(exc)
            return
        records = self.read_journal()
        if records:
            self._seq = int(records[-1]["seq"]) + 1
        self.journal(
            "run-start",
            fingerprint=manifest.fingerprint,
            resume=bool(resume),
        )
        if self._spliced:
            self.journal("phases-spliced", phases=sorted(self._spliced))
            self.tracer.event(
                "phases-spliced", phases=sorted(self._spliced)
            )

    # ------------------------------------------------------------------ paths
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, "manifest.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.directory, "journal.jsonl")

    @property
    def quarantine_dir(self) -> str:
        """Where corrupt or stale artifacts are preserved for post-mortems."""
        return os.path.join(self.directory, "quarantine")

    def checkpoint_path(self, phase: str) -> str:
        return os.path.join(self.directory, f"{phase}.ckpt")

    def _read_manifest_fingerprint(self) -> str | None:
        """Fingerprint recorded in the directory, or None when fresh.

        A corrupt or unreadable manifest returns the empty string, which
        never matches a real fingerprint — the directory is then treated
        as stale and quarantined wholesale.
        """
        try:
            with open(self.manifest_path) as handle:
                data = json.load(handle)
            fingerprint = data["fingerprint"]
            if not isinstance(fingerprint, str):
                raise TypeError("fingerprint must be a string")
            return fingerprint
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return ""

    # -------------------------------------------------------------- degrading
    def _degrade(self, exc: OSError) -> None:
        self.inert = True
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"checkpoint directory {self.directory} is unusable ({exc}); "
                "continuing without checkpoints",
                RuntimeWarning,
                stacklevel=3,
            )

    def _quarantine(self, path: str, reason: str) -> None:
        """Move one corrupt artifact out of the way, keeping the bytes."""
        self.telemetry.quarantined += 1
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            dest = os.path.join(self.quarantine_dir, os.path.basename(path))
            os.replace(path, dest)
        except OSError:
            with contextlib.suppress(OSError):
                os.remove(path)
        self.journal(
            "quarantined", artifact=os.path.basename(path), reason=reason
        )
        self.tracer.event(
            "runstate-quarantined",
            artifact=os.path.basename(path),
            reason=reason,
        )

    def _quarantine_all(self) -> None:
        """Quarantine every artifact of a stale (mismatched) run."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        os.makedirs(self.quarantine_dir, exist_ok=True)
        moved = 0
        for name in sorted(names):
            if not (name.endswith(".ckpt") or name in
                    ("journal.jsonl", "manifest.json")):
                continue
            src = os.path.join(self.directory, name)
            try:
                os.replace(src, os.path.join(self.quarantine_dir, name))
                moved += 1
            except OSError:
                with contextlib.suppress(OSError):
                    os.remove(src)
        self.telemetry.quarantined += moved

    def _checkpoint_key(self, phase: str) -> str | None:
        """The ``phase_key`` recorded in a checkpoint's header, or None."""
        try:
            with open(self.checkpoint_path(phase), "rb") as handle:
                header = json.loads(handle.readline())
            key = header.get("phase_key")
            return key if isinstance(key, str) else None
        except (OSError, ValueError, TypeError, AttributeError):
            return None

    def _quarantine_stale(self) -> None:
        """Quarantine a mismatched run's artifacts, splicing what survives.

        The manifest and journal belong to the *old* run and always go;
        each checkpoint stays if and only if the phase key in its header
        matches what the *new* manifest derives for that phase — meaning
        every input the phase consumes is unchanged and its payload would
        be recomputed bit-identically.  Kept phases are recorded in
        ``self._spliced`` and journalled after ``run-start``.
        """
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        os.makedirs(self.quarantine_dir, exist_ok=True)
        moved = 0
        for name in sorted(names):
            if name.endswith(".ckpt"):
                phase = name[: -len(".ckpt")]
                recorded = self._checkpoint_key(phase)
                if (
                    recorded is not None
                    and recorded == self.manifest.phase_key(phase)
                ):
                    self._spliced.append(phase)
                    continue
            elif name not in ("journal.jsonl", "manifest.json"):
                continue
            src = os.path.join(self.directory, name)
            try:
                os.replace(src, os.path.join(self.quarantine_dir, name))
                moved += 1
            except OSError:
                with contextlib.suppress(OSError):
                    os.remove(src)
        self.telemetry.quarantined += moved
        self.telemetry.spliced += len(self._spliced)

    # ---------------------------------------------------------------- journal
    def journal(self, event: str, **fields: Any) -> None:
        """Append one checksummed record to the run journal (fsync'd)."""
        if self.inert:
            return
        record: dict[str, Any] = {"seq": self._seq, "event": event, **fields}
        record["sha1"] = _record_checksum(
            {k: v for k, v in record.items() if k != "sha1"}
        )
        line = json.dumps(record, sort_keys=True)
        try:
            with open(self.journal_path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self._degrade(exc)
        else:
            self._seq += 1

    def read_journal(self) -> list[dict]:
        """Verified journal records, oldest first.

        A torn or corrupt line (a crash mid-append) invalidates itself and
        everything after it — the journal is trusted only up to its last
        intact prefix.
        """
        try:
            with open(self.journal_path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return []
        except OSError:
            return []
        records: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                expected = record["sha1"]
                body = {k: v for k, v in record.items() if k != "sha1"}
                if _record_checksum(body) != expected:
                    raise ValueError("journal record checksum mismatch")
            except (ValueError, KeyError, TypeError):
                self.telemetry.journal_records_dropped += len(lines) - len(
                    records
                )
                break
            records.append(record)
        return records

    # ------------------------------------------------------------ checkpoints
    def checkpoint(self, phase: str, payload: Any) -> bool:
        """Atomically persist one phase's payload; True when written."""
        if self.inert:
            return False
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "schema": RUNSTATE_SCHEMA_VERSION,
            "phase": phase,
            "fingerprint": self.manifest.fingerprint,
            "phase_key": self.manifest.phase_key(phase),
            "checksum": hashlib.sha1(body).hexdigest(),
            "n_bytes": len(body),
        }
        data = json.dumps(header, sort_keys=True).encode() + b"\n" + body
        try:
            atomic_write_bytes(self.checkpoint_path(phase), data)
        except OSError as exc:
            self._degrade(exc)
            return False
        self.telemetry.checkpointed += 1
        self.journal("checkpointed", phase=phase, n_bytes=len(body))
        self.tracer.event("checkpointed", phase=phase, n_bytes=len(body))
        return True

    def restore(self, phase: str) -> Any | None:
        """The payload checkpointed for ``phase``, or None.

        Only consulted on a ``resume`` run.  A checkpoint that fails any
        header, fingerprint, checksum or unpickling check is quarantined
        and None is returned — the phase is then recomputed.
        """
        if self.inert or not self.resume:
            return None
        path = self.checkpoint_path(phase)
        try:
            with open(path, "rb") as handle:
                header_line = handle.readline()
                body = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path, "unreadable")
            return None
        try:
            header = json.loads(header_line)
            if header["schema"] != RUNSTATE_SCHEMA_VERSION:
                raise ValueError(f"schema {header['schema']}")
            if header["phase"] != phase:
                raise ValueError(f"phase {header['phase']!r}")
            if header["fingerprint"] != self.manifest.fingerprint and (
                header.get("phase_key") != self.manifest.phase_key(phase)
            ):
                raise ValueError("fingerprint mismatch")
            if header["n_bytes"] != len(body):
                raise ValueError("truncated payload")
            if hashlib.sha1(body).hexdigest() != header["checksum"]:
                raise ValueError("checksum mismatch")
            payload = pickle.loads(body)
        except Exception as exc:  # noqa: BLE001 - any corruption -> recompute
            self._quarantine(path, f"{type(exc).__name__}: {exc}")
            return None
        self.telemetry.restored += 1
        self.journal("restored", phase=phase)
        self.tracer.event("restored", phase=phase)
        return payload

    def completed_phases(self) -> list[str]:
        """Phases with a checkpoint artifact on disk, in pipeline order."""
        return [
            phase
            for phase in PHASES
            if os.path.exists(self.checkpoint_path(phase))
        ]

    # ----------------------------------------------------------------- signals
    @contextlib.contextmanager
    def interruptible(self) -> Iterator[None]:
        """Install SIGINT/SIGTERM handlers that leave a resumable state.

        On either signal the journal records the interruption (fsync'd),
        the previous handler is restored, and the process exits via
        ``KeyboardInterrupt`` (SIGINT) or ``SystemExit(128 + signum)``
        (SIGTERM).  Checkpoints are written atomically as phases complete,
        so no flushing of partial state is needed — whatever finished is
        already durable.  Outside the main thread (where ``signal`` is
        unavailable) this is a no-op.
        """
        if self.inert:
            yield
            return
        previous: dict[int, Any] = {}

        def _handler(signum: int, frame: Any) -> None:
            self.journal("interrupted", signal=int(signum))
            self.tracer.event("interrupted", signal=int(signum))
            with contextlib.suppress(ValueError, OSError):
                signal.signal(signum, previous.get(signum, signal.SIG_DFL))
            if signum == signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(128 + signum)

        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(signum, _handler)
        except ValueError:
            # Not the main thread: signals cannot be installed here.
            yield
            return
        try:
            yield
        finally:
            for signum, prev in previous.items():
                with contextlib.suppress(ValueError, OSError):
                    signal.signal(signum, prev)
