"""Identifying sources of error in the gem5 model (Section IV).

The methodology has four cooperating stages, none of which needs detailed
CPU specifications:

1. **Workload HCA + per-cluster MPE** (Fig. 3, Section IV): cluster the
   workloads on their HW PMC rate vectors; workloads in one cluster exhibit
   similar errors, and extreme workloads isolate into singleton clusters.
2. **HW PMC correlation analysis** (Fig. 5, Section IV-B): correlate every
   PMC's rate with the execution-time error, grouped by event HCA.
3. **gem5 event correlation analysis** (Section IV-C): the same against the
   model's own statistics; contrasting 2 and 3 separates *sources* of error
   from merely *correlated* symptoms.
4. **Stepwise regression** (Section IV-D): a compact regression model of the
   error from a handful of events, surfacing predictors (e.g. snoops,
   ``dtb.prefetch_faults``) that correlation alone under-ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats.cluster import (
    ClusterResult,
    hierarchical_clustering,
    trivial_clustering,
)
from repro.core.stats.correlate import CorrelationResult, correlate_with_error
from repro.core.stats.stepwise import StepwiseResult, forward_stepwise
from repro.core.validation import ValidationDataset
from repro.events.armv7_pmu import event_name


@dataclass(frozen=True)
class WorkloadClusterAnalysis:
    """Fig. 3: workload clusters and their execution-time errors.

    Attributes:
        freq_hz: Frequency the errors are taken at.
        clusters: Workload HCA result (1-based cluster ids).
        errors: Per-workload signed time percentage error, workload order
            matching ``clusters.item_names``.
        degraded: Notes recorded when the clustering had to degrade —
            uncollected workloads missing from the matrix, or a trivial
            single-cluster fallback when fewer than two workloads survive.
    """

    freq_hz: float
    clusters: ClusterResult
    errors: np.ndarray
    degraded: tuple[str, ...] = ()

    def cluster_mpe(self) -> dict[int, float]:
        """Mean signed error per cluster (the numbers Fig. 3 annotates)."""
        result: dict[int, float] = {}
        labels = np.asarray(self.clusters.labels)
        for cluster in range(1, self.clusters.n_clusters + 1):
            mask = labels == cluster
            if mask.any():
                result[cluster] = float(self.errors[mask].mean())
        return result

    def cluster_mape(self) -> dict[int, float]:
        """Mean absolute error per cluster."""
        result: dict[int, float] = {}
        labels = np.asarray(self.clusters.labels)
        for cluster in range(1, self.clusters.n_clusters + 1):
            mask = labels == cluster
            if mask.any():
                result[cluster] = float(np.abs(self.errors[mask]).mean())
        return result

    def ordered_rows(self) -> list[tuple[str, int, float]]:
        """(workload, cluster, error) ordered by cluster then error —
        the ordering of the Fig. 3 bar chart."""
        rows = [
            (name, label, float(err))
            for name, label, err in zip(
                self.clusters.item_names, self.clusters.labels, self.errors
            )
        ]
        return sorted(rows, key=lambda r: (r[1], r[2]))

    def extreme_workload(self) -> tuple[str, int, float]:
        """The workload with the largest |error| and its cluster."""
        index = int(np.abs(self.errors).argmax())
        return (
            self.clusters.item_names[index],
            self.clusters.labels[index],
            float(self.errors[index]),
        )


def cluster_workloads(
    dataset: ValidationDataset,
    freq_hz: float,
    n_clusters: int = 16,
    events: list[int] | None = None,
) -> WorkloadClusterAnalysis:
    """Workload HCA on standardised HW PMC rates, annotated with errors.

    The paper cuts the dendrogram into 16 clusters for its 45 workloads;
    ``n_clusters`` is clamped to the workload count.  Degraded campaigns
    are tolerated: uncollected workloads are dropped (and noted), and with
    fewer than two survivors the result degrades to a trivial
    single-cluster :class:`~repro.core.stats.cluster.ClusterResult`
    instead of crashing the HCA.
    """
    names = [run.workload for run in dataset.runs_at(freq_hz)]
    notes: list[str] = []
    missing = [w for w in dataset.workloads if w not in set(names)]
    if missing:
        shown = ", ".join(missing[:5])
        if len(missing) > 5:
            shown += f" (+{len(missing) - 5} more)"
        notes.append(
            f"workload clustering at {freq_hz / 1e6:.0f} MHz is missing "
            f"{len(missing)} uncollected workload(s): {shown}"
        )
    if len(names) < 2:
        notes.append(
            f"only {len(names)} workload(s) survive at "
            f"{freq_hz / 1e6:.0f} MHz; clustering degraded to a trivial "
            "single-cluster result"
        )
        return WorkloadClusterAnalysis(
            freq_hz=freq_hz,
            clusters=trivial_clustering(names),
            errors=dataset.errors_at(freq_hz),
            degraded=tuple(notes),
        )
    rates, _ = dataset.pmc_rate_matrix(freq_hz, events)
    # Log-scale the rates: PMC rates span many decades and HCA on raw values
    # would be dominated by the largest counters.
    rates = np.log10(rates + 1.0)
    clusters = hierarchical_clustering(
        rates,
        names,
        n_clusters=min(n_clusters, len(names)),
        metric="euclidean",
    )
    return WorkloadClusterAnalysis(
        freq_hz=freq_hz,
        clusters=clusters,
        errors=dataset.errors_at(freq_hz),
        degraded=tuple(notes),
    )


def pmc_error_correlation(
    dataset: ValidationDataset,
    freq_hz: float,
    n_event_clusters: int = 28,
) -> CorrelationResult:
    """Fig. 5: correlation of each HW PMC rate with the time error.

    A positive correlation means workloads with a high rate of the event
    tend to have their execution time *underestimated* by the model.
    """
    rates, events = dataset.pmc_rate_matrix(freq_hz)
    errors = dataset.errors_at(freq_hz)
    names = [event_name(e) for e in events]
    return correlate_with_error(
        rates, errors, names, n_event_clusters=n_event_clusters
    )


def gem5_error_correlation(
    dataset: ValidationDataset,
    freq_hz: float,
    min_abs_correlation: float = 0.3,
    n_event_clusters: int = 14,
) -> CorrelationResult:
    """Section IV-C: gem5 statistic rates vs the time error.

    Only statistics with |r| above ``min_abs_correlation`` are kept (the
    paper extracts 94 events above 0.3 from the thousands emitted), then
    clustered with correlation distance; the largest strongly-negative
    cluster in the paper is the ITLB walker-cache group (Cluster A).
    """
    rates, stats = dataset.gem5_rate_matrix(freq_hz)
    errors = dataset.errors_at(freq_hz)
    # Drop degenerate columns before filtering on correlation.
    keep = rates.std(axis=0) > 0
    rates = rates[:, keep]
    stats = [s for s, k in zip(stats, keep) if k]
    return correlate_with_error(
        rates,
        errors,
        stats,
        n_event_clusters=n_event_clusters,
        min_abs_correlation=min_abs_correlation,
    )


@dataclass(frozen=True)
class ErrorRegression:
    """Section IV-D: stepwise regression of the time error on event data.

    Attributes:
        source: ``"hw"`` (PMC events) or ``"gem5"`` (model statistics).
        freq_hz: Frequency analysed.
        stepwise: The selection trace and final model.
    """

    source: str
    freq_hz: float
    stepwise: StepwiseResult

    @property
    def selected(self) -> tuple[str, ...]:
        return self.stepwise.selected

    @property
    def r2(self) -> float:
        return self.stepwise.model.r2

    @property
    def adjusted_r2(self) -> float:
        return self.stepwise.model.adjusted_r2

    @property
    def best_predictor(self) -> str:
        """The first event the selection picked (PC_WRITE_SPEC in the paper)."""
        return self.stepwise.selected[0]


def error_regression(
    dataset: ValidationDataset,
    freq_hz: float,
    source: str = "hw",
    max_terms: int = 10,
    p_value_limit: float = 0.05,
) -> ErrorRegression:
    """Regress the (hw - gem5) execution-time difference on event data.

    Both totals and rates are offered as candidates, as in the paper; the
    dependent variable is the raw time difference in seconds at one
    frequency (the paper uses 1 GHz).

    Raises:
        ValueError: For an unknown ``source``.
    """
    runs = dataset.runs_at(freq_hz)
    y = np.array([r.hw_time - r.gem5_time for r in runs])

    candidates: dict[str, np.ndarray] = {}
    if source == "hw":
        totals, events = dataset.pmc_total_matrix(freq_hz)
        rates, _ = dataset.pmc_rate_matrix(freq_hz, events)
        for j, event in enumerate(events):
            name = event_name(event)
            candidates[f"{name} (total)"] = totals[:, j]
            candidates[f"{name} (rate)"] = rates[:, j]
    elif source == "gem5":
        rates, stats = dataset.gem5_rate_matrix(freq_hz)
        totals = np.array(
            [[run.gem5.stats[s] for s in stats] for run in runs]
        )
        for j, stat in enumerate(stats):
            candidates[f"{stat} (total)"] = totals[:, j]
            candidates[f"{stat} (rate)"] = rates[:, j]
    else:
        raise ValueError(f"unknown source {source!r}; use 'hw' or 'gem5'")

    stepwise = forward_stepwise(
        candidates,
        y,
        max_terms=max_terms,
        p_value_limit=p_value_limit,
        use_adjusted_r2=False,
    )
    return ErrorRegression(source=source, freq_hz=freq_hz, stepwise=stepwise)
