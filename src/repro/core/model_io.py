"""Serialisation of power models and datasets.

The paper's artefact release ships the fitted model coefficients, the full
datasets, and machine-readable results ("Software, models, datasets and full
results are made available").  This module provides that surface:

* :func:`save_power_model` / :func:`load_power_model` — JSON round-trip of a
  fitted :class:`~repro.core.power_model.PowerModel`, coefficients included,
  so models can be published and re-applied without the training data (the
  "published model coefficients" workflow of Section V).
* :func:`power_dataset_to_csv` / :func:`power_dataset_from_csv` — the
  Experiment-3/4 observations.
* :func:`validation_to_csv` — the paired execution-time observations behind
  Fig. 3 and the headline tables.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

import numpy as np

from repro.core.power_model import (
    EventTerm,
    PowerModel,
    PowerModelQuality,
    PowerObservation,
)
from repro.atomicio import atomic_write_text
from repro.core.stats.ols import OlsResult
from repro.core.validation import ValidationDataset

#: Current power-model JSON schema.  Version 2 added the explicit
#: ``schema_version`` field and the ``degraded`` note lists; version-1
#: files carried only the legacy ``format_version`` field and are
#: rejected with a clear :class:`ModelIoError` asking for a re-export.
SCHEMA_VERSION = 2

#: Legacy field written by pre-``schema_version`` exports (still emitted
#: so old readers fail on the *kind/version* check, not a ``KeyError``).
FORMAT_VERSION = 1


class ModelIoError(ValueError):
    """A power-model file could not be loaded.

    Raised for corrupt JSON, payloads of the wrong kind, old or unknown
    schema versions, and missing/malformed keys — instead of leaking a
    bare ``KeyError``/``JSONDecodeError`` from the parsing internals.
    Subclasses :class:`ValueError` so existing ``except ValueError``
    callers keep working.
    """


def _ols_to_dict(model: OlsResult) -> dict:
    return {
        "names": list(model.names),
        "intercept": model.intercept,
        "coefficients": [float(c) for c in model.coefficients],
        "std_errors": [float(s) for s in model.std_errors],
        "t_values": [float(t) for t in model.t_values],
        "p_values": [float(p) for p in model.p_values],
        "r2": model.r2,
        "adjusted_r2": model.adjusted_r2,
        "ser": model.ser,
        "n_observations": model.n_observations,
        "degraded": list(model.degraded),
    }


def _ols_from_dict(data: dict) -> OlsResult:
    return OlsResult(
        names=tuple(data["names"]),
        intercept=float(data["intercept"]),
        coefficients=np.asarray(data["coefficients"], dtype=float),
        std_errors=np.asarray(data["std_errors"], dtype=float),
        t_values=np.asarray(data["t_values"], dtype=float),
        p_values=np.asarray(data["p_values"], dtype=float),
        r2=float(data["r2"]),
        adjusted_r2=float(data["adjusted_r2"]),
        ser=float(data["ser"]),
        n_observations=int(data["n_observations"]),
        degraded=tuple(data.get("degraded", ())),
    )


def power_model_to_dict(model: PowerModel) -> dict:
    """A JSON-serialisable description of a fitted power model."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "format_version": FORMAT_VERSION,
        "kind": "gemstone-power-model",
        "core": model.core,
        "terms": [
            {"positive": t.positive, "negative": t.negative} for t in model.terms
        ],
        "per_opp": {str(key): _ols_to_dict(fit) for key, fit in model.per_opp.items()},
        "degraded": list(model.degraded),
    }
    if model.quality is not None:
        quality = model.quality
        payload["quality"] = {
            "mape": quality.mape,
            "mpe": quality.mpe,
            "ser": quality.ser,
            "adjusted_r2": quality.adjusted_r2,
            "mean_vif": quality.mean_vif,
            "max_ape": quality.max_ape,
            "worst_observation": quality.worst_observation,
            "n_observations": quality.n_observations,
        }
    return payload


def power_model_from_dict(data: dict) -> PowerModel:
    """Inverse of :func:`power_model_to_dict`.

    Raises:
        ModelIoError: For non-object payloads, unknown payload kinds,
            old/unknown schema versions, or missing/malformed keys.
    """
    if not isinstance(data, dict):
        raise ModelIoError(
            f"power-model payload must be a JSON object, got {type(data).__name__}"
        )
    if data.get("kind") != "gemstone-power-model":
        raise ModelIoError(
            f"not a power-model payload: kind={data.get('kind')!r}"
        )
    version = data.get("schema_version")
    if version is None and "format_version" in data:
        raise ModelIoError(
            "legacy power-model file "
            f"(format_version={data['format_version']!r}, no schema_version); "
            "re-export it with the current tool version"
        )
    if version != SCHEMA_VERSION:
        raise ModelIoError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    try:
        terms = tuple(
            EventTerm(int(t["positive"]),
                      None if t["negative"] is None else int(t["negative"]))
            for t in data["terms"]
        )
        per_opp = {
            int(key): _ols_from_dict(fit) for key, fit in data["per_opp"].items()
        }
        model = PowerModel(
            core=data["core"],
            terms=terms,
            per_opp=per_opp,
            degraded=tuple(data.get("degraded", ())),
        )
        if "quality" in data:
            model.quality = PowerModelQuality(**data["quality"])
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ModelIoError(
            f"corrupt power-model payload: {type(exc).__name__}: {exc}"
        ) from exc
    return model


def save_power_model(model: PowerModel, path: str) -> None:
    """Write a fitted model (with coefficients and quality) to JSON.

    The write is atomic (tmp file + fsync + rename): a crash mid-export
    never leaves a truncated model file behind.
    """
    atomic_write_text(path, json.dumps(power_model_to_dict(model), indent=2))


def load_power_model(path: str) -> PowerModel:
    """Load a model saved by :func:`save_power_model`.

    Raises:
        ModelIoError: For corrupt JSON or invalid payloads (see
            :func:`power_model_from_dict`).
        OSError: If the file cannot be read at all.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ModelIoError(
                f"corrupt power-model JSON in {path}: {exc}"
            ) from exc
    return power_model_from_dict(data)


# --------------------------------------------------------------------- CSVs
def _format_float(value: float, spec: str) -> str:
    """Format a float for CSV, with canonical non-finite tokens.

    Fault-injected campaigns can legitimately carry NaN power means; the
    explicit ``NaN``/``Infinity``/``-Infinity`` tokens round-trip
    bit-identically through :func:`_parse_float` regardless of the
    format spec (``format(nan, '.6f')`` would otherwise depend on the
    platform's printf).
    """
    if np.isnan(value):
        return "NaN"
    if np.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return format(value, spec)


def _parse_float(text: str) -> float:
    """Inverse of :func:`_format_float` (plain ``float`` for finite text)."""
    if text == "NaN":
        return float("nan")
    if text == "Infinity":
        return float("inf")
    if text == "-Infinity":
        return float("-inf")
    return float(text)


def power_dataset_to_csv(observations: Sequence[PowerObservation]) -> str:
    """Render Experiment-3/4 observations as CSV text.

    Columns: workload, freq_hz, voltage, threads, power_w, then one column
    per PMC event present in every observation (``event_0xNN``).
    """
    if not observations:
        raise ValueError("no observations")
    events = sorted(set.intersection(*(set(o.rates) for o in observations)))
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["workload", "freq_hz", "voltage", "threads", "power_w"]
        + [f"event_0x{e:02X}" for e in events]
    )
    for obs in observations:
        writer.writerow(
            [obs.workload, f"{obs.freq_hz:.0f}", f"{obs.voltage:.4f}",
             obs.threads, _format_float(obs.power_w, ".6f")]
            + [_format_float(obs.rates[e], ".6g") for e in events]
        )
    return buffer.getvalue()


def power_dataset_from_csv(text: str) -> list[PowerObservation]:
    """Parse CSV produced by :func:`power_dataset_to_csv`.

    Raises:
        ValueError: On missing required columns.
    """
    reader = csv.DictReader(io.StringIO(text))
    required = {"workload", "freq_hz", "voltage", "threads", "power_w"}
    if reader.fieldnames is None or not required <= set(reader.fieldnames):
        raise ValueError(f"CSV must contain columns {sorted(required)}")
    event_columns = [
        name for name in reader.fieldnames if name.startswith("event_0x")
    ]
    observations = []
    for row in reader:
        rates = {
            int(name.removeprefix("event_0x"), 16): _parse_float(row[name])
            for name in event_columns
        }
        observations.append(
            PowerObservation(
                workload=row["workload"],
                freq_hz=float(row["freq_hz"]),
                voltage=float(row["voltage"]),
                rates=rates,
                power_w=_parse_float(row["power_w"]),
                threads=int(row["threads"]),
            )
        )
    return observations


def validation_to_csv(dataset: ValidationDataset) -> str:
    """The paired time observations as CSV (workload, freq, hw, gem5, PE)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["workload", "suite", "threads", "freq_hz",
         "hw_time_s", "gem5_time_s", "time_percentage_error"]
    )
    for run in dataset.runs:
        writer.writerow(
            [run.workload, run.suite, run.threads, f"{run.freq_hz:.0f}",
             f"{run.hw_time:.6f}", f"{run.gem5_time:.6f}",
             f"{run.time_percentage_error:.3f}"]
        )
    return buffer.getvalue()
