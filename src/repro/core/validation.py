"""Experiment collation and execution-time error analysis.

Implements boxes (a)-(f) of the paper's Fig. 1: run the workloads on the
hardware platform (Experiment 1) and on the gem5 model (Experiment 2) across
the DVFS sweep, pair the observations, and compute the execution-time error
statistics that headline Section IV:

* per-workload signed percentage error (Fig. 3),
* MPE/MAPE per frequency and aggregated,
* matrices of HW PMC rates and gem5 statistic rates for the downstream
  cluster/correlation/regression analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.stats.metrics import mape, mpe, percentage_errors
from repro.sim.dvfs import experiment_frequencies
from repro.sim.executor import SimJobError
from repro.sim.gem5 import Gem5Simulation, Gem5Stats
from repro.sim.platform import HardwarePlatform, HwMeasurement
from repro.workloads.profile import WorkloadProfile

#: Failure classes dataset collection survives by recording a gap: a job
#: that exhausted the executor's retries, an I/O error from a flaky board
#: or filesystem, and timeouts.  Programming errors still propagate.
RECOVERABLE_ERRORS = (SimJobError, OSError, TimeoutError)


@dataclass(frozen=True)
class DegradedFit:
    """One analysis stage that degraded instead of crashing.

    Raised data quality problems (all-NaN event rates, collinear designs,
    single-workload campaigns) no longer abort the analysis layer; each
    stage records what it dropped or simplified, and the report renders
    the collected notes alongside :class:`CollectionHealth`.

    Attributes:
        stage: The analysis product that degraded (e.g. ``"regression[hw]"``
            or ``"power-model"``).
        detail: Human-readable description of the degradation.
    """

    stage: str
    detail: str


@dataclass(frozen=True)
class CollectionFailure:
    """One (workload, frequency) point that could not be collected."""

    workload: str
    freq_hz: float
    stage: str  # "hardware" | "gem5"
    error: str


@dataclass
class CollectionHealth:
    """Gap accounting for one (possibly degraded) collection campaign.

    Threaded through :func:`collect_validation_dataset` /
    :func:`collect_power_dataset` into :class:`ValidationDataset` and the
    full report: analyses proceed on the surviving rows, and this record
    says exactly what is missing and why.

    Attributes:
        attempted: (workload, frequency) points attempted.
        succeeded: Points collected successfully.
        failures: One entry per failed point.
        power_samples_lost: Power-sensor readings dropped or NaN across the
            campaign (the rows survive with a degraded power mean).
        guard_events: Guardrail interventions
            (:class:`~repro.sim.guard.GuardEvent`) absorbed from the
            executor: engine fallbacks, quarantined decodes, circuit-broken
            poison jobs, watchdog budget breaches.  Every surviving row is
            still bit-identical — these record *how* it survived.
    """

    attempted: int = 0
    succeeded: int = 0
    failures: list[CollectionFailure] = field(default_factory=list)
    power_samples_lost: int = 0
    guard_events: list = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def degraded(self) -> bool:
        """True when anything at all was lost or guarded during collection."""
        return (
            bool(self.failures)
            or self.power_samples_lost > 0
            or bool(self.guard_events)
        )

    def record_failure(
        self, workload: str, freq_hz: float, stage: str, error: Exception
    ) -> None:
        self.failures.append(
            CollectionFailure(
                workload=workload,
                freq_hz=float(freq_hz),
                stage=stage,
                error=f"{type(error).__name__}: {error}",
            )
        )

    def record_guard_event(self, event) -> None:
        """Append one :class:`~repro.sim.guard.GuardEvent`."""
        self.guard_events.append(event)

    def absorb_guard_events(self, events: Iterable) -> None:
        """Append guard events recorded by a collection phase.

        Each collection phase snapshots the executor's
        :attr:`~repro.sim.guard.GuardRail.events` length when it starts
        and passes only the suffix its own campaign added, so a shared
        health record spanning several phases (validation + power) never
        double-counts — including after a resume, where the restored
        record already holds earlier phases' events but the fresh
        executor's list starts empty.
        """
        self.guard_events.extend(events)

    def clone(self) -> CollectionHealth:
        """An independent snapshot (checkpoint payloads must not alias)."""
        dup = CollectionHealth()
        dup.adopt(self)
        return dup

    def adopt(self, other: CollectionHealth) -> None:
        """Overwrite this record in place with another's contents.

        Restoring a checkpointed dataset must also restore the gap
        accounting of the original campaign; mutating in place keeps every
        existing reference to the facade's shared health object valid.
        """
        self.attempted = other.attempted
        self.succeeded = other.succeeded
        self.failures = list(other.failures)
        self.power_samples_lost = other.power_samples_lost
        self.guard_events = list(other.guard_events)

    def summary(self) -> str:
        """One-line human summary for logs and error messages."""
        line = f"{self.succeeded}/{self.attempted} points collected"
        if self.failures:
            line += f", {self.failed} failed"
        if self.power_samples_lost:
            line += f", {self.power_samples_lost} power samples lost"
        if self.guard_events:
            line += f", {len(self.guard_events)} guard intervention(s)"
        return line


@dataclass(frozen=True)
class WorkloadRun:
    """One paired (hardware, gem5) observation of a workload at one OPP."""

    workload: str
    suite: str
    threads: int
    freq_hz: float
    hw: HwMeasurement
    gem5: Gem5Stats

    @property
    def hw_time(self) -> float:
        return self.hw.time_seconds

    @property
    def gem5_time(self) -> float:
        return self.gem5.sim_seconds

    @property
    def time_percentage_error(self) -> float:
        """Signed error, paper convention: negative = gem5 overestimates
        execution time (underestimates performance)."""
        return float(
            percentage_errors([self.hw_time], [self.gem5_time])[0]
        )


@dataclass
class ValidationDataset:
    """All paired runs for one (core cluster, gem5 model) combination.

    Attributes:
        core: ``"A7"`` or ``"A15"``.
        gem5_model: Name of the gem5 machine configuration validated.
        runs: All paired observations, workload-major then frequency.
        workloads: Workload names in catalog order (every *requested*
            workload; a degraded collection may have gaps in ``runs``).
        frequencies: The DVFS sweep, in Hz.
        health: Gap accounting from collection (``None`` for datasets
            assembled by hand).
    """

    core: str
    gem5_model: str
    runs: list[WorkloadRun]
    workloads: tuple[str, ...]
    frequencies: tuple[float, ...]
    health: CollectionHealth | None = None
    _index: dict[tuple[str, float], WorkloadRun] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {(r.workload, r.freq_hz): r for r in self.runs}

    def run(self, workload: str, freq_hz: float) -> WorkloadRun:
        """Look up one paired run.

        Raises:
            KeyError: If the (workload, frequency) pair was not collected.
        """
        return self._index[(workload, freq_hz)]

    def runs_at(self, freq_hz: float) -> list[WorkloadRun]:
        """All *collected* runs at one frequency, in workload order.

        Workloads that failed to collect (see :attr:`health`) are simply
        absent, so downstream analyses operate on the surviving rows.
        """
        return [
            self._index[(w, freq_hz)]
            for w in self.workloads
            if (w, freq_hz) in self._index
        ]

    # ----------------------------------------------------------- error stats
    def errors_at(self, freq_hz: float) -> np.ndarray:
        """Per-workload signed time percentage errors at one frequency."""
        return np.array([r.time_percentage_error for r in self.runs_at(freq_hz)])

    def time_mpe(self, freq_hz: float | None = None) -> float:
        """MPE of execution time at one frequency (or over the whole sweep)."""
        runs = self.runs if freq_hz is None else self.runs_at(freq_hz)
        return mpe([r.hw_time for r in runs], [r.gem5_time for r in runs])

    def time_mape(self, freq_hz: float | None = None) -> float:
        """MAPE of execution time at one frequency (or the whole sweep)."""
        runs = self.runs if freq_hz is None else self.runs_at(freq_hz)
        return mape([r.hw_time for r in runs], [r.gem5_time for r in runs])

    def suite_time_stats(self, suite_prefixes: Sequence[str]) -> tuple[float, float]:
        """(MAPE, MPE) restricted to workloads whose suite matches."""
        runs = [r for r in self.runs if r.suite in suite_prefixes]
        if not runs:
            raise ValueError(f"no runs for suites {suite_prefixes}")
        hw_times = [r.hw_time for r in runs]
        gem5_times = [r.gem5_time for r in runs]
        return mape(hw_times, gem5_times), mpe(hw_times, gem5_times)

    # --------------------------------------------------------- data matrices
    def pmc_rate_matrix(
        self, freq_hz: float, events: Sequence[int] | None = None
    ) -> tuple[np.ndarray, list[int]]:
        """(workloads x events) matrix of HW PMC rates at one frequency.

        Events default to every PMC present in all measurements, sorted by
        event number.  Returns the matrix and the event-number column order.
        """
        runs = self.runs_at(freq_hz)
        if events is None:
            common: set[int] = set(runs[0].hw.pmc)
            for run in runs[1:]:
                common &= set(run.hw.pmc)
            events = sorted(common)
        events = list(events)
        matrix = np.array(
            [[run.hw.pmc[e] / run.hw_time for e in events] for run in runs]
        )
        return matrix, events

    def pmc_total_matrix(
        self, freq_hz: float, events: Sequence[int] | None = None
    ) -> tuple[np.ndarray, list[int]]:
        """(workloads x events) matrix of HW PMC totals at one frequency."""
        runs = self.runs_at(freq_hz)
        if events is None:
            common: set[int] = set(runs[0].hw.pmc)
            for run in runs[1:]:
                common &= set(run.hw.pmc)
            events = sorted(common)
        events = list(events)
        matrix = np.array([[run.hw.pmc[e] for e in events] for run in runs])
        return matrix, events

    def gem5_rate_matrix(
        self, freq_hz: float, stats: Sequence[str] | None = None
    ) -> tuple[np.ndarray, list[str]]:
        """(workloads x stats) matrix of gem5 statistic rates."""
        runs = self.runs_at(freq_hz)
        if stats is None:
            stats = sorted(runs[0].gem5.stats)
        stats = list(stats)
        matrix = np.array([[run.gem5.rate(s) for s in stats] for run in runs])
        return matrix, stats


ProgressCallback = Callable[[str, float, int, int], None]


def _resolve_executor(executor, jobs: int | None, *engines):
    """Pick the executor for a collection run.

    Precedence: an explicit ``executor``; else a fresh one for an explicit
    ``jobs`` count; else the first executor already attached to an engine
    (so ``GemStone``-constructed engines batch automatically).
    """
    if executor is not None:
        return executor
    if jobs is not None:
        from repro.sim.executor import SimExecutor

        return SimExecutor(jobs=jobs)
    for engine in engines:
        attached = getattr(engine, "executor", None)
        if attached is not None:
            return attached
    return None


def collect_validation_dataset(
    platform: HardwarePlatform,
    gem5: Gem5Simulation,
    workloads: Iterable[WorkloadProfile],
    frequencies: Sequence[float] | None = None,
    with_power: bool = True,
    progress: ProgressCallback | None = None,
    executor=None,
    jobs: int | None = None,
    health: CollectionHealth | None = None,
) -> ValidationDataset:
    """Run Experiments 1 and 2 and collate them (Fig. 1 boxes a, b, f).

    Collection degrades gracefully: a (workload, frequency) point whose
    hardware or gem5 run fails with a :data:`RECOVERABLE_ERRORS` class
    (a permanently failed simulation job, board/filesystem I/O errors,
    timeouts) is recorded in the dataset's :class:`CollectionHealth` and
    skipped, so every surviving row — bit-identical to a fault-free run —
    is still analysed instead of the whole campaign aborting.

    Args:
        platform: The hardware reference platform.
        gem5: The gem5 model simulation to validate.
        workloads: Workload profiles to run on both.
        frequencies: DVFS sweep; defaults to the paper's per-cluster sweep.
        with_power: Also capture power on the hardware (needed later by the
            energy analysis; disable to speed up pure timing studies).
        progress: Optional callback ``(workload, freq, i, total)``.
        executor: Optional :class:`~repro.sim.executor.SimExecutor`; every
            missing (workload x machine) simulation is submitted up front
            in one batch instead of being computed lazily per run.
        jobs: Shorthand for ``executor``: builds a ``SimExecutor(jobs=jobs)``
            when no explicit executor is given.  ``jobs`` > 1 fans the batch
            across worker processes; results are bit-identical either way.
        health: Optional pre-existing :class:`CollectionHealth` to append
            to (so one record can span validation + power collection).

    Raises:
        ValueError: If the platform and model are different core types.
        RuntimeError: If *every* point failed — there is nothing to analyse.
    """
    if platform.core != gem5.machine.core:
        raise ValueError(
            f"platform core {platform.core} != gem5 model core {gem5.machine.core}"
        )
    workload_list = list(workloads)
    if not workload_list:
        raise ValueError("no workloads given")
    if frequencies is None:
        frequencies = experiment_frequencies(platform.core)
    frequencies = tuple(float(f) for f in frequencies)

    executor = _resolve_executor(executor, jobs, platform, gem5)
    guard_seen = (
        len(executor.guard.events)
        if executor is not None and getattr(executor, "guard", None) is not None
        else 0
    )
    if executor is not None:
        from repro.sim.executor import prime_engines

        # Frequencies only rescale a simulation's counts; the simulation
        # itself is per-(workload, machine), so one up-front fan-out covers
        # the whole sweep for both engines.
        prime_engines(executor, (platform, gem5), workload_list)

    if health is None:
        health = CollectionHealth()
    runs: list[WorkloadRun] = []
    total = len(workload_list) * len(frequencies)
    done = 0
    for profile in workload_list:
        for freq in frequencies:
            health.attempted += 1
            stage = "hardware"
            try:
                hw = platform.characterize(profile, freq, with_power=with_power)
                stage = "gem5"
                model = gem5.run(profile, freq)
            except RECOVERABLE_ERRORS as exc:
                health.record_failure(profile.name, freq, stage, exc)
            else:
                health.succeeded += 1
                health.power_samples_lost += hw.power_samples_lost
                runs.append(
                    WorkloadRun(
                        workload=profile.name,
                        suite=profile.suite,
                        threads=profile.threads,
                        freq_hz=freq,
                        hw=hw,
                        gem5=model,
                    )
                )
            done += 1
            if progress is not None:
                progress(profile.name, freq, done, total)

    if executor is not None and getattr(executor, "guard", None) is not None:
        health.absorb_guard_events(executor.guard.events[guard_seen:])
    if not runs:
        raise RuntimeError(
            f"validation collection failed completely ({health.summary()}); "
            f"first failure: {health.failures[0].workload} @ "
            f"{health.failures[0].freq_hz / 1e6:.0f} MHz "
            f"[{health.failures[0].stage}] {health.failures[0].error}"
        )
    return ValidationDataset(
        core=platform.core,
        gem5_model=gem5.machine.name,
        runs=runs,
        workloads=tuple(p.name for p in workload_list),
        frequencies=frequencies,
        health=health,
    )
