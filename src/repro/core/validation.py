"""Experiment collation and execution-time error analysis.

Implements boxes (a)-(f) of the paper's Fig. 1: run the workloads on the
hardware platform (Experiment 1) and on the gem5 model (Experiment 2) across
the DVFS sweep, pair the observations, and compute the execution-time error
statistics that headline Section IV:

* per-workload signed percentage error (Fig. 3),
* MPE/MAPE per frequency and aggregated,
* matrices of HW PMC rates and gem5 statistic rates for the downstream
  cluster/correlation/regression analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.stats.metrics import mape, mpe, percentage_errors
from repro.sim.dvfs import experiment_frequencies
from repro.sim.gem5 import Gem5Simulation, Gem5Stats
from repro.sim.platform import HardwarePlatform, HwMeasurement
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class WorkloadRun:
    """One paired (hardware, gem5) observation of a workload at one OPP."""

    workload: str
    suite: str
    threads: int
    freq_hz: float
    hw: HwMeasurement
    gem5: Gem5Stats

    @property
    def hw_time(self) -> float:
        return self.hw.time_seconds

    @property
    def gem5_time(self) -> float:
        return self.gem5.sim_seconds

    @property
    def time_percentage_error(self) -> float:
        """Signed error, paper convention: negative = gem5 overestimates
        execution time (underestimates performance)."""
        return float(
            percentage_errors([self.hw_time], [self.gem5_time])[0]
        )


@dataclass
class ValidationDataset:
    """All paired runs for one (core cluster, gem5 model) combination.

    Attributes:
        core: ``"A7"`` or ``"A15"``.
        gem5_model: Name of the gem5 machine configuration validated.
        runs: All paired observations, workload-major then frequency.
        workloads: Workload names in catalog order.
        frequencies: The DVFS sweep, in Hz.
    """

    core: str
    gem5_model: str
    runs: list[WorkloadRun]
    workloads: tuple[str, ...]
    frequencies: tuple[float, ...]
    _index: dict[tuple[str, float], WorkloadRun] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index:
            self._index = {(r.workload, r.freq_hz): r for r in self.runs}

    def run(self, workload: str, freq_hz: float) -> WorkloadRun:
        """Look up one paired run.

        Raises:
            KeyError: If the (workload, frequency) pair was not collected.
        """
        return self._index[(workload, freq_hz)]

    def runs_at(self, freq_hz: float) -> list[WorkloadRun]:
        """All runs at one frequency, in workload order."""
        return [self._index[(w, freq_hz)] for w in self.workloads]

    # ----------------------------------------------------------- error stats
    def errors_at(self, freq_hz: float) -> np.ndarray:
        """Per-workload signed time percentage errors at one frequency."""
        return np.array([r.time_percentage_error for r in self.runs_at(freq_hz)])

    def time_mpe(self, freq_hz: float | None = None) -> float:
        """MPE of execution time at one frequency (or over the whole sweep)."""
        runs = self.runs if freq_hz is None else self.runs_at(freq_hz)
        return mpe([r.hw_time for r in runs], [r.gem5_time for r in runs])

    def time_mape(self, freq_hz: float | None = None) -> float:
        """MAPE of execution time at one frequency (or the whole sweep)."""
        runs = self.runs if freq_hz is None else self.runs_at(freq_hz)
        return mape([r.hw_time for r in runs], [r.gem5_time for r in runs])

    def suite_time_stats(self, suite_prefixes: Sequence[str]) -> tuple[float, float]:
        """(MAPE, MPE) restricted to workloads whose suite matches."""
        runs = [r for r in self.runs if r.suite in suite_prefixes]
        if not runs:
            raise ValueError(f"no runs for suites {suite_prefixes}")
        hw_times = [r.hw_time for r in runs]
        gem5_times = [r.gem5_time for r in runs]
        return mape(hw_times, gem5_times), mpe(hw_times, gem5_times)

    # --------------------------------------------------------- data matrices
    def pmc_rate_matrix(
        self, freq_hz: float, events: Sequence[int] | None = None
    ) -> tuple[np.ndarray, list[int]]:
        """(workloads x events) matrix of HW PMC rates at one frequency.

        Events default to every PMC present in all measurements, sorted by
        event number.  Returns the matrix and the event-number column order.
        """
        runs = self.runs_at(freq_hz)
        if events is None:
            common: set[int] = set(runs[0].hw.pmc)
            for run in runs[1:]:
                common &= set(run.hw.pmc)
            events = sorted(common)
        events = list(events)
        matrix = np.array(
            [[run.hw.pmc[e] / run.hw_time for e in events] for run in runs]
        )
        return matrix, events

    def pmc_total_matrix(
        self, freq_hz: float, events: Sequence[int] | None = None
    ) -> tuple[np.ndarray, list[int]]:
        """(workloads x events) matrix of HW PMC totals at one frequency."""
        runs = self.runs_at(freq_hz)
        if events is None:
            common: set[int] = set(runs[0].hw.pmc)
            for run in runs[1:]:
                common &= set(run.hw.pmc)
            events = sorted(common)
        events = list(events)
        matrix = np.array([[run.hw.pmc[e] for e in events] for run in runs])
        return matrix, events

    def gem5_rate_matrix(
        self, freq_hz: float, stats: Sequence[str] | None = None
    ) -> tuple[np.ndarray, list[str]]:
        """(workloads x stats) matrix of gem5 statistic rates."""
        runs = self.runs_at(freq_hz)
        if stats is None:
            stats = sorted(runs[0].gem5.stats)
        stats = list(stats)
        matrix = np.array([[run.gem5.rate(s) for s in stats] for run in runs])
        return matrix, stats


ProgressCallback = Callable[[str, float, int, int], None]


def _resolve_executor(executor, jobs: int | None, *engines):
    """Pick the executor for a collection run.

    Precedence: an explicit ``executor``; else a fresh one for an explicit
    ``jobs`` count; else the first executor already attached to an engine
    (so ``GemStone``-constructed engines batch automatically).
    """
    if executor is not None:
        return executor
    if jobs is not None:
        from repro.sim.executor import SimExecutor

        return SimExecutor(jobs=jobs)
    for engine in engines:
        attached = getattr(engine, "executor", None)
        if attached is not None:
            return attached
    return None


def collect_validation_dataset(
    platform: HardwarePlatform,
    gem5: Gem5Simulation,
    workloads: Iterable[WorkloadProfile],
    frequencies: Sequence[float] | None = None,
    with_power: bool = True,
    progress: ProgressCallback | None = None,
    executor=None,
    jobs: int | None = None,
) -> ValidationDataset:
    """Run Experiments 1 and 2 and collate them (Fig. 1 boxes a, b, f).

    Args:
        platform: The hardware reference platform.
        gem5: The gem5 model simulation to validate.
        workloads: Workload profiles to run on both.
        frequencies: DVFS sweep; defaults to the paper's per-cluster sweep.
        with_power: Also capture power on the hardware (needed later by the
            energy analysis; disable to speed up pure timing studies).
        progress: Optional callback ``(workload, freq, i, total)``.
        executor: Optional :class:`~repro.sim.executor.SimExecutor`; every
            missing (workload x machine) simulation is submitted up front
            in one batch instead of being computed lazily per run.
        jobs: Shorthand for ``executor``: builds a ``SimExecutor(jobs=jobs)``
            when no explicit executor is given.  ``jobs`` > 1 fans the batch
            across worker processes; results are bit-identical either way.

    Raises:
        ValueError: If the platform and model are different core types.
    """
    if platform.core != gem5.machine.core:
        raise ValueError(
            f"platform core {platform.core} != gem5 model core {gem5.machine.core}"
        )
    workload_list = list(workloads)
    if not workload_list:
        raise ValueError("no workloads given")
    if frequencies is None:
        frequencies = experiment_frequencies(platform.core)
    frequencies = tuple(float(f) for f in frequencies)

    executor = _resolve_executor(executor, jobs, platform, gem5)
    if executor is not None:
        from repro.sim.executor import prime_engines

        # Frequencies only rescale a simulation's counts; the simulation
        # itself is per-(workload, machine), so one up-front fan-out covers
        # the whole sweep for both engines.
        prime_engines(executor, (platform, gem5), workload_list)

    runs: list[WorkloadRun] = []
    total = len(workload_list) * len(frequencies)
    done = 0
    for profile in workload_list:
        for freq in frequencies:
            hw = platform.characterize(profile, freq, with_power=with_power)
            model = gem5.run(profile, freq)
            runs.append(
                WorkloadRun(
                    workload=profile.name,
                    suite=profile.suite,
                    threads=profile.threads,
                    freq_hz=freq,
                    hw=hw,
                    gem5=model,
                )
            )
            done += 1
            if progress is not None:
                progress(profile.name, freq, done, total)

    return ValidationDataset(
        core=platform.core,
        gem5_model=gem5.machine.name,
        runs=runs,
        workloads=tuple(p.name for p in workload_list),
        frequencies=frequencies,
    )
