"""GemStone core: the paper's contribution.

This package implements the methodology of Sections IV-VI and the GemStone
tool that automates it:

* :mod:`repro.core.stats` — the statistical machinery (metrics, OLS,
  hierarchical clustering, correlation, stepwise regression).
* :mod:`repro.core.validation` — Experiment collation and execution-time
  error analysis (Fig. 3, the headline MPE/MAPE numbers).
* :mod:`repro.core.error_id` — source-of-error identification through
  cluster/correlation analysis of HW PMCs and gem5 events (Figs. 3, 5;
  Sections IV-B/C/D).
* :mod:`repro.core.event_compare` — matched-event comparison (Fig. 6).
* :mod:`repro.core.power_model` — Powmon-style empirical power modelling
  optimised for gem5 events (Section V).
* :mod:`repro.core.energy` — power/energy error and DVFS scaling analysis
  (Figs. 7, 8; Section VI).
* :mod:`repro.core.pipeline` — the :class:`~repro.core.pipeline.GemStone`
  facade orchestrating characterise -> simulate -> analyse -> report.
* :mod:`repro.core.report` — text/CSV rendering of every table and figure.
"""

from repro.core.pipeline import GemStone, GemStoneConfig

__all__ = ["GemStone", "GemStoneConfig"]
