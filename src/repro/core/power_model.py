"""Empirical PMC-based power modelling, optimised for gem5 events (Section V).

Reimplements the Powmon methodology of [8] as the paper uses it:

1. **Data collection** (Experiments 3 and 4): power and PMC rates for every
   workload at every OPP, via the hardware platform's sensors.
2. **Event selection**: greedy forward selection over candidate event
   *rates*, maximising adjusted R^2 under a VIF restraint, with optional
   *restraint pools* that exclude events unavailable or unreliable in gem5
   (unaligned accesses, 0x15 L1D write-backs, the misclassified 0x75).
   Difference terms such as ``0x1B-0x73`` are offered to reduce
   multicollinearity, as the paper does.
3. **Model formulation**: one linear model per OPP (applied with a
   voltage/frequency lookup), plus pooled quality statistics: MAPE, SER,
   adjusted R^2 and mean VIF — the numbers Table-style quoted in Section V
   (A15: 3.28 %, 0.049 W, 0.996, VIF ~6).
4. **Application** (Fig. 2): the same model evaluated from HW PMC rates or
   from gem5 statistics via the event-matching equations, enabling the
   Section VI power/energy comparison; plus export of runtime power
   equations in gem5 statistic names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.stats.metrics import mape, mpe
from repro.core.stats.ols import OlsResult, fit_ols, variance_inflation_factors
from repro.core.stats.stepwise import forward_stepwise
from repro.events.armv7_pmu import event_name, events_for_core
from repro.events.matching import (
    UNAVAILABLE_IN_GEM5,
    UNRELIABLE_IN_GEM5,
    EventMatch,
    default_event_matches,
)
from repro.sim.dvfs import OppTable, opp_table_for
from repro.sim.gem5 import Gem5Stats
from repro.sim.platform import HardwarePlatform, HwMeasurement
from repro.workloads.profile import WorkloadProfile


@dataclass(frozen=True)
class EventTerm:
    """One model regressor: a PMC event rate, optionally minus another.

    The paper subtracts 0x73 from 0x1B "to reduce multicollinearity"; that
    difference is representable as ``EventTerm(0x1B, 0x73)``.
    """

    positive: int
    negative: int | None = None

    @property
    def name(self) -> str:
        if self.negative is None:
            return f"0x{self.positive:02X}"
        return f"0x{self.positive:02X}-0x{self.negative:02X}"

    @property
    def pretty_name(self) -> str:
        if self.negative is None:
            return event_name(self.positive)
        return f"{event_name(self.positive)} - {event_name(self.negative)}"

    def events(self) -> tuple[int, ...]:
        return (self.positive,) if self.negative is None else (self.positive, self.negative)

    def rate(self, rates: Mapping[int, float]) -> float:
        """Evaluate the term from a per-event rate mapping.

        Raises:
            KeyError: If a referenced event is missing.
        """
        value = rates[self.positive]
        if self.negative is not None:
            value -= rates[self.negative]
        return value


@dataclass(frozen=True)
class PowerObservation:
    """One (workload, OPP) power-characterisation point (Experiments 3/4)."""

    workload: str
    freq_hz: float
    voltage: float
    rates: dict[int, float]
    power_w: float
    threads: int


def collect_power_dataset(
    platform: HardwarePlatform,
    workloads: Iterable[WorkloadProfile],
    frequencies: Sequence[float] | None = None,
    executor=None,
    jobs: int | None = None,
    health=None,
) -> list[PowerObservation]:
    """Run the power-characterisation experiments over workloads x OPPs.

    With an ``executor`` (or a ``jobs`` count, or an executor already
    attached to the platform) every missing workload simulation is fanned
    out in one up-front batch; the per-OPP characterisation loop then runs
    entirely against memoised results.

    Collection degrades gracefully: a (workload, OPP) point that fails with
    a recoverable error (permanently failed simulation job, I/O error,
    timeout) is recorded in ``health`` — an optional
    :class:`~repro.core.validation.CollectionHealth` — and skipped, as are
    points whose power sensor lost every sample (NaN power); the model is
    fitted on the surviving observations with explicit gap accounting.
    """
    if frequencies is None:
        from repro.sim.dvfs import experiment_frequencies

        frequencies = experiment_frequencies(platform.core)
    workloads = list(workloads)
    if not workloads:
        raise ValueError("no workloads given")
    from repro.core.validation import (
        RECOVERABLE_ERRORS,
        CollectionHealth,
        _resolve_executor,
    )

    if health is None:
        health = CollectionHealth()
    executor = _resolve_executor(executor, jobs, platform)
    guard_seen = (
        len(executor.guard.events)
        if executor is not None and getattr(executor, "guard", None) is not None
        else 0
    )
    if executor is not None:
        from repro.sim.executor import prime_engines

        prime_engines(executor, (platform,), workloads)
    observations = []
    for profile in workloads:
        for freq in frequencies:
            health.attempted += 1
            try:
                m = platform.characterize(profile, freq, with_power=True)
            except RECOVERABLE_ERRORS as exc:
                health.record_failure(profile.name, freq, "hardware", exc)
                continue
            health.power_samples_lost += m.power_samples_lost
            if not np.isfinite(m.power_w):
                health.record_failure(
                    profile.name,
                    freq,
                    "hardware",
                    ValueError("power sensor lost every sample in the window"),
                )
                continue
            health.succeeded += 1
            rates = {e: total / m.time_seconds for e, total in m.pmc.items()}
            observations.append(
                PowerObservation(
                    workload=profile.name,
                    freq_hz=float(freq),
                    voltage=platform.opps.voltage(freq),
                    rates=rates,
                    power_w=m.power_w,
                    threads=profile.threads,
                )
            )
    if executor is not None and getattr(executor, "guard", None) is not None:
        health.absorb_guard_events(executor.guard.events[guard_seen:])
    if not observations:
        raise RuntimeError(
            f"power collection failed completely ({health.summary()})"
        )
    return observations


@dataclass(frozen=True)
class PowerModelQuality:
    """Pooled validation statistics of a fitted power model."""

    mape: float
    mpe: float
    ser: float
    adjusted_r2: float
    mean_vif: float
    max_ape: float
    worst_observation: str
    n_observations: int


@dataclass(frozen=True)
class PowerEstimate:
    """A power prediction with its per-component breakdown (Fig. 7 bars)."""

    power_w: float
    components: dict[str, float]


@dataclass
class PowerModel:
    """A per-OPP linear power model over PMC event-rate terms.

    Attributes:
        core: Target cluster (``"A7"`` or ``"A15"``).
        terms: The selected event terms, in selection order.
        per_opp: Fitted OLS model per frequency (Hz, rounded key).  A
            degraded per-OPP fit may carry *fewer* regressors than
            ``terms`` (dropped as constant/collinear on that OPP's
            surviving observations); predictions look coefficients up by
            name and treat a dropped term's contribution as zero.
        quality: Pooled validation statistics.
        degraded: Notes recorded when selection or fitting degraded
            (skipped candidates, intercept-only fallbacks, per-OPP term
            drops); empty for a clean model.
    """

    core: str
    terms: tuple[EventTerm, ...]
    per_opp: dict[int, OlsResult]
    quality: PowerModelQuality | None = None
    degraded: tuple[str, ...] = ()

    def _model_for(self, freq_hz: float) -> OlsResult:
        key = round(freq_hz)
        if key not in self.per_opp:
            supported = sorted(self.per_opp)
            raise KeyError(
                f"no model fitted at {freq_hz / 1e6:.0f} MHz; "
                f"fitted OPPs: {[k / 1e6 for k in supported]} MHz"
            )
        return self.per_opp[key]

    def predict(self, rates: Mapping[int, float], freq_hz: float) -> float:
        """Predicted cluster power from event rates at one OPP."""
        model = self._model_for(freq_hz)
        if len(model.names) == len(self.terms):
            x = np.array([term.rate(rates) for term in self.terms])
            return float(model.predict(x)[0])
        # Degraded per-OPP fit: some terms were dropped; evaluate the
        # surviving coefficients by name.
        total = model.intercept
        for term in self.terms:
            if term.name in model.names:
                total += model.coefficient(term.name) * term.rate(rates)
        return float(total)

    def predict_components(
        self, rates: Mapping[int, float], freq_hz: float
    ) -> PowerEstimate:
        """Prediction split into intercept + per-term contributions.

        Terms dropped by a degraded per-OPP fit are reported with a zero
        contribution so the component breakdown keeps a stable shape.
        """
        model = self._model_for(freq_hz)
        components = {"intercept": model.intercept}
        total = model.intercept
        for term in self.terms:
            if term.name in model.names:
                watts = model.coefficient(term.name) * term.rate(rates)
            else:
                watts = 0.0
            components[term.name] = watts
            total += watts
        return PowerEstimate(power_w=total, components=components)

    def required_events(self) -> list[int]:
        """All PMC events the model needs as inputs."""
        events: list[int] = []
        for term in self.terms:
            for event in term.events():
                if event not in events:
                    events.append(event)
        return events

    def gem5_stat_weights(
        self, matches: dict[int, EventMatch] | None = None
    ) -> dict[int, dict[str, float]]:
        """Per-OPP flat weights over gem5 stat rates.

        Every model term is a linear combination of PMC events, and every
        PMC event matches a linear combination of gem5 stats; expanding both
        yields one weight per gem5 stat — the canonical form of the runtime
        equations.

        Raises:
            KeyError: If a model event has no gem5 equivalent.
        """
        if matches is None:
            matches = default_event_matches()
        weights_per_opp: dict[int, dict[str, float]] = {}
        for key, fit in self.per_opp.items():
            weights: dict[str, float] = {}
            for term in self.terms:
                if term.name not in fit.names:
                    continue  # dropped by a degraded per-OPP fit
                coef = fit.coefficient(term.name)
                for sign, event in zip((1.0, -1.0), term.events()):
                    match = matches.get(event)
                    if match is None:
                        raise KeyError(
                            f"model event {event_name(event)} has no gem5 match"
                        )
                    for stat_coef, stat in match.terms:
                        weights[stat] = weights.get(stat, 0.0) + (
                            float(coef) * sign * stat_coef
                        )
            weights_per_opp[key] = weights
        return weights_per_opp

    def gem5_equations(
        self, matches: dict[int, EventMatch] | None = None
    ) -> str:
        """Runtime power equations in gem5 statistic names (Fig. 2 output).

        One line per OPP, in the flat canonical form::

            power[600MHz] = 0.29 + 2.9e-10*rate(cpu.numCycles) - ...

        This is the text GemStone splices into a gem5 ``MathExprPowerModel``
        so power is computed *during* simulation;
        :func:`repro.core.runtime_power.compile_equations` parses it back.

        Raises:
            KeyError: If a model event has no gem5 equivalent.
        """
        weights_per_opp = self.gem5_stat_weights(matches)
        lines = [f"# {self.core} cluster run-time power model (per OPP)"]
        for key in sorted(weights_per_opp):
            parts = [f"{self.per_opp[key].intercept:.8g}"]
            for stat, weight in sorted(weights_per_opp[key].items()):
                if weight == 0.0:
                    continue
                sign = "-" if weight < 0 else "+"
                parts.append(f"{sign} {abs(weight):.8g}*rate({stat})")
            lines.append(f"power[{key / 1e6:.0f}MHz] = " + " ".join(parts))
        return "\n".join(lines)


def restraint_pool_gem5(core: str) -> set[int]:
    """Events excluded when the model must be gem5-compatible (Section V).

    The pool combines the events the paper names as unavailable in gem5
    (unaligned accesses, exclusives), the ones it measured as badly modelled
    (0x15, 0x43, the misclassified 0x74/0x75), and every catalog event with
    no matching equation at all — an event the application tool could never
    feed from a gem5 stats file.
    """
    matched = set(default_event_matches())
    unmatched = {
        e.number for e in events_for_core(core) if e.number not in matched
    }
    return set(UNAVAILABLE_IN_GEM5) | set(UNRELIABLE_IN_GEM5) | unmatched


class PowerModelBuilder:
    """Builds per-OPP empirical power models from power observations."""

    def __init__(
        self,
        core: str,
        excluded_events: set[int] | frozenset[int] = frozenset(),
        max_terms: int = 7,
        vif_limit: float = 12.0,
        extra_terms: Sequence[EventTerm] | None = None,
    ):
        self.core = core
        self.excluded_events = set(excluded_events)
        self.max_terms = max_terms
        self.vif_limit = vif_limit
        if extra_terms is None:
            extra_terms = (EventTerm(0x1B, 0x73),) if core == "A15" else ()
        self.extra_terms = tuple(extra_terms)

    # ----------------------------------------------------------- event terms
    def candidate_terms(self, observations: Sequence[PowerObservation]) -> list[EventTerm]:
        """All admissible regressor terms given the restraint pool."""
        available = set(observations[0].rates)
        for obs in observations[1:]:
            available &= set(obs.rates)
        allowed = {
            e.number
            for e in events_for_core(self.core)
            if e.number in available and e.number not in self.excluded_events
        }
        terms = [EventTerm(e) for e in sorted(allowed)]
        for extra in self.extra_terms:
            if all(e in allowed or e in available for e in extra.events()):
                terms.append(extra)
        return terms

    # -------------------------------------------------------------- pipeline
    def select_events(
        self, observations: Sequence[PowerObservation]
    ) -> tuple[EventTerm, ...]:
        """Stepwise selection on V^2-normalised power, pooled across OPPs.

        Normalising by V^2 keeps one linear relation across the whole sweep
        (CMOS dynamic power scales with V^2 at fixed activity), letting the
        selection see frequency-driven variance — which is why the cycle
        counter 0x11 emerges as the dominant term, as in the paper.
        """
        selected, _ = self._select_events(observations)
        return selected

    def _select_events(
        self, observations: Sequence[PowerObservation]
    ) -> tuple[tuple[EventTerm, ...], list[str]]:
        """Selection plus the degradation notes the stepwise pass recorded."""
        if not observations:
            raise ValueError("no observations")
        terms = self.candidate_terms(observations)
        y = np.array([obs.power_w / obs.voltage**2 for obs in observations])
        candidates = {
            term.name: np.array([term.rate(obs.rates) for obs in observations])
            for term in terms
        }
        result = forward_stepwise(
            candidates,
            y,
            max_terms=self.max_terms,
            p_value_limit=None,
            use_adjusted_r2=True,
            vif_limit=self.vif_limit,
        )
        by_name = {term.name: term for term in terms}
        notes = [f"event selection: {note}" for note in result.degraded]
        return tuple(by_name[name] for name in result.selected), notes

    def fit(
        self,
        observations: Sequence[PowerObservation],
        terms: Sequence[EventTerm] | None = None,
    ) -> PowerModel:
        """Fit per-OPP models for given (or freshly selected) terms.

        Raises:
            ValueError: If explicitly given ``terms`` is empty.  A *fresh
                selection* that accepts no term instead degrades to an
                intercept-only model per OPP, with a note in the model's
                ``degraded`` record.
        """
        observations = list(observations)
        notes: list[str] = []
        if terms is None:
            terms, notes = self._select_events(observations)
            if not terms:
                notes.append(
                    "event selection accepted no terms; fitted an "
                    "intercept-only power model per OPP"
                )
        else:
            terms = tuple(terms)
            if not terms:
                raise ValueError("no model terms")
        terms = tuple(terms)

        per_opp: dict[int, OlsResult] = {}
        frequencies = sorted({round(obs.freq_hz) for obs in observations})
        for key in frequencies:
            subset = [obs for obs in observations if round(obs.freq_hz) == key]
            x = np.array([[t.rate(obs.rates) for t in terms] for obs in subset])
            x = x.reshape(len(subset), len(terms))
            y = np.array([obs.power_w for obs in subset])
            # Weight by 1/power: the board's workloads span a wide power
            # range (single-threaded micro-kernels to 4-thread PARSEC), and
            # the quality target is *percentage* error.
            fit = fit_ols(
                x, y, names=tuple(t.name for t in terms), weights=1.0 / y
            )
            per_opp[key] = fit
            for note in fit.degraded:
                notes.append(f"OPP {key / 1e6:.0f} MHz: {note}")

        model = PowerModel(
            core=self.core,
            terms=terms,
            per_opp=per_opp,
            degraded=tuple(notes),
        )
        model.quality = validate_power_model(model, observations)
        return model


def validate_power_model(
    model: PowerModel, observations: Sequence[PowerObservation]
) -> PowerModelQuality:
    """Pooled quality statistics of a model over a set of observations."""
    observed = []
    predicted = []
    labels = []
    design_rows = []
    for obs in observations:
        observed.append(obs.power_w)
        predicted.append(model.predict(obs.rates, obs.freq_hz))
        labels.append(f"{obs.workload} @ {obs.freq_hz / 1e6:.0f} MHz")
        design_rows.append([t.rate(obs.rates) for t in model.terms])

    observed_arr = np.array(observed)
    predicted_arr = np.array(predicted)
    apes = np.abs((observed_arr - predicted_arr) / observed_arr) * 100.0
    worst = int(apes.argmax())
    n = len(observed)
    p = len(model.terms)
    residual = observed_arr - predicted_arr
    dof = max(n - p - 1, 1)
    ser = float(np.sqrt((residual**2).sum() / dof))
    ss_tot = float(((observed_arr - observed_arr.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - float((residual**2).sum()) / ss_tot
    adj = 1.0 - (1.0 - r2) * (n - 1) / dof

    design = np.array(design_rows)
    if design.shape[1] >= 2:
        mean_vif = float(np.mean(variance_inflation_factors(design)))
    else:
        mean_vif = float("nan")

    return PowerModelQuality(
        mape=mape(observed_arr, predicted_arr),
        mpe=mpe(observed_arr, predicted_arr),
        ser=ser,
        adjusted_r2=adj,
        mean_vif=mean_vif,
        max_ape=float(apes[worst]),
        worst_observation=labels[worst],
        n_observations=n,
    )


class PowerModelApplication:
    """The Fig. 2 tool: apply one power model to HW data or gem5 stats.

    Power models are applied *after* simulation, so the model or the
    voltage table can change without re-running anything.
    """

    def __init__(
        self,
        model: PowerModel,
        opps: OppTable | None = None,
        matches: dict[int, EventMatch] | None = None,
    ):
        self.model = model
        self.opps = opps if opps is not None else opp_table_for(model.core)
        self.matches = matches if matches is not None else default_event_matches()
        missing = [
            event_name(e)
            for e in model.required_events()
            if e not in self.matches
        ]
        if missing:
            raise ValueError(
                f"power model uses events without gem5 matches: {missing}"
            )

    def apply_to_hw(self, measurement: HwMeasurement) -> PowerEstimate:
        """Estimate power from hardware PMC rates."""
        rates = {
            e: total / measurement.time_seconds for e, total in measurement.pmc.items()
        }
        return self.model.predict_components(rates, measurement.effective_freq_hz)

    def gem5_rates(self, stats: Gem5Stats) -> dict[int, float]:
        """PMC-equivalent rates derived from gem5 statistics."""
        rates: dict[int, float] = {}
        for event in self.model.required_events():
            match = self.matches[event]
            rates[event] = match.evaluate(stats.stats) / stats.sim_seconds
        return rates

    def apply_to_gem5(self, stats: Gem5Stats) -> PowerEstimate:
        """Estimate power from gem5 statistics via the event matching."""
        return self.model.predict_components(self.gem5_rates(stats), stats.freq_hz)
