"""Performance, power and energy evaluation (Section VI, Figs. 7 and 8).

The same empirical power model is applied to the hardware-collected PMC
rates and to the gem5-modelled event rates, and the two estimates compared
(the gem5 estimate is deliberately *not* compared to the sensor reading —
Section VI explains the sensors are unreliable for short runs and
temperature-dependent).  Energy multiplies each estimate by the respective
execution time, which is how a low power error coexists with a large energy
error when the performance model is wrong.

The DVFS analysis normalises performance, power and energy to a base OPP and
contrasts hardware and model scaling (Fig. 8): the paper finds the mean
speedup well modelled but the workload *diversity* of scaling compressed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.error_id import WorkloadClusterAnalysis
from repro.core.power_model import PowerEstimate, PowerModelApplication
from repro.core.stats.metrics import mape, mpe
from repro.core.validation import ValidationDataset


@dataclass(frozen=True)
class PowerEnergyRow:
    """Power/energy estimates for one workload at one OPP, both sources."""

    workload: str
    cluster: int
    freq_hz: float
    hw_power_w: float
    gem5_power_w: float
    hw_energy_j: float
    gem5_energy_j: float
    hw_components: dict[str, float]
    gem5_components: dict[str, float]

    @property
    def power_ape(self) -> float:
        return abs((self.hw_power_w - self.gem5_power_w) / self.hw_power_w) * 100.0

    @property
    def energy_ape(self) -> float:
        return abs((self.hw_energy_j - self.gem5_energy_j) / self.hw_energy_j) * 100.0


@dataclass
class PowerEnergyComparison:
    """Fig. 7: per-cluster power and energy error of the gem5 estimates."""

    core: str
    rows: list[PowerEnergyRow]

    def _pairs(self, attr_hw: str, attr_gem5: str) -> tuple[np.ndarray, np.ndarray]:
        hw = np.array([getattr(r, attr_hw) for r in self.rows])
        gem5 = np.array([getattr(r, attr_gem5) for r in self.rows])
        return hw, gem5

    def power_mpe(self) -> float:
        return mpe(*self._pairs("hw_power_w", "gem5_power_w"))

    def power_mape(self) -> float:
        return mape(*self._pairs("hw_power_w", "gem5_power_w"))

    def energy_mpe(self) -> float:
        return mpe(*self._pairs("hw_energy_j", "gem5_energy_j"))

    def energy_mape(self) -> float:
        return mape(*self._pairs("hw_energy_j", "gem5_energy_j"))

    def cluster_table(self) -> dict[int, dict[str, float]]:
        """Per-cluster power/energy MAPE and sizes (Fig. 7 annotations)."""
        table: dict[int, dict[str, float]] = {}
        clusters = sorted({r.cluster for r in self.rows})
        for cluster in clusters:
            rows = [r for r in self.rows if r.cluster == cluster]
            table[cluster] = {
                "n_workloads": float(len({r.workload for r in rows})),
                "power_mape": float(np.mean([r.power_ape for r in rows])),
                "energy_mape": float(np.mean([r.energy_ape for r in rows])),
            }
        return table

    def mean_components(self, source: str, cluster: int | None = None) -> dict[str, float]:
        """Mean per-component watts (the Fig. 7 stacked bars).

        Args:
            source: ``"hw"`` or ``"gem5"``.
            cluster: Restrict to one workload cluster (None = all).

        Raises:
            ValueError: For an unknown source.
        """
        if source == "hw":
            extract = lambda r: r.hw_components  # noqa: E731
        elif source == "gem5":
            extract = lambda r: r.gem5_components  # noqa: E731
        else:
            raise ValueError(f"unknown source {source!r}")
        rows = [r for r in self.rows if cluster is None or r.cluster == cluster]
        if not rows:
            raise ValueError(f"no rows for cluster {cluster}")
        keys = extract(rows[0]).keys()
        return {
            key: float(np.mean([extract(r)[key] for r in rows])) for key in keys
        }


def compare_power_energy(
    dataset: ValidationDataset,
    application: PowerModelApplication,
    workload_clusters: WorkloadClusterAnalysis,
    frequencies: list[float] | None = None,
) -> PowerEnergyComparison:
    """Apply one power model to both data sources and compare (Fig. 7)."""
    if frequencies is None:
        frequencies = list(dataset.frequencies)
    labels = {
        name: label
        for name, label in zip(
            workload_clusters.clusters.item_names, workload_clusters.clusters.labels
        )
    }
    rows: list[PowerEnergyRow] = []
    for freq in frequencies:
        for run in dataset.runs_at(freq):
            hw_est: PowerEstimate = application.apply_to_hw(run.hw)
            gem5_est: PowerEstimate = application.apply_to_gem5(run.gem5)
            rows.append(
                PowerEnergyRow(
                    workload=run.workload,
                    cluster=labels.get(run.workload, 0),
                    freq_hz=freq,
                    hw_power_w=hw_est.power_w,
                    gem5_power_w=gem5_est.power_w,
                    hw_energy_j=hw_est.power_w * run.hw_time,
                    gem5_energy_j=gem5_est.power_w * run.gem5_time,
                    hw_components=hw_est.components,
                    gem5_components=gem5_est.components,
                )
            )
    return PowerEnergyComparison(core=dataset.core, rows=rows)


@dataclass(frozen=True)
class ScalingRow:
    """Performance/power/energy of one workload at one OPP relative to the
    base OPP, for both the hardware and the model."""

    workload: str
    cluster: int
    freq_hz: float
    hw_speedup: float
    gem5_speedup: float
    hw_power_ratio: float
    gem5_power_ratio: float
    hw_energy_ratio: float
    gem5_energy_ratio: float


@dataclass
class DvfsScaling:
    """Fig. 8: scaling normalised to the lowest frequency."""

    core: str
    base_freq_hz: float
    rows: list[ScalingRow]

    def at(self, freq_hz: float) -> list[ScalingRow]:
        return [r for r in self.rows if r.freq_hz == freq_hz]

    def speedup_stats(self, freq_hz: float, source: str) -> dict[str, float]:
        """Mean/min/max speedup at one OPP plus the extreme clusters.

        Raises:
            ValueError: For an unknown source or missing frequency.
        """
        rows = self.at(freq_hz)
        if not rows:
            raise ValueError(f"no scaling rows at {freq_hz / 1e6:.0f} MHz")
        if source == "hw":
            values = np.array([r.hw_speedup for r in rows])
        elif source == "gem5":
            values = np.array([r.gem5_speedup for r in rows])
        else:
            raise ValueError(f"unknown source {source!r}")
        return {
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "min_cluster": float(rows[int(values.argmin())].cluster),
            "max_cluster": float(rows[int(values.argmax())].cluster),
        }

    def energy_stats(self, freq_hz: float, source: str) -> dict[str, float]:
        """Mean/min/max energy ratio at one OPP."""
        rows = self.at(freq_hz)
        if not rows:
            raise ValueError(f"no scaling rows at {freq_hz / 1e6:.0f} MHz")
        if source == "hw":
            values = np.array([r.hw_energy_ratio for r in rows])
        elif source == "gem5":
            values = np.array([r.gem5_energy_ratio for r in rows])
        else:
            raise ValueError(f"unknown source {source!r}")
        return {
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
        }


def dvfs_scaling(
    dataset: ValidationDataset,
    application: PowerModelApplication,
    workload_clusters: WorkloadClusterAnalysis,
    base_freq_hz: float | None = None,
) -> DvfsScaling:
    """Compute Fig. 8 scaling rows for every workload and OPP.

    Performance is 1/time, power is the model estimate on each source, and
    energy is their quotient; all normalised to the base (lowest) OPP.
    """
    if base_freq_hz is None:
        base_freq_hz = min(dataset.frequencies)
    labels = {
        name: label
        for name, label in zip(
            workload_clusters.clusters.item_names, workload_clusters.clusters.labels
        )
    }
    base_runs = {r.workload: r for r in dataset.runs_at(base_freq_hz)}
    rows: list[ScalingRow] = []
    for freq in dataset.frequencies:
        for run in dataset.runs_at(freq):
            base = base_runs[run.workload]
            hw_power = application.apply_to_hw(run.hw).power_w
            hw_power_base = application.apply_to_hw(base.hw).power_w
            gem5_power = application.apply_to_gem5(run.gem5).power_w
            gem5_power_base = application.apply_to_gem5(base.gem5).power_w
            hw_speedup = base.hw_time / run.hw_time
            gem5_speedup = base.gem5_time / run.gem5_time
            hw_energy_ratio = (hw_power * run.hw_time) / (
                hw_power_base * base.hw_time
            )
            gem5_energy_ratio = (gem5_power * run.gem5_time) / (
                gem5_power_base * base.gem5_time
            )
            rows.append(
                ScalingRow(
                    workload=run.workload,
                    cluster=labels.get(run.workload, 0),
                    freq_hz=freq,
                    hw_speedup=hw_speedup,
                    gem5_speedup=gem5_speedup,
                    hw_power_ratio=hw_power / hw_power_base,
                    gem5_power_ratio=gem5_power / gem5_power_base,
                    hw_energy_ratio=hw_energy_ratio,
                    gem5_energy_ratio=gem5_energy_ratio,
                )
            )
    return DvfsScaling(core=dataset.core, base_freq_hz=base_freq_hz, rows=rows)


@dataclass(frozen=True)
class BigLittleComparison:
    """Cross-cluster (A15 vs A7) relative performance, HW vs model.

    ``relative_performance[source][freq]`` is the mean A15 speedup over the
    A7 base OPP; the paper's key observation is that the modelled A15
    performance is *lower* relative to the A7 than measured on hardware.
    """

    a7_base_freq_hz: float
    relative_performance: dict[str, dict[float, float]]

    def a15_deficit(self) -> float:
        """Mean (hw - model) A15 relative performance across OPPs; positive
        when the model under-rates the A15 relative to hardware."""
        hw = self.relative_performance["hw"]
        model = self.relative_performance["gem5"]
        return float(np.mean([hw[f] - model[f] for f in hw]))


def big_little_scaling(
    dataset_a7: ValidationDataset,
    dataset_a15: ValidationDataset,
) -> BigLittleComparison:
    """Relative A15 performance over the A7 base OPP, HW vs model.

    Raises:
        ValueError: If the two datasets cover different workloads.
    """
    if dataset_a7.workloads != dataset_a15.workloads:
        raise ValueError("A7 and A15 datasets cover different workloads")
    base_freq = min(dataset_a7.frequencies)
    base = {r.workload: r for r in dataset_a7.runs_at(base_freq)}
    relative: dict[str, dict[float, float]] = {"hw": {}, "gem5": {}}
    for freq in dataset_a15.frequencies:
        hw_ratios = []
        gem5_ratios = []
        for run in dataset_a15.runs_at(freq):
            ref = base[run.workload]
            hw_ratios.append(ref.hw_time / run.hw_time)
            gem5_ratios.append(ref.gem5_time / run.gem5_time)
        relative["hw"][freq] = float(np.mean(hw_ratios))
        relative["gem5"][freq] = float(np.mean(gem5_ratios))
    return BigLittleComparison(
        a7_base_freq_hz=base_freq, relative_performance=relative
    )
