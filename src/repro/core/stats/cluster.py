"""Agglomerative hierarchical cluster analysis (HCA), from scratch.

The paper applies HCA twice:

* to *workloads*, described by their vectors of HW PMC event rates, yielding
  the cluster designations of Fig. 3 ("workloads of the same cluster exhibit
  similar MPEs");
* to *events* (HW PMCs in Fig. 5, gem5 statistics in Section IV-C),
  using correlation distance, yielding the event groups (Clusters A/B/C)
  whose shared behaviour identifies error sources.

Average linkage over a Lance-Williams-updated distance matrix; O(n^3) in the
number of items, which is ample for 65 workloads or a few hundred events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``a`` and ``b`` join at ``height``."""

    a: int
    b: int
    height: float
    size: int


@dataclass(frozen=True)
class Dendrogram:
    """The full merge tree.

    Leaf ids are ``0..n-1``; internal nodes are ``n, n+1, ...`` in merge
    order, scipy-linkage style.
    """

    n_leaves: int
    merges: tuple[Merge, ...]

    def cut(self, n_clusters: int) -> list[int]:
        """Cut the tree into ``n_clusters`` flat clusters.

        Returns a raw cluster id per leaf (ids are arbitrary; use
        :func:`hierarchical_clustering` for stable 1-based numbering).

        Raises:
            ValueError: If ``n_clusters`` is outside ``[1, n_leaves]``.
        """
        n = self.n_leaves
        if not 1 <= n_clusters <= n:
            raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
        parent = list(range(n + len(self.merges)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        # Apply merges until the requested number of clusters remains.
        remaining = n
        for step, merge in enumerate(self.merges):
            if remaining <= n_clusters:
                break
            node = n + step
            parent[find(merge.a)] = node
            parent[find(merge.b)] = node
            remaining -= 1
        return [find(i) for i in range(n)]

    def cut_height(self, height: float) -> list[int]:
        """Cut at a merge-height threshold instead of a cluster count."""
        n_clusters = self.n_leaves
        for merge in self.merges:
            if merge.height <= height:
                n_clusters -= 1
        return self.cut(max(n_clusters, 1))


@dataclass(frozen=True)
class ClusterResult:
    """Flat clustering of named items.

    Attributes:
        item_names: Items in input order.
        labels: 1-based cluster id per item, numbered by first appearance in
            input order (matching how the paper labels Fig. 3 clusters).
        dendrogram: The underlying merge tree.
    """

    item_names: tuple[str, ...]
    labels: tuple[int, ...]
    dendrogram: Dendrogram

    @property
    def n_clusters(self) -> int:
        return max(self.labels) if self.labels else 0

    def members(self, cluster: int) -> list[str]:
        """Item names belonging to a 1-based cluster id."""
        return [
            name for name, label in zip(self.item_names, self.labels) if label == cluster
        ]

    def cluster_of(self, name: str) -> int:
        """Cluster id of one item.

        Raises:
            KeyError: If the item is unknown.
        """
        try:
            index = self.item_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown item {name!r}") from exc
        return self.labels[index]

    def as_dict(self) -> dict[int, list[str]]:
        """Mapping of cluster id to member names."""
        return {c: self.members(c) for c in range(1, self.n_clusters + 1)}

    def sizes(self) -> dict[int, int]:
        """Member count per cluster."""
        return {c: len(self.members(c)) for c in range(1, self.n_clusters + 1)}


def trivial_clustering(item_names: list[str] | tuple[str, ...]) -> ClusterResult:
    """Degenerate single-cluster result for fewer than two items.

    HCA needs at least two items to merge; degraded collection campaigns
    can legitimately leave zero or one surviving workload, and the caller
    then needs a structurally valid (if trivial) :class:`ClusterResult`
    rather than a crash.  Every item lands in cluster 1.
    """
    names = tuple(item_names)
    return ClusterResult(
        item_names=names,
        labels=tuple(1 for _ in names),
        dendrogram=Dendrogram(n_leaves=len(names), merges=()),
    )


def _distance_matrix(data: np.ndarray, metric: str, standardise: bool) -> np.ndarray:
    if metric == "euclidean":
        work = data.copy()
        if standardise:
            std = work.std(axis=0)
            std[std == 0] = 1.0
            work = (work - work.mean(axis=0)) / std
        diff = work[:, None, :] - work[None, :, :]
        return np.sqrt((diff**2).sum(axis=2))
    if metric == "correlation":
        centred = data - data.mean(axis=1, keepdims=True)
        norms = np.sqrt((centred**2).sum(axis=1))
        norms[norms == 0] = 1.0
        corr = (centred @ centred.T) / np.outer(norms, norms)
        return 1.0 - np.clip(corr, -1.0, 1.0)
    raise ValueError(f"unknown metric {metric!r}; use 'euclidean' or 'correlation'")


def linkage_average(distance: np.ndarray) -> Dendrogram:
    """Average-linkage agglomeration of a symmetric distance matrix.

    Raises:
        ValueError: For non-square input.
    """
    distance = np.asarray(distance, dtype=float)
    if distance.ndim != 2 or distance.shape[0] != distance.shape[1]:
        raise ValueError("distance matrix must be square")
    n = distance.shape[0]
    if n == 0:
        raise ValueError("empty distance matrix")

    # Active cluster bookkeeping: index in the working matrix -> node id.
    work = distance.copy().astype(float)
    np.fill_diagonal(work, np.inf)
    node_ids = list(range(n))
    sizes = [1] * n
    merges: list[Merge] = []

    for step in range(n - 1):
        flat = int(np.argmin(work))
        i, j = divmod(flat, work.shape[0])
        if i > j:
            i, j = j, i
        height = float(work[i, j])
        ni, nj = sizes[i], sizes[j]
        merged_size = ni + nj
        merges.append(Merge(node_ids[i], node_ids[j], height, merged_size))

        # Lance-Williams update for average linkage into row/col i.
        new_row = (ni * work[i, :] + nj * work[j, :]) / merged_size
        work[i, :] = new_row
        work[:, i] = new_row
        work[i, i] = np.inf
        # Remove row/col j.
        work = np.delete(np.delete(work, j, axis=0), j, axis=1)
        node_ids[i] = n + step
        sizes[i] = merged_size
        del node_ids[j]
        del sizes[j]

    return Dendrogram(n_leaves=n, merges=tuple(merges))


def hierarchical_clustering(
    data: np.ndarray,
    item_names: list[str] | tuple[str, ...],
    n_clusters: int,
    metric: str = "euclidean",
    standardise: bool = True,
) -> ClusterResult:
    """Cluster named items described by feature rows.

    Args:
        data: ``(n_items, n_features)`` matrix; one row per item.
        item_names: Name per row.
        n_clusters: Number of flat clusters to cut.
        metric: ``"euclidean"`` (workload clustering over standardised PMC
            rates) or ``"correlation"`` (event clustering, distance
            ``1 - r``).
        standardise: Z-score features before euclidean distances.

    Raises:
        ValueError: On shape/name mismatches.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("data must be 2-D (items x features)")
    if data.shape[0] != len(item_names):
        raise ValueError(
            f"{data.shape[0]} rows but {len(item_names)} item names"
        )
    distance = _distance_matrix(data, metric, standardise)
    dendrogram = linkage_average(distance)
    raw = dendrogram.cut(min(n_clusters, len(item_names)))

    # Renumber clusters 1..k by first appearance in input order.
    mapping: dict[int, int] = {}
    labels = []
    for raw_label in raw:
        if raw_label not in mapping:
            mapping[raw_label] = len(mapping) + 1
        labels.append(mapping[raw_label])

    return ClusterResult(
        item_names=tuple(item_names),
        labels=tuple(labels),
        dendrogram=dendrogram,
    )
