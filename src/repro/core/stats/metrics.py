"""Error and goodness-of-fit metrics, with the paper's sign conventions.

The paper's percentage error of an estimate against a reference is
``(reference - estimate) / reference``:

* execution time — a *negative* MPE means the model **overestimates**
  execution time (underestimates performance), as in "the Cortex-A15 model
  significantly overestimates execution time (MPE at 1 GHz of -51 %)";
* power/energy — a negative MPE likewise means overestimation by the model.

MAPE is the mean of absolute percentage errors; MPE keeps the sign and can
cancel across workloads, which is why the paper reports both.
"""

from __future__ import annotations

import numpy as np


def _as_arrays(reference, estimate) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=float)
    est = np.asarray(estimate, dtype=float)
    if ref.shape != est.shape:
        raise ValueError(f"shape mismatch: reference {ref.shape} vs estimate {est.shape}")
    if ref.size == 0:
        raise ValueError("empty inputs")
    return ref, est


def percentage_errors(reference, estimate) -> np.ndarray:
    """Signed percentage errors ``(reference - estimate) / reference * 100``.

    Raises:
        ValueError: If shapes differ, inputs are empty, or any reference
            value is zero (a percentage error is undefined there).
    """
    ref, est = _as_arrays(reference, estimate)
    if np.any(ref == 0):
        raise ValueError("reference contains zeros; percentage error undefined")
    return (ref - est) / ref * 100.0


def mpe(reference, estimate) -> float:
    """Mean Percentage Error (signed, in percent)."""
    return float(percentage_errors(reference, estimate).mean())


def mape(reference, estimate) -> float:
    """Mean Absolute Percentage Error (in percent)."""
    return float(np.abs(percentage_errors(reference, estimate)).mean())


def mae(reference, estimate) -> float:
    """Mean absolute error in the native unit."""
    ref, est = _as_arrays(reference, estimate)
    return float(np.abs(ref - est).mean())


def r_squared(observed, predicted) -> float:
    """Coefficient of determination of predictions against observations."""
    obs, pred = _as_arrays(observed, predicted)
    ss_res = float(((obs - pred) ** 2).sum())
    ss_tot = float(((obs - obs.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def adjusted_r_squared(observed, predicted, n_predictors: int) -> float:
    """R^2 penalised for the number of predictors (paper's Adjusted R^2).

    Raises:
        ValueError: When there are not enough observations to adjust.
    """
    obs = np.asarray(observed, dtype=float)
    n = obs.size
    if n - n_predictors - 1 <= 0:
        raise ValueError(
            f"adjusted R^2 needs n > p + 1 (n={n}, p={n_predictors})"
        )
    r2 = r_squared(observed, predicted)
    return 1.0 - (1.0 - r2) * (n - 1) / (n - n_predictors - 1)


def standard_error_of_regression(observed, predicted, n_predictors: int) -> float:
    """The SER (residual standard error) the paper quotes in watts.

    Raises:
        ValueError: When degrees of freedom are non-positive.
    """
    obs, pred = _as_arrays(observed, predicted)
    dof = obs.size - n_predictors - 1
    if dof <= 0:
        raise ValueError(f"non-positive degrees of freedom ({dof})")
    return float(np.sqrt(((obs - pred) ** 2).sum() / dof))
