"""Statistical machinery used by every GemStone analysis stage."""

from repro.core.stats.cluster import ClusterResult, Dendrogram, hierarchical_clustering
from repro.core.stats.correlate import CorrelationResult, correlate_with_error
from repro.core.stats.metrics import (
    adjusted_r_squared,
    mae,
    mape,
    mpe,
    percentage_errors,
    r_squared,
    standard_error_of_regression,
)
from repro.core.stats.ols import OlsResult, fit_ols, variance_inflation_factors
from repro.core.stats.stepwise import StepwiseResult, forward_stepwise

__all__ = [
    "ClusterResult",
    "Dendrogram",
    "hierarchical_clustering",
    "CorrelationResult",
    "correlate_with_error",
    "adjusted_r_squared",
    "mae",
    "mape",
    "mpe",
    "percentage_errors",
    "r_squared",
    "standard_error_of_regression",
    "OlsResult",
    "fit_ols",
    "variance_inflation_factors",
    "StepwiseResult",
    "forward_stepwise",
]
