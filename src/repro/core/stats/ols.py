"""Ordinary least squares with full inferential statistics, from scratch.

Implements the regression core the paper's methodology relies on: coefficient
estimates, standard errors, t-statistics and p-values (used by the stepwise
selection's 0.05 stopping rule, Section IV-D), plus the Variance Inflation
Factor diagnostics the power models are validated with (Section V quotes a
mean VIF of 6 as "a low level of inter-correlation, as required").

Only the t-distribution CDF is delegated to scipy; all linear algebra is
plain numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class OlsResult:
    """A fitted linear model ``y ~ intercept + X @ coef``.

    Attributes:
        names: Regressor names (excluding the intercept).
        intercept / coefficients: Fitted parameters.
        std_errors: Standard errors, intercept first.
        t_values / p_values: Per-parameter t-statistics and two-sided
            p-values, intercept first.
        r2 / adjusted_r2: Goodness of fit.
        ser: Standard error of regression (residual std. error).
        n_observations: Sample size.
    """

    names: tuple[str, ...]
    intercept: float
    coefficients: np.ndarray
    std_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    r2: float
    adjusted_r2: float
    ser: float
    n_observations: int

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict responses for a design matrix (columns match names)."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} regressors, got {x.shape[1]}"
            )
        return self.intercept + x @ self.coefficients

    def coefficient(self, name: str) -> float:
        """Coefficient of a named regressor.

        Raises:
            KeyError: If the regressor is not part of the model.
        """
        try:
            index = self.names.index(name)
        except ValueError as exc:
            raise KeyError(f"regressor {name!r} not in model") from exc
        return float(self.coefficients[index])

    def max_p_value(self) -> float:
        """Largest p-value among the slope terms (stepwise stopping rule)."""
        if len(self.names) == 0:
            return 0.0
        return float(self.p_values[1:].max())

    def summary(self) -> str:
        """Multi-line human-readable fit summary."""
        lines = [
            f"OLS fit: n={self.n_observations}, p={len(self.names)}",
            f"R^2={self.r2:.4f}  adj R^2={self.adjusted_r2:.4f}  SER={self.ser:.4g}",
            f"{'term':<38s}{'coef':>12s}{'std err':>12s}{'t':>9s}{'p':>10s}",
        ]
        rows = [("(intercept)", self.intercept)] + [
            (name, float(c)) for name, c in zip(self.names, self.coefficients)
        ]
        for i, (name, coef) in enumerate(rows):
            lines.append(
                f"{name:<38s}{coef:>12.4g}{self.std_errors[i]:>12.3g}"
                f"{self.t_values[i]:>9.2f}{self.p_values[i]:>10.2g}"
            )
        return "\n".join(lines)


def fit_ols(
    x: np.ndarray,
    y: np.ndarray,
    names: tuple[str, ...] | list[str] | None = None,
    weights: np.ndarray | None = None,
) -> OlsResult:
    """Fit ``y = b0 + X b`` by (optionally weighted) least squares.

    Args:
        x: Design matrix of shape ``(n, p)`` (``p`` may be 0 for an
            intercept-only model).
        y: Response vector of length ``n``.
        names: Regressor names; defaults to ``x0..x{p-1}``.
        weights: Optional positive per-observation weights (WLS).  Passing
            ``1/y`` minimises *relative* residuals — how the power models
            reach low MAPE across a wide power range.

    Raises:
        ValueError: On shape mismatches, too few observations, or
            non-positive weights.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    n, p = x.shape
    if y.shape != (n,):
        raise ValueError(f"y has shape {y.shape}, expected ({n},)")
    if n <= p + 1:
        raise ValueError(f"need n > p + 1 observations (n={n}, p={p})")
    if names is None:
        names = tuple(f"x{i}" for i in range(p))
    names = tuple(names)
    if len(names) != p:
        raise ValueError(f"{len(names)} names for {p} regressors")

    design = np.column_stack([np.ones(n), x])
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(f"weights have shape {weights.shape}, expected ({n},)")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")
        sqrt_w = np.sqrt(weights)
        solve_design = design * sqrt_w[:, None]
        solve_y = y * sqrt_w
    else:
        solve_design = design
        solve_y = y
    # Column-normalise before solving: event rates sit at ~1e9 while the
    # intercept column is 1.0, and an unscaled pseudo-inverse would truncate
    # the intercept direction as numerical noise.
    scales = np.sqrt((solve_design**2).sum(axis=0))
    scales[scales == 0] = 1.0
    scaled = solve_design / scales
    gram = scaled.T @ scaled
    gram_inv_scaled = np.linalg.pinv(gram)
    beta = (gram_inv_scaled @ scaled.T @ solve_y) / scales
    gram_inv = gram_inv_scaled / np.outer(scales, scales)

    residuals = y - design @ beta
    dof = n - p - 1
    sigma2 = float(residuals @ residuals) / dof
    std_errors = np.sqrt(np.clip(np.diag(gram_inv) * sigma2, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(std_errors > 0, beta / std_errors, np.inf)
    p_values = 2.0 * _scipy_stats.t.sf(np.abs(t_values), dof)

    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    adj = 1.0 - (1.0 - r2) * (n - 1) / dof

    return OlsResult(
        names=names,
        intercept=float(beta[0]),
        coefficients=beta[1:].copy(),
        std_errors=std_errors,
        t_values=t_values,
        p_values=p_values,
        r2=r2,
        adjusted_r2=adj,
        ser=float(np.sqrt(sigma2)),
        n_observations=n,
    )


def variance_inflation_factors(x: np.ndarray) -> np.ndarray:
    """VIF of each column of the design matrix.

    ``VIF_j = 1 / (1 - R^2_j)`` where ``R^2_j`` regresses column ``j`` on the
    others.  Values near 1 indicate independent regressors; the paper treats
    a mean VIF of ~6 as acceptably low for its power models.

    Raises:
        ValueError: For fewer than two columns (VIF undefined).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[1] < 2:
        raise ValueError("VIF needs a 2-D design matrix with >= 2 columns")
    n, p = x.shape
    vifs = np.empty(p)
    for j in range(p):
        others = np.delete(x, j, axis=1)
        design = np.column_stack([np.ones(n), others])
        beta, *_ = np.linalg.lstsq(design, x[:, j], rcond=None)
        predicted = design @ beta
        ss_res = float(((x[:, j] - predicted) ** 2).sum())
        ss_tot = float(((x[:, j] - x[:, j].mean()) ** 2).sum())
        r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        vifs[j] = np.inf if r2 >= 1.0 else 1.0 / (1.0 - r2)
    return vifs
