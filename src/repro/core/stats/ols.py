"""Ordinary least squares with full inferential statistics, from scratch.

Implements the regression core the paper's methodology relies on: coefficient
estimates, standard errors, t-statistics and p-values (used by the stepwise
selection's 0.05 stopping rule, Section IV-D), plus the Variance Inflation
Factor diagnostics the power models are validated with (Section V quotes a
mean VIF of 6 as "a low level of inter-correlation, as required").

Only the t-distribution CDF is delegated to scipy; all linear algebra is
plain numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class OlsResult:
    """A fitted linear model ``y ~ intercept + X @ coef``.

    Attributes:
        names: Regressor names (excluding the intercept).  On a degraded
            fit these are the *surviving* regressors only; dropped columns
            are listed in ``degraded``.
        intercept / coefficients: Fitted parameters.
        std_errors: Standard errors, intercept first.
        t_values / p_values: Per-parameter t-statistics and two-sided
            p-values, intercept first.
        r2 / adjusted_r2: Goodness of fit.
        ser: Standard error of regression (residual std. error).
        n_observations: Sample size.
        degraded: Human-readable notes recorded when the fit had to drop
            non-finite, constant or collinear columns (or rows, or shrink
            the model to fit the sample); empty for a clean fit.
    """

    names: tuple[str, ...]
    intercept: float
    coefficients: np.ndarray
    std_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    r2: float
    adjusted_r2: float
    ser: float
    n_observations: int
    degraded: tuple[str, ...] = ()

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict responses for a design matrix (columns match names)."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        if x.shape[1] != len(self.names):
            raise ValueError(
                f"expected {len(self.names)} regressors, got {x.shape[1]}"
            )
        return self.intercept + x @ self.coefficients

    def coefficient(self, name: str) -> float:
        """Coefficient of a named regressor.

        Raises:
            KeyError: If the regressor is not part of the model.
        """
        try:
            index = self.names.index(name)
        except ValueError as exc:
            raise KeyError(f"regressor {name!r} not in model") from exc
        return float(self.coefficients[index])

    def max_p_value(self) -> float:
        """Largest p-value among the slope terms (stepwise stopping rule)."""
        if len(self.names) == 0:
            return 0.0
        return float(self.p_values[1:].max())

    def summary(self) -> str:
        """Multi-line human-readable fit summary."""
        lines = [
            f"OLS fit: n={self.n_observations}, p={len(self.names)}",
            f"R^2={self.r2:.4f}  adj R^2={self.adjusted_r2:.4f}  SER={self.ser:.4g}",
            f"{'term':<38s}{'coef':>12s}{'std err':>12s}{'t':>9s}{'p':>10s}",
        ]
        rows = [("(intercept)", self.intercept)] + [
            (name, float(c)) for name, c in zip(self.names, self.coefficients)
        ]
        for i, (name, coef) in enumerate(rows):
            lines.append(
                f"{name:<38s}{coef:>12.4g}{self.std_errors[i]:>12.3g}"
                f"{self.t_values[i]:>9.2f}{self.p_values[i]:>10.2g}"
            )
        return "\n".join(lines)


def fit_ols(
    x: np.ndarray,
    y: np.ndarray,
    names: tuple[str, ...] | list[str] | None = None,
    weights: np.ndarray | None = None,
) -> OlsResult:
    """Fit ``y = b0 + X b`` by (optionally weighted) least squares.

    Args:
        x: Design matrix of shape ``(n, p)`` (``p`` may be 0 for an
            intercept-only model).
        y: Response vector of length ``n``.
        names: Regressor names; defaults to ``x0..x{p-1}``.
        weights: Optional positive per-observation weights (WLS).  Passing
            ``1/y`` minimises *relative* residuals — how the power models
            reach low MAPE across a wide power range.

    The fit *degrades* rather than crashing on pathological design
    matrices, which fault-injected collection campaigns can legitimately
    produce: all-non-finite columns, rows with NaN/inf values, constant
    columns and collinear duplicates are dropped by deterministic pivoted
    selection (earlier columns win), and the model shrinks until the
    surviving sample supports it.  Every drop is recorded in the result's
    ``degraded`` notes; a clean design takes the exact historical code
    path and yields bit-identical results.

    Raises:
        ValueError: On shape mismatches, empty input, or non-positive
            weights — programmer errors, not data degradation.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    n, p = x.shape
    if y.shape != (n,):
        raise ValueError(f"y has shape {y.shape}, expected ({n},)")
    if n == 0:
        raise ValueError("no observations")
    if names is None:
        names = tuple(f"x{i}" for i in range(p))
    names = tuple(names)
    if len(names) != p:
        raise ValueError(f"{len(names)} names for {p} regressors")
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(f"weights have shape {weights.shape}, expected ({n},)")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")

    x, y, weights, names, notes = _prune_design(x, y, weights, names)
    n, p = x.shape
    if n < 2:
        # A single surviving observation cannot support even an
        # intercept-only model's inferential statistics; report its mean
        # with undefined errors rather than crashing the pipeline.
        notes.append(
            "single surviving observation: intercept-only fit with "
            "undefined inferential statistics"
        )
        return OlsResult(
            names=(),
            intercept=float(y[0]),
            coefficients=np.empty(0),
            std_errors=np.full(1, np.nan),
            t_values=np.full(1, np.nan),
            p_values=np.full(1, np.nan),
            r2=1.0,
            adjusted_r2=float("nan"),
            ser=float("nan"),
            n_observations=1,
            degraded=tuple(notes),
        )

    design = np.column_stack([np.ones(n), x])
    if weights is not None:
        sqrt_w = np.sqrt(weights)
        solve_design = design * sqrt_w[:, None]
        solve_y = y * sqrt_w
    else:
        solve_design = design
        solve_y = y
    # Column-normalise before solving: event rates sit at ~1e9 while the
    # intercept column is 1.0, and an unscaled pseudo-inverse would truncate
    # the intercept direction as numerical noise.
    scales = np.sqrt((solve_design**2).sum(axis=0))
    scales[scales == 0] = 1.0
    scaled = solve_design / scales
    gram = scaled.T @ scaled
    gram_inv_scaled = np.linalg.pinv(gram)
    beta = (gram_inv_scaled @ scaled.T @ solve_y) / scales
    gram_inv = gram_inv_scaled / np.outer(scales, scales)

    residuals = y - design @ beta
    dof = n - p - 1
    sigma2 = float(residuals @ residuals) / dof
    std_errors = np.sqrt(np.clip(np.diag(gram_inv) * sigma2, 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_values = np.where(std_errors > 0, beta / std_errors, np.inf)
    p_values = 2.0 * _scipy_stats.t.sf(np.abs(t_values), dof)

    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    adj = 1.0 - (1.0 - r2) * (n - 1) / dof

    return OlsResult(
        names=names,
        intercept=float(beta[0]),
        coefficients=beta[1:].copy(),
        std_errors=std_errors,
        t_values=t_values,
        p_values=p_values,
        r2=r2,
        adjusted_r2=adj,
        ser=float(np.sqrt(sigma2)),
        n_observations=n,
        degraded=tuple(notes),
    )


def _prune_design(
    x: np.ndarray,
    y: np.ndarray,
    weights: np.ndarray | None,
    names: tuple[str, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, tuple[str, ...], list[str]]:
    """Drop degenerate columns/rows so the OLS solve is well-posed.

    Deterministic pivoted column dropping: earlier columns always win a
    collinearity tie (matching stepwise selection order), and the notes
    name exactly what was removed.  Clean inputs pass through untouched.
    """
    notes: list[str] = []
    n, p = x.shape
    keep = np.ones(p, dtype=bool)
    finite = np.isfinite(x)

    # Columns with no finite data at all (e.g. an all-NaN fault-injected
    # event rate) are unusable; dropping them first preserves the rows.
    for j in range(p):
        if not finite[:, j].any():
            keep[j] = False
            notes.append(f"dropped regressor {names[j]!r}: no finite values")

    # Rows holding NaN/inf in y or any surviving column.
    row_ok = np.isfinite(y)
    if keep.any():
        row_ok &= finite[:, keep].all(axis=1)
    if not row_ok.all():
        notes.append(
            f"dropped {int((~row_ok).sum())} observation(s) with "
            "non-finite values"
        )
        x, y = x[row_ok], y[row_ok]
        if weights is not None:
            weights = weights[row_ok]
        n = y.size
        if n == 0:
            raise ValueError("no finite observations")

    # Constant columns are collinear with the intercept.
    for j in range(p):
        if keep[j] and np.ptp(x[:, j]) == 0:
            keep[j] = False
            notes.append(f"dropped constant regressor {names[j]!r}")

    # Pivoted collinearity pruning: grow a unit-normalised basis starting
    # from the intercept; a column that does not raise the rank is a
    # linear combination of earlier ones and is dropped.
    def unit(column: np.ndarray) -> np.ndarray:
        norm = float(np.sqrt(column @ column))
        return column / norm if norm > 0 else column

    basis = [unit(np.ones(n))]
    for j in range(p):
        if not keep[j]:
            continue
        trial = np.column_stack(basis + [unit(x[:, j])])
        if np.linalg.matrix_rank(trial) > len(basis):
            basis.append(unit(x[:, j]))
        else:
            keep[j] = False
            notes.append(f"dropped collinear regressor {names[j]!r}")

    # Shrink the model until the sample supports it (n > p + 1), dropping
    # the latest-pivoted columns first.
    survivors = [j for j in range(p) if keep[j]]
    while survivors and n <= len(survivors) + 1:
        j = survivors.pop()
        keep[j] = False
        notes.append(
            f"dropped regressor {names[j]!r}: too few observations (n={n})"
        )

    if not keep.all():
        x = x[:, keep]
        names = tuple(name for name, kept in zip(names, keep) if kept)
    return x, y, weights, names, notes


def variance_inflation_factors(x: np.ndarray) -> np.ndarray:
    """VIF of each column of the design matrix.

    ``VIF_j = 1 / (1 - R^2_j)`` where ``R^2_j`` regresses column ``j`` on the
    others.  Values near 1 indicate independent regressors; the paper treats
    a mean VIF of ~6 as acceptably low for its power models.

    Raises:
        ValueError: For fewer than two columns (VIF undefined).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[1] < 2:
        raise ValueError("VIF needs a 2-D design matrix with >= 2 columns")
    n, p = x.shape
    vifs = np.empty(p)
    for j in range(p):
        others = np.delete(x, j, axis=1)
        design = np.column_stack([np.ones(n), others])
        beta, *_ = np.linalg.lstsq(design, x[:, j], rcond=None)
        predicted = design @ beta
        ss_res = float(((x[:, j] - predicted) ** 2).sum())
        ss_tot = float(((x[:, j] - x[:, j].mean()) ** 2).sum())
        r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
        vifs[j] = np.inf if r2 >= 1.0 else 1.0 / (1.0 - r2)
    return vifs
