"""Correlation of event rates with model error (Fig. 5 machinery).

Section IV-B computes, for every HW PMC event, the Pearson correlation of the
event's *rate* across workloads with the execution-time MPE, then overlays
the HCA event clusters so that groups of co-varying events can be read as one
signal ("Cluster 1, containing memory-barrier and exclusive events, has the
largest positive correlation").  Section IV-C repeats this for gem5 events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stats.cluster import ClusterResult, hierarchical_clustering


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation; 0.0 for degenerate (constant) inputs."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = float(np.sqrt((xc**2).sum() * (yc**2).sum()))
    if denom == 0.0:
        return 0.0
    return float(np.clip((xc @ yc) / denom, -1.0, 1.0))


@dataclass(frozen=True)
class CorrelationResult:
    """Per-event correlation with error, plus the event clustering.

    Attributes:
        event_names: Events in input order.
        correlations: Pearson r of each event's rate with the error.
        clusters: HCA of the events (correlation distance), so co-varying
            events carry the same label — the Fig. 5 annotation.
    """

    event_names: tuple[str, ...]
    correlations: tuple[float, ...]
    clusters: ClusterResult

    def correlation_of(self, name: str) -> float:
        """Correlation of one named event.

        Raises:
            KeyError: For unknown events.
        """
        try:
            index = self.event_names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown event {name!r}") from exc
        return self.correlations[index]

    def sorted_events(self, descending: bool = True) -> list[tuple[str, float, int]]:
        """(event, correlation, cluster) sorted by correlation."""
        rows = [
            (name, corr, self.clusters.labels[i])
            for i, (name, corr) in enumerate(zip(self.event_names, self.correlations))
        ]
        return sorted(rows, key=lambda r: r[1], reverse=descending)

    def cluster_summary(self) -> dict[int, dict[str, float]]:
        """Per-cluster mean/min/max correlation and size."""
        summary: dict[int, dict[str, float]] = {}
        for cluster in range(1, self.clusters.n_clusters + 1):
            values = [
                corr
                for corr, label in zip(self.correlations, self.clusters.labels)
                if label == cluster
            ]
            if not values:
                continue
            summary[cluster] = {
                "size": float(len(values)),
                "mean": float(np.mean(values)),
                "min": float(np.min(values)),
                "max": float(np.max(values)),
            }
        return summary

    def strongest(self, n: int = 10) -> list[tuple[str, float, int]]:
        """The ``n`` events with the largest |correlation|."""
        rows = self.sorted_events()
        return sorted(rows, key=lambda r: abs(r[1]), reverse=True)[:n]


def correlate_with_error(
    rates: np.ndarray,
    errors: np.ndarray,
    event_names: list[str] | tuple[str, ...],
    n_event_clusters: int = 12,
    min_abs_correlation: float = 0.0,
) -> CorrelationResult:
    """Correlate event rates with per-workload error and cluster the events.

    Args:
        rates: ``(n_workloads, n_events)`` matrix of event rates.
        errors: Per-workload error (e.g. execution-time MPE), length
            ``n_workloads``.
        event_names: Column names.
        n_event_clusters: Flat clusters to cut from the event HCA.
        min_abs_correlation: Drop events below this |r| before clustering —
            Section IV-C keeps only gem5 events with |r| > 0.3.

    Raises:
        ValueError: On shape mismatches or when the filter leaves no events.
    """
    rates = np.asarray(rates, dtype=float)
    errors = np.asarray(errors, dtype=float)
    if rates.ndim != 2:
        raise ValueError("rates must be 2-D (workloads x events)")
    if rates.shape[0] != errors.size:
        raise ValueError(
            f"{rates.shape[0]} workloads in rates but {errors.size} errors"
        )
    if rates.shape[1] != len(event_names):
        raise ValueError(
            f"{rates.shape[1]} rate columns but {len(event_names)} names"
        )

    correlations = np.array(
        [pearson(rates[:, j], errors) for j in range(rates.shape[1])]
    )
    keep = np.abs(correlations) >= min_abs_correlation
    if not keep.any():
        raise ValueError(
            f"no events with |correlation| >= {min_abs_correlation}"
        )
    kept_names = tuple(name for name, k in zip(event_names, keep) if k)
    kept_rates = rates[:, keep]
    kept_corr = correlations[keep]

    clusters = hierarchical_clustering(
        kept_rates.T,
        list(kept_names),
        n_clusters=min(n_event_clusters, len(kept_names)),
        metric="correlation",
    )
    return CorrelationResult(
        event_names=kept_names,
        correlations=tuple(float(c) for c in kept_corr),
        clusters=clusters,
    )
