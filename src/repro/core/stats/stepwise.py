"""Forward-selection stepwise regression (Sections IV-D and V).

Two stopping/selection policies from the paper are supported:

* **p-value rule** (error regression, Section IV-D): add the candidate that
  maximises R^2; stop when any term's p-value rises above 0.05 ("a common
  rule of thumb is that terms with p-values above 0.05 are not statistically
  significant").
* **adjusted-R^2 with VIF restraint** (power-model event selection,
  Section V): add the candidate that maximises adjusted R^2, reject
  candidates that push the mean VIF past a limit, stop when no candidate
  improves adjusted R^2 or the event budget is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stats.ols import OlsResult, fit_ols, variance_inflation_factors


@dataclass(frozen=True)
class StepwiseStep:
    """Record of one accepted selection step."""

    added: str
    r2: float
    adjusted_r2: float
    max_p_value: float


@dataclass(frozen=True)
class StepwiseResult:
    """Outcome of a forward selection.

    Attributes:
        selected: Names of the chosen regressors, in selection order.
        model: Final fitted OLS model.
        steps: Per-step audit trail (what was added, fit quality after).
        mean_vif: Mean VIF of the final design (nan for single-regressor
            models, where VIF is undefined).
        degraded: Notes recorded when the selection had to degrade —
            candidates skipped for non-finite values, or an intercept-only
            fallback because nothing was selectable; empty when clean.
    """

    selected: tuple[str, ...]
    model: OlsResult
    steps: tuple[StepwiseStep, ...]
    mean_vif: float
    degraded: tuple[str, ...] = ()


def forward_stepwise(
    candidates: dict[str, np.ndarray],
    y: np.ndarray,
    max_terms: int = 10,
    p_value_limit: float | None = 0.05,
    use_adjusted_r2: bool = False,
    vif_limit: float | None = None,
    min_improvement: float = 1e-4,
) -> StepwiseResult:
    """Greedy forward selection over named candidate regressors.

    Args:
        candidates: Name -> regressor vector (all the same length as ``y``).
            Both totals and rates may be offered, as the paper does.
        y: Response vector.
        max_terms: Maximum number of regressors to select.
        p_value_limit: Stop *before* accepting a step that would leave any
            term with a p-value above this limit (None disables the rule).
        use_adjusted_r2: Score candidates by adjusted R^2 instead of R^2.
        vif_limit: Reject candidates whose inclusion pushes the mean VIF of
            the design past this value (None disables the restraint).
        min_improvement: Minimum score improvement to keep going.

    Degradation: candidates containing NaN/inf values are skipped with a
    note, constant candidates are skipped silently (they can never help),
    and when nothing is selectable — every candidate degenerate, or no
    candidate passing the acceptance rules — the result degrades to an
    intercept-only model with an explanatory note instead of raising.

    Raises:
        ValueError: On empty candidates or length mismatches.
    """
    if not candidates:
        raise ValueError("no candidate regressors")
    y = np.asarray(y, dtype=float)
    n = y.size
    notes: list[str] = []
    arrays: dict[str, np.ndarray] = {}
    for name, vec in candidates.items():
        arr = np.asarray(vec, dtype=float)
        if arr.shape != (n,):
            raise ValueError(f"candidate {name!r} has shape {arr.shape}, expected ({n},)")
        if not np.isfinite(arr).all():
            notes.append(f"skipped candidate {name!r}: non-finite values")
            continue
        if np.std(arr) > 0:  # constant regressors can never help
            arrays[name] = arr
    if not arrays:
        notes.append(
            "no usable candidate regressor (all constant or non-finite); "
            "degraded to an intercept-only model"
        )
        return _intercept_only(y, notes)

    selected: list[str] = []
    steps: list[StepwiseStep] = []
    best_model: OlsResult | None = None
    best_score = -np.inf

    while len(selected) < max_terms:
        best_candidate: str | None = None
        candidate_model: OlsResult | None = None
        candidate_score = best_score

        for name, arr in arrays.items():
            if name in selected:
                continue
            design = np.column_stack([arrays[s] for s in selected] + [arr])
            if design.shape[0] <= design.shape[1] + 1:
                continue
            model = fit_ols(design, y, names=tuple(selected) + (name,))
            if name not in model.names:
                # The candidate was pruned as collinear with the current
                # selection; accepting it would select a phantom term.
                continue
            score = model.adjusted_r2 if use_adjusted_r2 else model.r2
            if score <= candidate_score + min_improvement:
                continue
            if p_value_limit is not None and model.max_p_value() > p_value_limit:
                continue
            if vif_limit is not None and len(selected) >= 1:
                vifs = variance_inflation_factors(design)
                if float(np.mean(vifs)) > vif_limit:
                    continue
            best_candidate = name
            candidate_model = model
            candidate_score = score

        if best_candidate is None or candidate_model is None:
            break
        selected.append(best_candidate)
        best_model = candidate_model
        best_score = candidate_score
        steps.append(
            StepwiseStep(
                added=best_candidate,
                r2=candidate_model.r2,
                adjusted_r2=candidate_model.adjusted_r2,
                max_p_value=candidate_model.max_p_value(),
            )
        )

    if best_model is None:
        notes.append(
            "stepwise selection accepted no regressor (limits rejected "
            "every candidate); degraded to an intercept-only model"
        )
        return _intercept_only(y, notes)

    if len(selected) >= 2:
        design = np.column_stack([arrays[s] for s in selected])
        mean_vif = float(np.mean(variance_inflation_factors(design)))
    else:
        mean_vif = float("nan")

    return StepwiseResult(
        selected=tuple(selected),
        model=best_model,
        steps=tuple(steps),
        mean_vif=mean_vif,
        degraded=tuple(notes),
    )


def _intercept_only(y: np.ndarray, notes: list[str]) -> StepwiseResult:
    """Degraded fallback: fit only the intercept and carry the notes."""
    model = fit_ols(np.empty((y.size, 0)), y)
    return StepwiseResult(
        selected=(),
        model=model,
        steps=(),
        mean_vif=float("nan"),
        degraded=tuple(notes) + model.degraded,
    )
