"""Branch predictor models, including the pre-fix gem5 predictor.

The hardware Cortex-A15 reference uses a tournament predictor (bimodal +
gshare + chooser) that reaches the ~96 % mean accuracy the paper measures on
real silicon.  The gem5 ``ex5_big`` model before the bug fix is represented
by :class:`BuggyTournamentPredictor`: identical structure, but the direction
logic inverts the final prediction for *backward* conditional branches.

That synthetic bug is a stand-in chosen to reproduce the phenomenology the
paper documents rather than the literal gem5 patch: loop back-edges — the
most predictable branches on hardware — become systematically anti-predicted,
so the workload with the *highest* hardware accuracy (99.9 %,
``par-basicmath-rad2deg``) becomes the one with the *lowest* model accuracy
(0.86 %), mean accuracy collapses from ~96 % to ~65 %, and mispredictions
inflate by 20x on average and by three orders of magnitude for the
pathological cluster (Fig. 6 and Section IV-E).
"""

from __future__ import annotations


def _saturate_up(counter: int) -> int:
    return counter + 1 if counter < 3 else 3


def _saturate_down(counter: int) -> int:
    return counter - 1 if counter > 0 else 0


class BranchPredictor:
    """Base class: 2-bit-counter predictors over word-aligned PCs."""

    def predict(self, pc: int, backward: bool) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits: int = 12):
        if table_bits < 1:
            raise ValueError("table_bits must be >= 1")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._table = bytearray([2]) * 0  # placeholder, built in reset()
        self.reset()

    def reset(self) -> None:
        self._table = bytearray([2]) * (1 << self.table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int, backward: bool) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)


class GsharePredictor(BranchPredictor):
    """Global-history predictor: table indexed by ``pc XOR history``."""

    def __init__(self, table_bits: int = 12, history_bits: int = 10):
        if table_bits < 1 or history_bits < 1:
            raise ValueError("table_bits and history_bits must be >= 1")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._hist_mask = (1 << history_bits) - 1
        self.reset()

    def reset(self) -> None:
        self._table = bytearray([2]) * (1 << self.table_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int, backward: bool) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)
        self.history = ((self.history << 1) | int(taken)) & self._hist_mask


class TournamentPredictor(BranchPredictor):
    """Bimodal + gshare with a per-PC chooser, like the Cortex-A15."""

    def __init__(self, table_bits: int = 12, history_bits: int = 10):
        self.bimodal = BimodalPredictor(table_bits)
        self.gshare = GsharePredictor(table_bits, history_bits)
        self._choice_mask = (1 << table_bits) - 1
        self._choice = bytearray([2]) * (1 << table_bits)
        self.table_bits = table_bits

    def reset(self) -> None:
        self.bimodal.reset()
        self.gshare.reset()
        self._choice = bytearray([2]) * (1 << self.table_bits)

    def _components(self, pc: int, backward: bool) -> tuple[bool, bool, int]:
        local = self.bimodal.predict(pc, backward)
        global_ = self.gshare.predict(pc, backward)
        choice_index = (pc >> 2) & self._choice_mask
        return local, global_, choice_index

    def predict(self, pc: int, backward: bool) -> bool:
        local, global_, choice_index = self._components(pc, backward)
        return global_ if self._choice[choice_index] >= 2 else local

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        local, global_, choice_index = self._components(pc, backward)
        if local != global_:
            counter = self._choice[choice_index]
            if global_ == taken:
                self._choice[choice_index] = _saturate_up(counter)
            else:
                self._choice[choice_index] = _saturate_down(counter)
        self.bimodal.update(pc, taken, backward)
        self.gshare.update(pc, taken, backward)


class BuggyTournamentPredictor(TournamentPredictor):
    """The pre-fix gem5 ``ex5_big`` predictor.

    Structurally identical to :class:`TournamentPredictor`, but the direction
    logic inverts the muxed prediction for backward conditional branches
    while training proceeds on the un-inverted outcome.  A saturated
    always-taken loop back-edge is therefore predicted not-taken essentially
    forever — the anti-learning behaviour behind the paper's Cluster 16.
    """

    def predict(self, pc: int, backward: bool) -> bool:
        prediction = super().predict(pc, backward)
        if backward:
            return not prediction
        return prediction


class ReturnAddressStack:
    """A bounded return-address stack with explicit corruption support.

    Matched call/return traces predict perfectly; simulators model
    wrong-path pollution by calling :meth:`corrupt`, after which the next
    pop mispredicts (gem5's ``branchPred.RASInCorrect``).
    """

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.incorrect = 0

    def reset(self) -> None:
        self._stack.clear()
        self.pushes = self.pops = self.incorrect = 0

    def push(self, address: int) -> None:
        self.pushes += 1
        self._stack.append(address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def corrupt(self) -> None:
        """Wrong-path pollution: poison the top-of-stack entry."""
        if self._stack:
            self._stack[-1] ^= 0x4

    def pop(self, expected: int) -> bool:
        """Pop and compare; returns True when the prediction was correct."""
        self.pops += 1
        predicted = self._stack.pop() if self._stack else -1
        correct = predicted == expected
        if not correct:
            self.incorrect += 1
        return correct


class IndirectPredictor:
    """Last-target indirect branch predictor (per-PC target cache)."""

    def __init__(self, table_bits: int = 8):
        self._mask = (1 << table_bits) - 1
        self._targets: dict[int, int] = {}
        self.lookups = 0
        self.hits = 0

    def reset(self) -> None:
        self._targets.clear()
        self.lookups = self.hits = 0

    def predict_and_update(self, pc: int, target: int) -> bool:
        """One lookup+train step; returns True on a correct prediction."""
        self.lookups += 1
        index = (pc >> 2) & self._mask
        correct = self._targets.get(index) == target
        if correct:
            self.hits += 1
        self._targets[index] = target
        return correct

    @property
    def misses(self) -> int:
        return self.lookups - self.hits


def make_predictor(kind: str, table_bits: int = 12, history_bits: int = 10) -> BranchPredictor:
    """Factory for the predictor kinds used by machine configurations.

    Args:
        kind: ``"tournament"`` (hardware reference), ``"buggy_tournament"``
            (pre-fix gem5), ``"gshare"`` or ``"bimodal"``.
    """
    if kind == "tournament":
        return TournamentPredictor(table_bits, history_bits)
    if kind == "buggy_tournament":
        return BuggyTournamentPredictor(table_bits, history_bits)
    if kind == "gshare":
        return GsharePredictor(table_bits, history_bits)
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    raise ValueError(f"unknown predictor kind {kind!r}")
