"""Branch predictor models, including the pre-fix gem5 predictor.

The hardware Cortex-A15 reference uses a tournament predictor (bimodal +
gshare + chooser) that reaches the ~96 % mean accuracy the paper measures on
real silicon.  The gem5 ``ex5_big`` model before the bug fix is represented
by :class:`BuggyTournamentPredictor`: identical structure, but the direction
logic inverts the final prediction for *backward* conditional branches.

That synthetic bug is a stand-in chosen to reproduce the phenomenology the
paper documents rather than the literal gem5 patch: loop back-edges — the
most predictable branches on hardware — become systematically anti-predicted,
so the workload with the *highest* hardware accuracy (99.9 %,
``par-basicmath-rad2deg``) becomes the one with the *lowest* model accuracy
(0.86 %), mean accuracy collapses from ~96 % to ~65 %, and mispredictions
inflate by 20x on average and by three orders of magnitude for the
pathological cluster (Fig. 6 and Section IV-E).
"""

from __future__ import annotations

import numpy as np


def _saturate_up(counter: int) -> int:
    return counter + 1 if counter < 3 else 3


def _saturate_down(counter: int) -> int:
    return counter - 1 if counter > 0 else 0


class BranchPredictor:
    """Base class: 2-bit-counter predictors over word-aligned PCs."""

    def predict(self, pc: int, backward: bool) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits: int = 12):
        if table_bits < 1:
            raise ValueError("table_bits must be >= 1")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._table = bytearray([2]) * 0  # placeholder, built in reset()
        self.reset()

    def reset(self) -> None:
        self._table = bytearray([2]) * (1 << self.table_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int, backward: bool) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)


class GsharePredictor(BranchPredictor):
    """Global-history predictor: table indexed by ``pc XOR history``."""

    def __init__(self, table_bits: int = 12, history_bits: int = 10):
        if table_bits < 1 or history_bits < 1:
            raise ValueError("table_bits and history_bits must be >= 1")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._hist_mask = (1 << history_bits) - 1
        self.reset()

    def reset(self) -> None:
        self._table = bytearray([2]) * (1 << self.table_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self._mask

    def predict(self, pc: int, backward: bool) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        self._table[index] = _saturate_up(counter) if taken else _saturate_down(counter)
        self.history = ((self.history << 1) | int(taken)) & self._hist_mask


class TournamentPredictor(BranchPredictor):
    """Bimodal + gshare with a per-PC chooser, like the Cortex-A15."""

    def __init__(self, table_bits: int = 12, history_bits: int = 10):
        self.bimodal = BimodalPredictor(table_bits)
        self.gshare = GsharePredictor(table_bits, history_bits)
        self._choice_mask = (1 << table_bits) - 1
        self._choice = bytearray([2]) * (1 << table_bits)
        self.table_bits = table_bits

    def reset(self) -> None:
        self.bimodal.reset()
        self.gshare.reset()
        self._choice = bytearray([2]) * (1 << self.table_bits)

    def _components(self, pc: int, backward: bool) -> tuple[bool, bool, int]:
        local = self.bimodal.predict(pc, backward)
        global_ = self.gshare.predict(pc, backward)
        choice_index = (pc >> 2) & self._choice_mask
        return local, global_, choice_index

    def predict(self, pc: int, backward: bool) -> bool:
        local, global_, choice_index = self._components(pc, backward)
        return global_ if self._choice[choice_index] >= 2 else local

    def update(self, pc: int, taken: bool, backward: bool) -> None:
        local, global_, choice_index = self._components(pc, backward)
        if local != global_:
            counter = self._choice[choice_index]
            if global_ == taken:
                self._choice[choice_index] = _saturate_up(counter)
            else:
                self._choice[choice_index] = _saturate_down(counter)
        self.bimodal.update(pc, taken, backward)
        self.gshare.update(pc, taken, backward)


class BuggyTournamentPredictor(TournamentPredictor):
    """The pre-fix gem5 ``ex5_big`` predictor.

    Structurally identical to :class:`TournamentPredictor`, but the direction
    logic inverts the muxed prediction for backward conditional branches
    while training proceeds on the un-inverted outcome.  A saturated
    always-taken loop back-edge is therefore predicted not-taken essentially
    forever — the anti-learning behaviour behind the paper's Cluster 16.
    """

    def predict(self, pc: int, backward: bool) -> bool:
        prediction = super().predict(pc, backward)
        if backward:
            return not prediction
        return prediction


class ReturnAddressStack:
    """A bounded return-address stack with explicit corruption support.

    Matched call/return traces predict perfectly; simulators model
    wrong-path pollution by calling :meth:`corrupt`, after which the next
    pop mispredicts (gem5's ``branchPred.RASInCorrect``).
    """

    def __init__(self, depth: int = 8):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0
        self.incorrect = 0

    def reset(self) -> None:
        self._stack.clear()
        self.pushes = self.pops = self.incorrect = 0

    def push(self, address: int) -> None:
        self.pushes += 1
        self._stack.append(address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def corrupt(self) -> None:
        """Wrong-path pollution: poison the top-of-stack entry."""
        if self._stack:
            self._stack[-1] ^= 0x4

    def pop(self, expected: int) -> bool:
        """Pop and compare; returns True when the prediction was correct."""
        self.pops += 1
        predicted = self._stack.pop() if self._stack else -1
        correct = predicted == expected
        if not correct:
            self.incorrect += 1
        return correct


class IndirectPredictor:
    """Last-target indirect branch predictor (per-PC target cache)."""

    def __init__(self, table_bits: int = 8):
        self._mask = (1 << table_bits) - 1
        self._targets: dict[int, int] = {}
        self.lookups = 0
        self.hits = 0

    def reset(self) -> None:
        self._targets.clear()
        self.lookups = self.hits = 0

    def predict_and_update(self, pc: int, target: int) -> bool:
        """One lookup+train step; returns True on a correct prediction."""
        self.lookups += 1
        index = (pc >> 2) & self._mask
        correct = self._targets.get(index) == target
        if correct:
            self.hits += 1
        self._targets[index] = target
        return correct

    @property
    def misses(self) -> int:
        return self.lookups - self.hits


# --------------------------------------------------------------------------
# Vectorized batch prediction (columnar replay engine)
# --------------------------------------------------------------------------
#
# A 2-bit saturating counter updates as x -> min(3, max(0, x +- 1)): a
# *clamp-affine* map min(hi, max(lo, x + a)).  Such maps are closed under
# composition —
#
#     g(f(x)) = min(hi_g, max(lo_g, min(hi_f, max(lo_f, x + a_f)) + a_g))
#             = min(min(hi_g, max(lo_g, hi_f + a_g)),
#                   max(max(lo_g, lo_f + a_g), x + a_f + a_g))
#
# — and composition is associative, so the per-table-entry sequential
# counter evolution collapses to a segmented prefix scan: sort the update
# events by (table index, time), and Hillis-Steele-scan the maps within
# each segment.  The counter state *before* event i is the exclusive
# prefix composition applied to the initial value 2.  log2(n) vector
# passes replace n Python-level bytearray updates.

_CLAMP_BIG = 1 << 20


def _segmented_clamp_scan(
    seg_id: np.ndarray,
    add: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    init: int,
) -> np.ndarray:
    """State before each event of a segmented clamped-counter evolution.

    Events must be grouped by segment (sorted so equal ``seg_id`` values
    are contiguous and in time order).  Each event applies
    ``x -> min(hi, max(lo, x + add))``; returns the pre-update state per
    event starting from ``init`` at each segment head.
    """
    n = len(seg_id)
    if n == 0:
        return np.empty(0, dtype=np.int32)
    a = add.astype(np.int32).copy()
    l = lo.astype(np.int32).copy()
    h = hi.astype(np.int32).copy()
    d = 1
    while d < n:
        prev_a = a[:-d]
        prev_l = l[:-d]
        prev_h = h[:-d]
        ok = seg_id[d:] == seg_id[:-d]
        new_a = np.where(ok, prev_a + a[d:], a[d:])
        new_l = np.where(ok, np.minimum(h[d:], np.maximum(l[d:], prev_l + a[d:])), l[d:])
        new_h = np.where(ok, np.minimum(h[d:], np.maximum(l[d:], prev_h + a[d:])), h[d:])
        a[d:] = new_a
        l[d:] = new_l
        h[d:] = new_h
        d *= 2
    state = np.full(n, init, dtype=np.int32)
    same_seg = seg_id[1:] == seg_id[:-1]
    inner = np.minimum(h[:-1], np.maximum(l[:-1], init + a[:-1]))
    state[1:] = np.where(same_seg, inner, init)
    return state


def _counter_states_before(
    index: np.ndarray, step: np.ndarray, update: np.ndarray | None = None
) -> np.ndarray:
    """Pre-update 2-bit counter states for a stream of table events.

    Args:
        index: Table entry touched by each event, in time order.
        step: +1 (increment) or -1 (decrement) per event.
        update: Optional mask; False rows read the entry without updating
            (identity map), as tournament chooser reads do when local and
            global agree.

    Returns:
        The counter value seen by each event before its own update,
        with every entry initialised to 2 (weakly taken).
    """
    n = len(index)
    if n == 0:
        return np.empty(0, dtype=np.int32)
    order = np.argsort(index, kind="stable")
    seg = index[order]
    add = step[order].astype(np.int32)
    lo = np.where(add > 0, -_CLAMP_BIG, 0).astype(np.int32)
    hi = np.where(add > 0, 3, _CLAMP_BIG).astype(np.int32)
    if update is not None:
        upd = update[order]
        add = np.where(upd, add, 0)
        lo = np.where(upd, lo, -_CLAMP_BIG)
        hi = np.where(upd, hi, _CLAMP_BIG)
    states_sorted = _segmented_clamp_scan(seg, add, lo, hi, init=2)
    states = np.empty(n, dtype=np.int32)
    states[order] = states_sorted
    return states


def _gshare_history(taken: np.ndarray, history_bits: int) -> np.ndarray:
    """Global history register value before each conditional branch.

    ``history`` shifts in one taken bit per conditional update, so the
    register before branch j packs the previous ``history_bits`` outcomes
    with the most recent in bit 0.
    """
    n = len(taken)
    hist = np.zeros(n, dtype=np.int64)
    bits = taken.astype(np.int64)
    for k in range(1, history_bits + 1):
        if k > n:
            break
        hist[k:] += bits[:-k] << (k - 1)
    return hist


def predict_conditional_batch(
    kind: str,
    table_bits: int,
    history_bits: int,
    pcs: np.ndarray,
    taken: np.ndarray,
    backward: np.ndarray,
) -> np.ndarray:
    """Vectorized predictions for a conditional-branch stream.

    Produces, for each branch in time order, exactly the prediction the
    corresponding scalar predictor from :func:`make_predictor` would make
    (each branch predicts, then trains on its outcome).  Used by the
    columnar replay engine; the scalar predictors remain the reference
    implementation.
    """
    n = len(pcs)
    if n == 0:
        return np.empty(0, dtype=bool)
    mask = (1 << table_bits) - 1
    pc_idx = (pcs >> 2) & mask
    taken_b = taken.astype(bool)
    step = np.where(taken_b, 1, -1).astype(np.int32)

    if kind == "bimodal":
        return _counter_states_before(pc_idx, step) >= 2
    if kind == "gshare":
        hist = _gshare_history(taken, history_bits)
        return _counter_states_before((pc_idx ^ hist) & mask, step) >= 2
    if kind not in ("tournament", "buggy_tournament"):
        raise ValueError(f"unknown predictor kind {kind!r}")

    local = _counter_states_before(pc_idx, step) >= 2
    hist = _gshare_history(taken, history_bits)
    global_ = _counter_states_before((pc_idx ^ hist) & mask, step) >= 2
    # Chooser: trained toward whichever component was right, only when they
    # disagree; read (identity map) by every conditional branch.
    choice_update = local != global_
    choice_step = np.where(global_ == taken_b, 1, -1).astype(np.int32)
    choice = _counter_states_before(pc_idx, choice_step, update=choice_update)
    prediction = np.where(choice >= 2, global_, local)
    if kind == "buggy_tournament":
        prediction = np.where(backward, ~prediction, prediction)
    return prediction.astype(bool)


def make_predictor(kind: str, table_bits: int = 12, history_bits: int = 10) -> BranchPredictor:
    """Factory for the predictor kinds used by machine configurations.

    Args:
        kind: ``"tournament"`` (hardware reference), ``"buggy_tournament"``
            (pre-fix gem5), ``"gshare"`` or ``"bimodal"``.
    """
    if kind == "tournament":
        return TournamentPredictor(table_bits, history_bits)
    if kind == "buggy_tournament":
        return BuggyTournamentPredictor(table_bits, history_bits)
    if kind == "gshare":
        return GsharePredictor(table_bits, history_bits)
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    raise ValueError(f"unknown predictor kind {kind!r}")
