"""Micro-architectural component models shared by both simulators.

The reference "hardware" platform and the gem5-style model are built from the
same component library — set-associative caches (:mod:`repro.uarch.cache`),
TLB hierarchies (:mod:`repro.uarch.tlb`), branch predictors
(:mod:`repro.uarch.branch`) — configured differently.  Every behavioural
divergence between the two simulators is therefore expressed as a
configuration difference, mirroring how the paper traces gem5's errors back
to specification errors rather than to a fundamentally different machine.
"""

from repro.uarch.branch import (
    BranchPredictor,
    BimodalPredictor,
    BuggyTournamentPredictor,
    GsharePredictor,
    IndirectPredictor,
    ReturnAddressStack,
    TournamentPredictor,
    make_predictor,
)
from repro.uarch.cache import CacheStats, SetAssociativeCache, StridePrefetcher
from repro.uarch.tlb import Tlb, TlbHierarchy, TlbHierarchyConfig

__all__ = [
    "BranchPredictor",
    "BimodalPredictor",
    "BuggyTournamentPredictor",
    "GsharePredictor",
    "IndirectPredictor",
    "ReturnAddressStack",
    "TournamentPredictor",
    "make_predictor",
    "CacheStats",
    "SetAssociativeCache",
    "StridePrefetcher",
    "Tlb",
    "TlbHierarchy",
    "TlbHierarchyConfig",
]
