"""TLB models: single level and the two hierarchy styles the paper contrasts.

Section IV-F of the paper pins down the specification mismatch: the hardware
Cortex-A15 has a 32-entry L1 ITLB backed by a *shared* 512-entry 4-way L2
TLB, whereas the gem5 model has a 64-entry L1 ITLB backed by two *split*
1 KB 8-way walker caches with a 4-cycle latency.  :class:`TlbHierarchy`
expresses both shapes through :class:`TlbHierarchyConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.uarch.cache import batch_lru_replay


@dataclass
class TlbStats:
    """Counters for one TLB level."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class Tlb:
    """A set-associative, LRU TLB over 4 KiB page identifiers."""

    def __init__(self, name: str, entries: int, assoc: int | None = None):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.name = name
        self.entries = entries
        self.assoc = entries if assoc is None else max(1, min(assoc, entries))
        self.n_sets = max(1, entries // self.assoc)
        self.stats = TlbStats()
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]

    def reset(self) -> None:
        for s in self._sets:
            if s:
                s.clear()
        self.stats = TlbStats()

    def lookup(self, page: int) -> bool:
        """Translate one page; fills on miss.  Returns hit/miss."""
        stats = self.stats
        stats.lookups += 1
        set_index = page % self.n_sets
        tag = page // self.n_sets
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            stats.hits += 1
            return True
        stats.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return False

    def contains(self, page: int) -> bool:
        """Non-mutating presence check."""
        set_index = page % self.n_sets
        return page // self.n_sets in self._sets[set_index]

    def fill(self, page: int) -> None:
        """Insert a translation without counting (TLB pre-warming)."""
        set_index = page % self.n_sets
        tag = page // self.n_sets
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()

    def fill_many(self, pages) -> None:
        """Bulk :meth:`fill`: bit-identical final state to filling in a loop.

        Counter-silent fills only affect the final LRU state, which has a
        closed form: each set holds the most recently filled distinct tags,
        MRU-first, with pre-existing residents ranked older than every new
        fill, truncated to the associativity.  One vectorised pass replaces
        one Python call per page during pre-warming.
        """
        arr = np.asarray(pages, dtype=np.int64)
        if arr.size == 0:
            return
        rev = arr[::-1]
        _, keep = np.unique(rev, return_index=True)
        keep.sort()
        mru_pages = rev[keep]
        n_sets = self.n_sets
        set_idx = mru_pages % n_sets
        order = np.argsort(set_idx, kind="stable")
        sorted_sets = set_idx[order]
        bounds = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
        starts = [0, *bounds.tolist(), order.size]
        assoc = self.assoc
        sets = self._sets
        for i in range(len(starts) - 1):
            seg = order[starts[i] : starts[i + 1]]
            s = int(set_idx[seg[0]])
            fresh = (mru_pages[seg] // n_sets).tolist()
            ways = sets[s]
            if ways:
                fresh_tags = set(fresh)
                fresh += [tag for tag in ways if tag not in fresh_tags]
            del fresh[assoc:]
            sets[s] = fresh


def batch_tlb_replay(
    pages: np.ndarray,
    tlb: Tlb,
    mutating: np.ndarray | None = None,
) -> np.ndarray:
    """Batched L1-TLB replay over a whole page stream.

    Returns per-op hit flags bit-identical to calling ``lookup`` (mutating
    rows) / ``contains`` (non-mutating probe rows) in a loop, for the
    stream in time order.  Warm ``fill``/``fill_many`` pages are modelled
    as mutating rows at the head of the stream, since a counter-silent
    fill has exactly a lookup's effect on LRU state.  ``tlb`` only
    supplies geometry and is not touched.
    """
    return batch_lru_replay(pages, tlb.n_sets, tlb.assoc, mutating=mutating).hit


@dataclass(frozen=True)
class TlbHierarchyConfig:
    """Shape of a two-level TLB hierarchy.

    Attributes:
        itlb_entries / itlb_assoc: L1 instruction TLB geometry.
        dtlb_entries / dtlb_assoc: L1 data TLB geometry.
        unified_l2: True for the hardware shape (one shared L2 TLB), False
            for the gem5 shape (split instruction/data walker caches).
        l2_entries / l2_assoc: Geometry of the L2 TLB (per side when split).
        l2_latency: Core cycles to access the L2 TLB / walker cache.
        walk_cycles: Core cycles for a full page-table walk on L2 miss.
    """

    itlb_entries: int = 32
    itlb_assoc: int | None = None
    dtlb_entries: int = 32
    dtlb_assoc: int | None = None
    unified_l2: bool = True
    l2_entries: int = 512
    l2_assoc: int = 4
    l2_latency: int = 2
    walk_cycles: int = 30


@dataclass(slots=True)
class TlbAccessResult:
    """Outcome of a translation through the hierarchy."""

    l1_hit: bool
    l2_accessed: bool
    l2_hit: bool
    walked: bool


class TlbHierarchy:
    """Two-level TLB hierarchy (L1 I/D TLBs plus unified or split L2)."""

    def __init__(self, config: TlbHierarchyConfig):
        self.config = config
        self.itlb = Tlb("itlb", config.itlb_entries, config.itlb_assoc)
        self.dtlb = Tlb("dtlb", config.dtlb_entries, config.dtlb_assoc)
        if config.unified_l2:
            shared = Tlb("l2tlb", config.l2_entries, config.l2_assoc)
            self.l2_itlb = shared
            self.l2_dtlb = shared
        else:
            self.l2_itlb = Tlb("itb_walker", config.l2_entries, config.l2_assoc)
            self.l2_dtlb = Tlb("dtb_walker", config.l2_entries, config.l2_assoc)
        self.walks_inst = 0
        self.walks_data = 0

    def reset(self) -> None:
        self.itlb.reset()
        self.dtlb.reset()
        self.l2_itlb.reset()
        if self.l2_dtlb is not self.l2_itlb:
            self.l2_dtlb.reset()
        self.walks_inst = 0
        self.walks_data = 0

    def translate_inst(self, page: int) -> TlbAccessResult:
        """Instruction-side translation."""
        if self.itlb.lookup(page):
            return TlbAccessResult(True, False, False, False)
        l2_hit = self.l2_itlb.lookup(page)
        if not l2_hit:
            self.walks_inst += 1
        return TlbAccessResult(False, True, l2_hit, not l2_hit)

    def translate_data(self, page: int) -> TlbAccessResult:
        """Data-side translation."""
        if self.dtlb.lookup(page):
            return TlbAccessResult(True, False, False, False)
        l2_hit = self.l2_dtlb.lookup(page)
        if not l2_hit:
            self.walks_data += 1
        return TlbAccessResult(False, True, l2_hit, not l2_hit)

    def probe_inst(self, page: int) -> bool:
        """Non-mutating L1 ITLB presence check (used for wrong-path fetch)."""
        return self.itlb.contains(page)
